"""RSP-QL: continuous SPARQL over RDF streams (paper Section 5.2).

Dell'Aglio et al.'s RSP-QL unifies the RDF stream processing landscape
with three ingredients, all implemented here:

* **time-based windows over RDF streams** (the S2R operators inherited
  from CQL): :class:`StreamWindow` with width, slide and a t0 anchor;
* **report policies** deciding *when* the window operator reports —
  window-close, content-change, non-empty-content, periodic
  (:class:`ReportPolicy`);
* **streaming result operators** (the R2S side): RSTREAM / ISTREAM /
  DSTREAM over the solution-mapping multisets produced by basic graph
  pattern matching.

:class:`RSPEngine` ties them together as registered continuous queries
over named RDF streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.errors import RSPError
from repro.core.operators import R2SKind
from repro.core.relation import Bag
from repro.core.time import Timestamp
from repro.rsp.rdf import (
    RDFGraph,
    Term,
    Triple,
    TriplePattern,
    Variable,
)

#: A SPARQL solution mapping: variable name → term.
Solution = tuple[tuple[str, Term], ...]


def solution_to_dict(solution: Solution) -> dict[str, Term]:
    return dict(solution)


# ---------------------------------------------------------------------------
# BGP matching
# ---------------------------------------------------------------------------


class BasicGraphPattern:
    """A conjunction of triple patterns, matched by index-backed joins."""

    def __init__(self, patterns: Iterable[TriplePattern]) -> None:
        self.patterns = list(patterns)
        if not self.patterns:
            raise RSPError("a basic graph pattern needs at least one "
                           "triple pattern")
        names: list[str] = []
        for pattern in self.patterns:
            for variable in pattern.variables():
                if variable.name not in names:
                    names.append(variable.name)
        self.variable_names = names

    def match(self, graph: RDFGraph) -> list[dict[str, Term]]:
        """All solution mappings of this BGP against ``graph``."""
        solutions: list[dict[str, Term]] = [{}]
        for pattern in self.patterns:
            next_solutions: list[dict[str, Term]] = []
            for binding in solutions:
                bound = _substitute(pattern, binding)
                for triple in graph.candidates(bound):
                    extended = _unify(bound, triple, binding)
                    if extended is not None:
                        next_solutions.append(extended)
            solutions = next_solutions
            if not solutions:
                break
        return solutions


def _substitute(pattern: TriplePattern,
                binding: Mapping[str, Term]) -> TriplePattern:
    def resolve(term):
        if isinstance(term, Variable) and term.name in binding:
            return binding[term.name]
        return term

    return TriplePattern(resolve(pattern.subject),
                         resolve(pattern.predicate),
                         resolve(pattern.object))


def _unify(pattern: TriplePattern, triple: Triple,
           binding: Mapping[str, Term]) -> dict[str, Term] | None:
    extended = dict(binding)
    for pattern_term, data_term in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object)):
        if isinstance(pattern_term, Variable):
            existing = extended.get(pattern_term.name)
            if existing is None:
                extended[pattern_term.name] = data_term
            elif existing != data_term:
                return None
        elif pattern_term != data_term:
            return None
    return extended


# ---------------------------------------------------------------------------
# RDF streams and windows
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TimestampedTriple:
    triple: Triple
    timestamp: Timestamp


class RDFStream:
    """An ordered RDF stream: timestamped triples."""

    def __init__(self) -> None:
        self._items: list[TimestampedTriple] = []

    def push(self, triple: Triple, timestamp: Timestamp) -> None:
        if self._items and timestamp < self._items[-1].timestamp:
            raise RSPError("RDF stream requires non-decreasing timestamps")
        self._items.append(TimestampedTriple(triple, timestamp))

    def __iter__(self) -> Iterator[TimestampedTriple]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def between(self, start: Timestamp, end: Timestamp) -> list[Triple]:
        """Triples with timestamp in ``[start, end)``."""
        return [item.triple for item in self._items
                if start <= item.timestamp < end]

    def max_timestamp(self) -> Timestamp | None:
        return self._items[-1].timestamp if self._items else None


@dataclass(frozen=True)
class StreamWindow:
    """RSP-QL's time-based window: width ω, slide β, anchored at t0."""

    width: Timestamp
    slide: Timestamp
    t0: Timestamp = 0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.slide <= 0:
            raise RSPError("window width and slide must be positive")

    def boundaries_up_to(self, t: Timestamp) -> list[Timestamp]:
        """All window-close instants ≤ t (each defines a window
        ``[close - width, close)``)."""
        out = []
        close = self.t0 + self.width
        while close <= t:
            out.append(close)
            close += self.slide
        return out

    def scope_at(self, close: Timestamp) -> tuple[Timestamp, Timestamp]:
        return (close - self.width, close)


class ReportPolicy(enum.Enum):
    """When the window operator reports (RSP-QL's four policies)."""

    WINDOW_CLOSE = "window-close"      # every window, when it closes
    CONTENT_CHANGE = "content-change"  # only when contents changed
    NON_EMPTY = "non-empty"            # only non-empty windows
    PERIODIC = "periodic"              # every window close (= WC here,
    #                                    with period == slide)


# ---------------------------------------------------------------------------
# Continuous queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RSPResult:
    """One reported evaluation: the window and its emitted solutions."""

    window_close: Timestamp
    solutions: tuple[dict[str, Term], ...]


class ContinuousRSPQuery:
    """A registered RSP-QL query over one RDF stream.

    At every reported window close the BGP is evaluated over the window's
    triples; the R2S operator turns the resulting solution multiset into
    the emitted stream: RSTREAM emits everything, ISTREAM only solutions
    new since the previous report, DSTREAM only solutions that vanished.
    """

    def __init__(self, bgp: BasicGraphPattern, window: StreamWindow,
                 select: list[str] | None = None,
                 r2s: R2SKind = R2SKind.RSTREAM,
                 report: ReportPolicy = ReportPolicy.WINDOW_CLOSE) -> None:
        self.bgp = bgp
        self.window = window
        self.select = select or bgp.variable_names
        unknown = set(self.select) - set(bgp.variable_names)
        if unknown:
            raise RSPError(f"SELECT variables {sorted(unknown)} not bound "
                           f"by the pattern")
        self.r2s = r2s
        self.report = report
        self._previous_solutions = Bag()
        self._previous_contents: frozenset | None = None
        self.results: list[RSPResult] = []

    def logical_plan(self, stream_names: list[str]):
        """Lower this query onto the unified logical IR (:mod:`repro.plan`).

        The shape mirrors RSP-QL's semantics exactly: per-stream
        time-based windows, union of the windowed triple bags (the window
        distributes over the merged streams), BGP matching, then the R2S
        operator.  The IR is what EXPLAIN renders and what the canonical
        plan signature — used to recognise queries that can share window
        contents — is computed from.
        """
        from repro.core.records import Schema
        from repro.plan.exprs import WindowSpec, WindowSpecKind
        from repro.plan.ir import (
            BGPMatch,
            RelToStream,
            SetOp,
            StreamScan,
            WindowOp,
        )
        spec = WindowSpec(kind=WindowSpecKind.RANGE,
                          range_=self.window.width,
                          slide=(self.window.slide
                                 if self.window.slide != self.window.width
                                 else None))
        triple_schema = Schema(("subject", "predicate", "object"))
        windowed = [WindowOp(StreamScan(name, name, triple_schema), spec)
                    for name in stream_names]
        plan = windowed[0]
        for right in windowed[1:]:
            plan = SetOp("union", plan, right)
        plan = BGPMatch(plan, self.bgp, tuple(self.select))
        return RelToStream(plan, self.r2s)

    def explain(self, stream_names: list[str]) -> str:
        from repro.plan.explain import explain_logical
        return explain_logical(self.logical_plan(stream_names))

    def evaluate_window(self, stream: RDFStream,
                        close: Timestamp) -> RSPResult | None:
        return self.evaluate_window_union([stream], close)

    def evaluate_window_union(self, streams: list[RDFStream],
                              close: Timestamp,
                              cache: dict | None = None) -> RSPResult | None:
        start, end = self.window.scope_at(close)
        if cache is not None:
            key = (tuple(id(s) for s in streams), start, end)
            triples = cache.get(key)
            if triples is None:
                triples = [triple for stream in streams
                           for triple in stream.between(start, end)]
                cache[key] = triples
        else:
            triples = [triple for stream in streams
                       for triple in stream.between(start, end)]
        contents = frozenset(triples)
        if self.report is ReportPolicy.NON_EMPTY and not triples:
            return None
        if self.report is ReportPolicy.CONTENT_CHANGE:
            if contents == self._previous_contents:
                return None
            self._previous_contents = contents
        graph = RDFGraph(triples)
        solutions = Bag(
            tuple(sorted((name, term) for name, term in solution.items()
                         if name in self.select))
            for solution in self.bgp.match(graph))
        emitted = self._apply_r2s(solutions)
        self._previous_solutions = solutions
        result = RSPResult(
            close, tuple(solution_to_dict(s)
                         for s in sorted(emitted, key=repr)))
        self.results.append(result)
        return result

    def _apply_r2s(self, solutions: Bag) -> Bag:
        if self.r2s is R2SKind.RSTREAM:
            return solutions
        if self.r2s is R2SKind.ISTREAM:
            return solutions.difference(self._previous_solutions)
        return self._previous_solutions.difference(solutions)


class RSPEngine:
    """Named RDF streams + registered continuous queries (the RSP4J shape)."""

    def __init__(self) -> None:
        self._streams: dict[str, RDFStream] = {}
        # Entries are [stream name, query, last reported close] — mutable
        # so the reported watermark can advance in place.
        self._queries: list[list] = []
        self._clock: Timestamp = 0
        #: Window scans avoided because another query over the same
        #: streams already extracted the identical window contents at the
        #: same close (multi-query sharing at the S2R layer).
        self.window_scans_shared = 0

    def register_stream(self, name: str) -> RDFStream:
        if name in self._streams:
            raise RSPError(f"stream {name!r} already registered")
        stream = RDFStream()
        self._streams[name] = stream
        return stream

    def stream(self, name: str) -> RDFStream:
        try:
            return self._streams[name]
        except KeyError:
            raise RSPError(f"unknown stream {name!r}") from None

    def register_query(self, stream_names: str | list[str],
                       query: ContinuousRSPQuery) -> ContinuousRSPQuery:
        """Register a continuous query over one stream or the union of
        several (RSP-QL queries may window multiple named streams; the
        window applies to their merged triples)."""
        if isinstance(stream_names, str):
            stream_names = [stream_names]
        if not stream_names:
            raise RSPError("query needs at least one stream")
        for name in stream_names:
            self.stream(name)
        query.plan = query.logical_plan(stream_names)
        self._queries.append([list(stream_names), query, 0])
        return query

    def explain(self, query: ContinuousRSPQuery) -> str:
        """EXPLAIN a registered query's unified-IR plan."""
        for stream_names, registered, _ in self._queries:
            if registered is query:
                return query.explain(stream_names)
        raise RSPError("query is not registered with this engine")

    def push(self, stream_name: str, triple: Triple,
             timestamp: Timestamp) -> list[RSPResult]:
        """Push one triple; returns results reported by window closes that
        became due."""
        stream = self.stream(stream_name)
        stream.push(triple, timestamp)
        self._clock = max(self._clock, timestamp)
        return self._report()

    def advance(self, timestamp: Timestamp) -> list[RSPResult]:
        """Advance time with no data (fires pending window closes)."""
        self._clock = max(self._clock, timestamp)
        return self._report()

    def _report(self) -> list[RSPResult]:
        # Multi-query sharing at the S2R layer: queries windowing the
        # same streams over the same scope reuse one extracted triple
        # list per (streams, scope) instead of rescanning per query.
        cache: dict[tuple, list] = {}
        out: list[RSPResult] = []
        for entry in self._queries:
            stream_names, query, reported_up_to = entry
            streams = [self._streams[name] for name in stream_names]
            for close in query.window.boundaries_up_to(self._clock):
                if close <= reported_up_to:
                    continue
                before = len(cache)
                result = query.evaluate_window_union(streams, close,
                                                     cache=cache)
                if len(cache) == before:
                    self.window_scans_shared += 1
                entry[2] = close
                if result is not None:
                    out.append(result)
        return out
