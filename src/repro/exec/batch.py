"""Columnar record batches: the unit of the kernel's vectorized path.

Per-tuple Python dispatch is the dominant cost in every benchmark (the
~11-18k tuples/s ceiling); the standard answer in managed-runtime
engines is micro-batching — amortize interpreter overhead by moving
*columns*, not rows, between operators.  :class:`RecordBatch` is that
unit: a column-major slab of plain Python lists, with optional numpy
acceleration for the predicates and projections that can use it.

Design constraints:

* **Duck-compatible with a row list.**  Anywhere the kernel moves a
  batch it accepts ``RecordBatch | list``; iterating a ``RecordBatch``
  yields row dicts, and ``len`` is the row count, so the default
  ``Operator.process_batch`` loop (and any operator without a columnar
  kernel) works on either representation unchanged.
* **Plain lists first.**  Columns are ordinary Python lists; numpy is an
  *optional* accelerator (``HAS_NUMPY``), never a dependency.  ``array``
  returns an ndarray view of one column when numpy is present and the
  plain list otherwise, so columnar kernels can be written once.
* **Cheap slicing.**  ``filter`` (by boolean mask) and ``take`` (by
  index) rebuild columns with ``itertools.compress`` / comprehensions —
  one C-level pass per column instead of one Python call per row.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

try:  # pragma: no cover - exercised both ways across environments
    import numpy as _np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAS_NUMPY = False

__all__ = ["HAS_NUMPY", "RecordBatch", "batch_length"]


def batch_length(batch: Any) -> int:
    """Row count of anything the kernel accepts as a batch."""
    return len(batch)


class RecordBatch:
    """A column-major batch of records sharing one set of fields.

    ``columns`` maps field name to a list of values; every column has the
    same length.  The batch is immutable by convention: transformation
    helpers return new batches sharing unchanged column lists.
    """

    __slots__ = ("columns", "fields", "_length")

    def __init__(self, columns: Mapping[str, Sequence[Any]],
                 fields: Sequence[str] | None = None) -> None:
        self.columns = dict(columns)
        self.fields = tuple(fields) if fields is not None \
            else tuple(self.columns)
        lengths = {len(col) for col in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"ragged record batch: column lengths {sorted(lengths)}")
        self._length = lengths.pop() if lengths else 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]],
                     fields: Sequence[str] | None = None) -> "RecordBatch":
        """Pivot row dicts into columns (fields from the first row when
        not given)."""
        rows = list(records)
        if fields is None:
            fields = list(rows[0]) if rows else []
        columns = {name: [row[name] for row in rows] for name in fields}
        return cls(columns, fields)

    @classmethod
    def from_arrays(cls, **columns: Sequence[Any]) -> "RecordBatch":
        return cls(columns)

    # -- row-compatible surface -----------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[dict[str, Any]]:
        fields = self.fields
        cols = [self.columns[name] for name in fields]
        for values in zip(*cols):
            yield dict(zip(fields, values))

    def __getitem__(self, index: int) -> dict[str, Any]:
        return {name: self.columns[name][index] for name in self.fields}

    def to_records(self) -> list[dict[str, Any]]:
        return list(self)

    def __repr__(self) -> str:
        return (f"RecordBatch(rows={self._length}, "
                f"fields={list(self.fields)!r})")

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RecordBatch):
            return (self.fields == other.fields
                    and self.columns == other.columns)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable columns

    # -- columnar surface -----------------------------------------------------

    def column(self, name: str) -> list[Any]:
        """One column as its backing list."""
        return self.columns[name]

    def array(self, name: str) -> Any:
        """One column as an ndarray when numpy is available (else the
        plain list) — the write-once surface for accelerated kernels."""
        col = self.columns[name]
        if HAS_NUMPY:
            return _np.asarray(col)
        return col

    def filter(self, mask: Sequence[Any]) -> "RecordBatch":
        """Rows where ``mask`` is truthy (accepts lists or ndarrays)."""
        mask = list(mask) if not isinstance(mask, list) else mask
        columns = {name: list(itertools.compress(col, mask))
                   for name, col in self.columns.items()}
        return RecordBatch(columns, self.fields)

    def take(self, indices: Sequence[int]) -> "RecordBatch":
        columns = {name: [col[i] for i in indices]
                   for name, col in self.columns.items()}
        return RecordBatch(columns, self.fields)

    def select(self, fields: Sequence[str]) -> "RecordBatch":
        """Projection onto bare columns — shares the column lists."""
        return RecordBatch({name: self.columns[name] for name in fields},
                           fields)

    def with_column(self, name: str,
                    values: Sequence[Any]) -> "RecordBatch":
        """A new batch with ``name`` added (or replaced)."""
        columns = dict(self.columns)
        columns[name] = list(values)
        fields = self.fields if name in self.columns \
            else self.fields + (name,)
        return RecordBatch(columns, fields)

    def map_column(self, name: str, fn: Callable[[Any], Any],
                   out: str | None = None) -> "RecordBatch":
        """Apply ``fn`` over one column (one tight loop, not one call per
        row dict)."""
        return self.with_column(out or name,
                                [fn(v) for v in self.columns[name]])

    def slice(self, start: int, stop: int | None = None) -> "RecordBatch":
        columns = {name: col[start:stop]
                   for name, col in self.columns.items()}
        return RecordBatch(columns, self.fields)

    def concat(self, other: "RecordBatch") -> "RecordBatch":
        if self.fields != other.fields:
            raise ValueError(
                f"cannot concat batches with fields {self.fields!r} "
                f"and {other.fields!r}")
        columns = {name: self.columns[name] + other.columns[name]
                   for name in self.fields}
        return RecordBatch(columns, self.fields)
