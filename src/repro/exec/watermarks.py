"""Unified watermark propagation for the execution kernel.

A :class:`WatermarkTracker` merges per-input watermarks with the standard
min-combine rule (Flink/Dataflow semantics): an operator's event-time
clock is the minimum of its inputs' clocks, and it only ever moves
forward.  Idle inputs are excluded from the minimum so one silent source
cannot stall downstream event time — the kernel-level fix for the stall
that ``runtime/job.py`` and ``dataflow`` previously each patched locally.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.core.time import Timestamp


class WatermarkTracker:
    """Min-merge of per-channel watermarks with idleness support."""

    def __init__(self, channels: Iterable[Hashable],
                 initial: Timestamp = -1,
                 initials: Mapping[Hashable, Timestamp] | None = None) -> None:
        self._marks: dict[Hashable, Timestamp] = {
            channel: (initials or {}).get(channel, initial)
            for channel in channels}
        self._idle: set[Hashable] = set()
        self._combined: Timestamp = min(self._marks.values(),
                                        default=initial)

    @property
    def combined(self) -> Timestamp:
        return self._combined

    def channel_mark(self, channel: Hashable) -> Timestamp:
        return self._marks[channel]

    def advance(self, channel: Hashable,
                watermark: Timestamp) -> Timestamp | None:
        """Record ``watermark`` on ``channel``.

        Returns the new combined watermark if it advanced, else ``None``.
        An advancing channel is implicitly active again.
        """
        marks = self._marks
        if watermark <= marks[channel]:
            if self._idle:
                self._idle.discard(channel)
            return None
        marks[channel] = watermark
        if self._idle:
            self._idle.discard(channel)
            return self._recombine()
        # No idle channels: min over all marks, skipping the list build.
        candidate = watermark if len(marks) == 1 else min(marks.values())
        if candidate > self._combined:
            self._combined = candidate
            return candidate
        return None

    def mark_idle(self, channel: Hashable) -> Timestamp | None:
        """Exclude ``channel`` from the min until it speaks again."""
        if channel in self._idle:
            return None
        self._idle.add(channel)
        return self._recombine()

    def mark_active(self, channel: Hashable) -> None:
        self._idle.discard(channel)

    def _recombine(self) -> Timestamp | None:
        live = [mark for channel, mark in self._marks.items()
                if channel not in self._idle]
        if not live:
            # All inputs idle: hold the clock rather than jumping ahead.
            return None
        candidate = min(live)
        if candidate > self._combined:
            self._combined = candidate
            return candidate
        return None
