"""Exchange: the kernel's keyed shuffle edge (fission, survey §4.2).

Fission replicates a stateful operator N ways and splits its input by
key so each replica owns a disjoint key range — the survey's single
biggest scale-out optimisation.  Inside one kernel :class:`Plan` the
shuffle is three operators:

* :class:`Exchange` stamps every element with its target partition,
  routing through the :class:`~repro.runtime.partitioning.Partitioner`
  family (hash by default — the same fixed ``default_hash`` the broker
  and the job runtime use, so in-plan fission, the worker pool and the
  actor runtime all agree on key placement);
* :class:`PartitionGate` in front of replica *i* admits only partition
  *i*'s elements (stateless and fusible, so it chains into the replica);
* :class:`Merge` re-unifies the replica outputs.  It carries no logic of
  its own: the plan wires a :class:`~repro.exec.watermarks.WatermarkTracker`
  over its N input channels, so the merged event-time clock is the
  *minimum* across partitions — one slow partition holds the clock back
  rather than letting another partition's panes fire early.  That
  per-partition min-combine is what makes event-time semantics survive
  the shuffle.

``fission`` splices the whole pattern into a plan under construction.

The multi-process execution of the same shape lives in
:mod:`repro.runtime.pool`; this module is the same-process fallback and
the semantic reference the pool's output is difftested against.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.exec.operator import Operator

__all__ = ["Exchange", "PartitionGate", "Merge", "fission"]


class Exchange(Operator):
    """Stamps elements with their target partition: ``(partition, value)``.

    ``key_fn`` extracts the routing key from an element; the partitioner
    (a :class:`repro.runtime.partitioning.Partitioner`, hash by default)
    maps it to one or more of ``parallelism`` downstream partitions.
    Broadcast partitioners fan one element out to every partition —
    useful for dimension-table sides of a fissioned join.
    """

    fusible = True

    def __init__(self, parallelism: int,
                 key_fn: Callable[[Any], Any],
                 partitioner=None) -> None:
        if parallelism < 1:
            raise ValueError(f"need at least one partition, "
                             f"got {parallelism}")
        self.parallelism = parallelism
        self.key_fn = key_fn
        if partitioner is None:
            # Imported lazily: repro.runtime imports repro.exec at package
            # level, so a module-level import here would be circular.
            from repro.runtime.partitioning import HashPartitioner
            partitioner = HashPartitioner()
        self.partitioner = partitioner

    def set_parallelism(self, parallelism: int) -> None:
        """Re-point the shuffle at a new downstream width (live rescale).

        The Exchange is stateless, so changing the modulus is the entire
        routing-side migration: elements arriving after the call are
        stamped for the new width.  The caller owns re-keying the replica
        *state* (``repro.runtime.rescale``) and re-wiring the gates.
        """
        if parallelism < 1:
            raise ValueError(f"need at least one partition, "
                             f"got {parallelism}")
        self.parallelism = parallelism

    def process_element(self, value: Any, input_index: int = 0) -> None:
        emit = self.ctx.emitter.emit
        for index in self.partitioner.route(
                value, self.key_fn(value), self.parallelism):
            emit((index, value))

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        """Route a whole batch: one stamped sub-batch per partition.

        Without this, a batched push through a fissioned plan silently
        degraded to per-element emission (the default loop) — every
        element became its own downstream delivery.  Bucketing by
        partition keeps batches whole: each replica's gate receives one
        homogeneous stamped batch per input batch (within-partition
        order preserved; stamped tuples keep non-batch-capable
        downstreams working via the default loop).
        """
        route = self.partitioner.route
        key_fn = self.key_fn
        parallelism = self.parallelism
        buckets: dict[int, list[tuple[int, Any]]] = {}
        for value in batch:
            for index in route(value, key_fn(value), parallelism):
                bucket = buckets.get(index)
                if bucket is None:
                    bucket = buckets[index] = []
                bucket.append((index, value))
        emit_batch = self.ctx.emitter.emit_batch
        for index in sorted(buckets):
            emit_batch(buckets[index])


class PartitionGate(Operator):
    """Admits partition ``index``'s elements into one fission replica."""

    fusible = True

    def __init__(self, index: int) -> None:
        self.index = index

    def process_element(self, stamped: tuple[int, Any],
                        input_index: int = 0) -> None:
        if stamped[0] == self.index:
            self.ctx.emitter.emit(stamped[1])

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        """Slice-and-forward: unwrap this partition's share as one batch.

        ``Exchange`` sends homogeneous per-partition batches, so this is
        usually all-or-nothing; the comprehension also handles mixed
        batches from hand-built plans.
        """
        own = self.index
        admitted = [value for stamp, value in batch if stamp == own]
        if admitted:
            self.ctx.emitter.emit_batch(admitted)


class Merge(Operator):
    """Re-unifies fission replica outputs into one channel.

    Deliberately logic-free: elements pass through in arrival order, and
    the event-time min-combine across the replica inputs is the plan's
    per-node :class:`~repro.exec.watermarks.WatermarkTracker` doing its
    normal job over N channels.
    """

    def __init__(self, parallelism: int = 1) -> None:
        self.parallelism = parallelism

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.ctx.emitter.emit(value)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        self.ctx.emitter.emit_batch(batch)


def fission(plan, upstream: str, name: str, parallelism: int,
            key_fn: Callable[[Any], Any],
            replica_factory: Callable[[int], Operator],
            partitioner=None) -> str:
    """Splice ``parallelism`` replicas of an operator into ``plan``.

    Builds ``upstream → Exchange → (gate_i → replica_i)×N → Merge`` and
    returns the merge channel name, to be used as the downstream's input.
    ``replica_factory(i)`` must return a *fresh* operator per partition —
    replicas own disjoint key ranges and must not share state.
    """
    exchange = plan.add_operator(
        f"{name}.exchange",
        Exchange(parallelism, key_fn, partitioner=partitioner),
        [upstream])
    replicas = []
    for index in range(parallelism):
        gate = plan.add_operator(f"{name}.gate{index}",
                                 PartitionGate(index), [exchange])
        replicas.append(plan.add_operator(f"{name}!{index}",
                                          replica_factory(index), [gate]))
    return plan.add_operator(f"{name}.merge", Merge(parallelism), replicas)
