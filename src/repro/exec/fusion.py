"""Generic operator-fusion fixpoint.

Chaining in ``runtime/dag.py`` and plan fusion in ``repro.exec.plan``
share the same shape: repeatedly find an edge whose endpoints may legally
be collapsed, merge them, and stop when no edge qualifies.  The graph
representation differs per caller, so the loop is parameterised by
callbacks rather than a concrete graph type.
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

Edge = TypeVar("Edge")


def fuse_fixpoint(edges: Callable[[], Iterable[Edge]],
                  can_fuse: Callable[[Edge], bool],
                  merge: Callable[[Edge], None]) -> int:
    """Greedily merge fusible edges until none remain; returns the count.

    ``edges`` is re-evaluated after every merge because a merge rewrites
    the graph underneath the iterator.
    """
    fused = 0
    changed = True
    while changed:
        changed = False
        for edge in list(edges()):
            if can_fuse(edge):
                merge(edge)
                fused += 1
                changed = True
                break
    return fused
