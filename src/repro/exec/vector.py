"""Vectorized kernel operators: true columnar batch kernels.

The dual-mode protocol makes every operator batch-*correct* (the default
``process_batch`` loops ``process_element``); the operators here make
the hot ones batch-*fast*.  Each keeps an exact per-element path — the
same operator works in both modes, and the difftest parity suite drives
both — while ``process_batch`` runs one tight loop (or one numpy
expression) per batch:

* :class:`VectorFilter` — predicate over a column (mask + compress)
* :class:`VectorProject` — projection onto bare columns (column sharing)
* :class:`VectorMap` — stateless map, one comprehension per batch
* :class:`VectorKeyedAggregate` — keyed accumulation with columnar fold
  kernels (:func:`keyed_count` uses ``collections.Counter`` — a C-level
  group-by — and :func:`keyed_sum`/:func:`keyed_fold` one zip loop)
* :class:`VectorRangeWindow` — RANGE-window insert (two list extends)
  and expiry (one bisect + one slice del per watermark)

All are ``fusible``: a fused filter→project→aggregate chain moves one
batch end to end with zero per-element dispatch between members.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Any, Callable, Iterable

from repro.core.time import Timestamp
from repro.exec.batch import HAS_NUMPY, RecordBatch
from repro.exec.operator import Operator

if HAS_NUMPY:  # pragma: no branch
    import numpy as _np

__all__ = [
    "VectorFilter", "VectorKeyedAggregate", "VectorMap", "VectorProject",
    "VectorRangeWindow", "keyed_count", "keyed_fold", "keyed_sum",
]


class VectorFilter(Operator):
    """Filter with a columnar mask kernel.

    ``predicate`` is the exact row semantics (``predicate(row) -> bool``);
    ``column``/``compare`` optionally describe the same predicate
    columnar-ly: ``compare`` is applied to the named column's values (a
    whole ndarray when numpy is available, else one tight list loop) to
    produce the selection mask.
    """

    fusible = True

    def __init__(self, predicate: Callable[[Any], bool],
                 column: str | None = None,
                 compare: Callable[[Any], Any] | None = None) -> None:
        self.predicate = predicate
        self.column = column
        self.compare = compare

    def process_element(self, value: Any, input_index: int = 0) -> None:
        if self.predicate(value):
            self.ctx.emitter.emit(value)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        column = self.column
        if isinstance(batch, RecordBatch) and column is not None \
                and self.compare is not None:
            if HAS_NUMPY:
                mask = self.compare(_np.asarray(batch.columns[column]))
                if mask.all():
                    self.ctx.emitter.emit_batch(batch)
                    return
                selected = batch.filter(mask.tolist())
            else:
                compare = self.compare
                selected = batch.filter(
                    [compare(v) for v in batch.columns[column]])
            if len(selected):
                self.ctx.emitter.emit_batch(selected)
            return
        predicate = self.predicate
        selected = [value for value in batch if predicate(value)]
        if selected:
            self.ctx.emitter.emit_batch(selected)


class VectorProject(Operator):
    """Projection onto bare columns.

    On a :class:`RecordBatch` this is ``select`` — the output batch
    *shares* the retained column lists, so the columnar kernel copies
    nothing at all.
    """

    fusible = True

    def __init__(self, fields: Iterable[str]) -> None:
        self.fields = tuple(fields)

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.ctx.emitter.emit({name: value[name] for name in self.fields})

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        if isinstance(batch, RecordBatch):
            self.ctx.emitter.emit_batch(batch.select(self.fields))
            return
        fields = self.fields
        self.ctx.emitter.emit_batch(
            [{name: value[name] for name in fields} for value in batch])


class VectorMap(Operator):
    """Stateless map; the batch kernel is one comprehension per batch.

    ``batch_fn`` optionally replaces it with a whole-batch transform
    (e.g. a numpy expression over ``RecordBatch`` columns); it must equal
    ``[fn(v) for v in batch]`` in row semantics.
    """

    fusible = True

    def __init__(self, fn: Callable[[Any], Any],
                 batch_fn: Callable[[Any], Any] | None = None) -> None:
        self.fn = fn
        self.batch_fn = batch_fn

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.ctx.emitter.emit(self.fn(value))

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        if self.batch_fn is not None and isinstance(batch, RecordBatch):
            self.ctx.emitter.emit_batch(self.batch_fn(batch))
            return
        fn = self.fn
        self.ctx.emitter.emit_batch([fn(value) for value in batch])


def keyed_count(key: str) -> "VectorKeyedAggregate":
    """COUNT(*) GROUP BY ``key``; the columnar fold is one ``Counter``
    over the key column — a C-level group-by per batch."""

    def fold_batch(groups: dict, batch: RecordBatch) -> None:
        get = groups.get
        for k, n in Counter(batch.columns[key]).items():
            groups[k] = get(k, 0) + n

    return VectorKeyedAggregate(
        key=lambda row: row[key], zero=0,
        fold=lambda acc, _row: acc + 1,
        key_column=key, fold_batch=fold_batch)


def keyed_sum(key: str, value: str) -> "VectorKeyedAggregate":
    """SUM(``value``) GROUP BY ``key``; one zip loop per batch."""

    def fold_batch(groups: dict, batch: RecordBatch) -> None:
        get = groups.get
        for k, v in zip(batch.columns[key], batch.columns[value]):
            groups[k] = get(k, 0) + v

    return VectorKeyedAggregate(
        key=lambda row: row[key], zero=0,
        fold=lambda acc, row: acc + row[value],
        key_column=key, fold_batch=fold_batch)


def keyed_fold(key: str, zero: Any,
               fold: Callable[[Any, Any], Any]) -> "VectorKeyedAggregate":
    """Generic keyed fold over whole rows (batch kernel: one zip loop
    over the key column + row iteration)."""
    return VectorKeyedAggregate(key=lambda row: row[key], zero=zero,
                                fold=fold, key_column=key)


class VectorKeyedAggregate(Operator):
    """Keyed aggregate *accumulation* with a columnar fold kernel.

    State is a plain ``{key: accumulator}`` dict.  The per-element path
    folds one row; the batch path either runs ``fold_batch`` (a
    whole-batch kernel mutating the groups dict, e.g. Counter-based
    counting) or one zip loop pairing the key column with the rows.
    Results — ``(key, accumulator)`` pairs, key-sorted — are emitted as
    one batch at ``close``; ``groups()`` reads them live.

    Accumulation is order-insensitive for commutative folds, which is
    what makes the operator batch-safe; retracting inputs are not
    accepted (the planner's batching pass falls back to per-element
    operators for those — see :mod:`repro.plan.batching`).
    """

    fusible = True

    def __init__(self, key: Callable[[Any], Any], zero: Any,
                 fold: Callable[[Any, Any], Any],
                 key_column: str | None = None,
                 fold_batch: Callable[[dict, RecordBatch], None]
                 | None = None) -> None:
        self.key = key
        self.zero = zero
        self.fold = fold
        self.key_column = key_column
        self.fold_batch = fold_batch
        self._groups: dict[Any, Any] = {}

    def process_element(self, value: Any, input_index: int = 0) -> None:
        k = self.key(value)
        self._groups[k] = self.fold(self._groups.get(k, self.zero), value)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        groups = self._groups
        if isinstance(batch, RecordBatch) and self.key_column is not None:
            if self.fold_batch is not None:
                self.fold_batch(groups, batch)
                return
            get = groups.get
            fold, zero = self.fold, self.zero
            for k, row in zip(batch.columns[self.key_column], batch):
                groups[k] = fold(get(k, zero), row)
            return
        key, fold, zero = self.key, self.fold, self.zero
        get = groups.get
        for value in batch:
            k = key(value)
            groups[k] = fold(get(k, zero), value)

    def groups(self) -> dict[Any, Any]:
        return dict(self._groups)

    def close(self) -> None:
        if self._groups:
            self.ctx.emitter.emit_batch(
                sorted(self._groups.items(), key=lambda kv: repr(kv[0])))

    def snapshot(self) -> Any:
        return dict(self._groups)

    def restore(self, state: Any) -> None:
        self._groups = dict(state)


class VectorRangeWindow(Operator):
    """RANGE-window contents with vectorized insert and expiry.

    Keeps the rows whose timestamps lie in ``(watermark - size,
    watermark]``-style suffix: inserts append (two list ``extend`` calls
    per batch — the time column is lifted columnar-ly from a
    :class:`RecordBatch`), expiry on each watermark advance is one
    binary search plus one slice deletion instead of a per-element
    deque loop.  Requires non-decreasing element times (append-only,
    time-ordered input — the condition the planner's batching pass
    proves before routing batches here).  Elements pass through
    downstream unchanged (the insert stream); ``contents()`` reads the
    live window.
    """

    fusible = True

    def __init__(self, size: int, time_fn: Callable[[Any], Timestamp]
                 | None = None, time_column: str = "t") -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self.size = size
        self.time_fn = time_fn or (lambda row: row[time_column])
        self.time_column = time_column
        self._times: list[Timestamp] = []
        self._rows: list[Any] = []

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self._times.append(self.time_fn(value))
        self._rows.append(value)
        self.ctx.emitter.emit(value)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        if isinstance(batch, RecordBatch) \
                and self.time_column in batch.columns:
            self._times.extend(batch.columns[self.time_column])
        else:
            time_fn = self.time_fn
            self._times.extend(time_fn(value) for value in batch)
        self._rows.extend(batch)
        self.ctx.emitter.emit_batch(batch)

    def process_watermark(self, watermark: Timestamp,
                          input_index: int = 0) -> None:
        # Expire everything at or below watermark - size: ``_times`` is
        # non-decreasing, so the cut point is one bisect away.
        cut = bisect_right(self._times, watermark - self.size)
        if cut:
            del self._times[:cut]
            del self._rows[:cut]

    def contents(self) -> list[Any]:
        return list(self._rows)

    def snapshot(self) -> Any:
        return (list(self._times), list(self._rows))

    def restore(self, state: Any) -> None:
        times, rows = state
        self._times = list(times)
        self._rows = list(rows)
