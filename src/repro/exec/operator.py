"""The kernel ``Operator`` protocol and emitters.

Every execution substrate in the repo lowers to this surface: an operator
is opened with an :class:`OperatorContext`, receives pushed elements via
``process_element``, watermarks via ``process_watermark``, and emits
downstream through its context's :class:`Emitter`.  ``FusedOperator``
collapses a chain of operators into one, eliminating per-hop dispatch —
the same optimisation ``runtime/dag.py`` applies to job graphs, now
available to any kernel plan.

The protocol is **dual-mode**: alongside ``process_element`` every
operator has ``process_batch``, whose default implementation loops the
per-element path — so every existing operator keeps working unmodified
when a source pushes a batch, while hot operators override it with a
true columnar kernel (see :mod:`repro.exec.vector`).  Batches are
``RecordBatch`` or plain lists; emitters mirror the split with
``emit_batch``, and a fused chain forwards whole batches member to
member (a member without a columnar kernel degrades to the loop *inside*
the chain without breaking batching for its neighbours).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.time import Timestamp
from repro.exec.state import DictStateBackend, StateBackend


class Emitter:
    """Downstream output channel of an operator."""

    def emit(self, value: Any) -> None:
        raise NotImplementedError

    def emit_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.emit(value)

    def emit_batch(self, batch: Any) -> None:
        """Emit a whole batch (``RecordBatch`` or list) downstream.

        The default unrolls to per-element emission; plan emitters and
        :class:`StageEmitter` override it to keep batches whole.
        """
        emit = self.emit
        for value in batch:
            emit(value)

    def emit_watermark(self, watermark: Timestamp) -> None:  # pragma: no cover
        """Forward a watermark downstream (no-op unless routed)."""


class CollectingEmitter(Emitter):
    """Buffers emissions; the host drains them (pull/actor adapters)."""

    def __init__(self) -> None:
        self.buffer: list[Any] = []

    def emit(self, value: Any) -> None:
        self.buffer.append(value)

    def emit_batch(self, batch: Any) -> None:
        self.buffer.extend(batch)

    def drain(self) -> list[Any]:
        out, self.buffer = self.buffer, []
        return out


class StageEmitter(Emitter):
    """Feeds emissions straight into the next operator of a fused chain."""

    def __init__(self, downstream: "Operator") -> None:
        self._downstream = downstream

    def emit(self, value: Any) -> None:
        self._downstream.process_element(value)

    def emit_batch(self, batch: Any) -> None:
        self._downstream.process_batch(batch)


class OperatorContext:
    """Everything an operator learns at ``open`` time."""

    def __init__(self, name: str = "", subtask: int = 0, parallelism: int = 1,
                 emitter: Emitter | None = None,
                 state_factory: Callable[[], StateBackend] = DictStateBackend,
                 watermark_fn: Callable[[], Timestamp] | None = None) -> None:
        self.name = name
        self.subtask = subtask
        self.parallelism = parallelism
        self.emitter = emitter if emitter is not None else CollectingEmitter()
        self.state_factory = state_factory
        self._watermark_fn = watermark_fn

    def new_state(self) -> StateBackend:
        return self.state_factory()

    def watermark(self) -> Timestamp:
        """Current combined input watermark of this operator."""
        if self._watermark_fn is None:
            return -1
        return self._watermark_fn()


class Operator:
    """Push-based physical operator: open / process / watermark / close."""

    #: stateless single-in single-out operators may be fused into chains
    fusible = False

    ctx: OperatorContext

    def open(self, ctx: OperatorContext) -> None:
        self.ctx = ctx

    def process_element(self, value: Any, input_index: int = 0) -> None:
        raise NotImplementedError

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        """Process a whole batch (``RecordBatch`` or list of elements).

        The default loops the per-element path, so every operator is
        batch-correct by construction; columnar operators override this
        with a vectorized kernel and emit via ``emit_batch`` to keep the
        batch whole downstream.
        """
        process = self.process_element
        for value in batch:
            process(value, input_index)

    def process_watermark(self, watermark: Timestamp,
                          input_index: int = 0) -> None:
        """Combined input watermark advanced to ``watermark``."""

    def close(self) -> None:
        """End of all inputs; flush any remaining output."""

    def emit(self, value: Any) -> None:
        self.ctx.emitter.emit(value)

    def emit_batch(self, batch: Any) -> None:
        self.ctx.emitter.emit_batch(batch)

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> Any:
        return None

    def restore(self, state: Any) -> None:  # pragma: no cover - default no-op
        pass


class FusedOperator(Operator):
    """A chain of operators executed as one, without per-hop dispatch.

    Elements enter at the head; each member's emitter pushes synchronously
    into the next member, and the tail writes to the fused operator's own
    downstream.  Watermarks and close cascade head-to-tail so flushed
    output still traverses the remainder of the chain.
    """

    def __init__(self, members: Iterable[Operator]) -> None:
        flattened: list[Operator] = []
        for member in members:
            if isinstance(member, FusedOperator):
                flattened.extend(member.members)
            else:
                flattened.append(member)
        if not flattened:
            raise ValueError("FusedOperator needs at least one member")
        self.members = flattened
        self.fusible = all(member.fusible for member in flattened)
        # Watermarks only cascade to members that actually override the
        # base no-op; the rest would burn a call per advance for nothing.
        self._wm_members = [
            member for member in flattened
            if type(member).process_watermark is not Operator.process_watermark]

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        downstream: Emitter = ctx.emitter
        # Wire tail-first so each member's emitter targets an opened successor.
        for position in range(len(self.members) - 1, -1, -1):
            member = self.members[position]
            member.open(OperatorContext(
                name=f"{ctx.name}[{position}]", subtask=ctx.subtask,
                parallelism=ctx.parallelism, emitter=downstream,
                state_factory=ctx.state_factory,
                watermark_fn=ctx._watermark_fn))
            downstream = StageEmitter(member)

    def process_element(self, value: Any, input_index: int = 0) -> None:
        self.members[0].process_element(value, input_index)

    def process_batch(self, batch: Any, input_index: int = 0) -> None:
        # The head gets the whole batch; each member's StageEmitter
        # forwards it via emit_batch, so a fused filter→project→aggregate
        # chain runs one tight loop per batch per member.
        self.members[0].process_batch(batch, input_index)

    def process_watermark(self, watermark: Timestamp,
                          input_index: int = 0) -> None:
        for member in self._wm_members:
            member.process_watermark(watermark, input_index)
            input_index = 0

    def close(self) -> None:
        for member in self.members:
            member.close()

    def snapshot(self) -> Any:
        return [member.snapshot() for member in self.members]

    def restore(self, state: Any) -> None:
        for member, member_state in zip(self.members, state):
            member.restore(member_state)


def batch_capable(op: Operator) -> bool:
    """True when ``op`` carries a real columnar kernel (overrides the
    default ``process_batch`` loop).  A fused chain counts when any
    member does — the rest degrade gracefully inside the chain."""
    if isinstance(op, FusedOperator):
        return any(batch_capable(member) for member in op.members)
    return type(op).process_batch is not Operator.process_batch
