"""Kernel plans: named operators wired into a push-based dataflow.

A :class:`Plan` is the kernel's unit of execution.  Layers lower their
queries to a plan — sources are named input channels, operators are
:class:`~repro.exec.operator.Operator` instances — then drive it with
``push`` / ``push_batch`` / ``advance_watermark`` / ``mark_idle`` /
``close``.

The plan owns the three cross-cutting concerns the four legacy engines
each reimplemented:

* **watermark propagation** — every operator gets a
  :class:`~repro.exec.watermarks.WatermarkTracker` over its input
  channels; advancement is two-phase (all trackers update in topological
  order, then ``process_watermark`` fires in plan order) so elements
  emitted by an upstream firing reach downstream operators that already
  observe the new watermark, matching Dataflow pane semantics.
* **idle sources** — a source may declare ``idle_timeout`` (measured in
  plan-wide pushes); once it falls that far behind it is excluded from
  downstream min-combines, and ``mark_idle``/``advance_watermark`` give
  callers a manual escape hatch.  One fix, every layer.
* **observability** — ``exec.operator.records_in`` / ``records_out``
  counters per operator, recorded at the plan boundary instead of inside
  each engine.  When :mod:`repro.obs.profile` is enabled *before*
  ``open()``, the plan additionally grows per-operator profiling
  collectors (in/out, sampled self-time, watermark lag) — the decision is
  taken once at open time, so the disabled hot path keeps its exact
  pre-profiling shape: no collector allocation, no timing calls, just one
  ``is None`` check per plan-wide push.

``fuse`` collapses chains of fusible operators into
:class:`~repro.exec.operator.FusedOperator` nodes before ``open``.
"""

from __future__ import annotations

from time import perf_counter as _perf
from typing import Any, Callable

import repro.obs as obs
from repro.core.time import Timestamp
from repro.exec.fusion import fuse_fixpoint
from repro.exec.operator import Emitter, Operator, OperatorContext
from repro.exec.state import DictStateBackend, StateBackend
from repro.exec.watermarks import WatermarkTracker
from repro.obs import profile as _profile


class _Source:
    """A named input channel of the plan."""

    __slots__ = ("name", "idle_timeout", "initial_watermark", "targets",
                 "last_seq", "deliveries", "batch_deliveries", "watermark")

    def __init__(self, name: str, idle_timeout: int | None,
                 initial_watermark: Timestamp) -> None:
        self.name = name
        self.idle_timeout = idle_timeout
        self.initial_watermark = initial_watermark
        self.targets: list[tuple["_Node", int]] = []
        self.last_seq = 0
        #: bound per-target entry points, precomputed at open()
        self.deliveries: list[tuple[Callable[..., None], int]] = []
        #: bound per-target *batch* entry points, precomputed at open()
        self.batch_deliveries: list[tuple[Callable[..., None], int]] = []
        #: last advanced watermark (read pull-based for lag estimates)
        self.watermark = initial_watermark


class _Node:
    """An operator plus its plan wiring (inputs, targets, tracker, obs)."""

    __slots__ = ("name", "op", "inputs", "targets", "tracker", "plan",
                 "fires_watermark", "profile", "profiler", "count",
                 "_registry", "_in_counter", "_out_counter")

    def __init__(self, name: str, op: Operator, inputs: list[str]) -> None:
        self.name = name
        self.op = op
        self.inputs = inputs
        self.targets: list[tuple["_Node", int]] = []
        self.tracker: WatermarkTracker | None = None
        self.plan: "Plan | None" = None
        self.fires_watermark = True
        self.profile = None
        #: flat copies of plan state for the profiled entry point — one
        #: attribute load each instead of two chained ones per element
        self.profiler = None
        self.count = False
        self._registry = None
        self._in_counter = None
        self._out_counter = None

    def _counters(self):
        # The global registry is swapped by obs.reset() between tests, so
        # the cached counter handles are guarded by registry identity.
        registry = obs.get_registry()
        if registry is not self._registry:
            labels = self.plan.labels
            self._in_counter = registry.counter(
                "exec.operator.records_in", operator=self.name, **labels)
            self._out_counter = registry.counter(
                "exec.operator.records_out", operator=self.name, **labels)
            self._registry = registry
        return self._in_counter, self._out_counter

    def receive(self, value: Any, input_index: int) -> None:
        if self.plan._count:
            self._counters()[0].inc()
        self.op.process_element(value, input_index)

    def receive_batch(self, batch: Any, input_index: int) -> None:
        if self.plan._count:
            self._counters()[0].inc(len(batch))
        self.op.process_batch(batch, input_index)

    def preceive(self, value: Any, input_index: int) -> None:
        """The profiled entry point (only ever wired by ``open()`` when
        profiling was enabled, so the plain hot path never pays for it).

        Self-time accounting: the call is timed inclusively, downstream
        work that ran synchronously inside it (via the emitter reaching
        other ``preceive`` frames) accumulates in the stack frame pushed
        here, and the difference is this operator's own busy time — which
        is why busy shares across a plan sum to ~100%.
        """
        prof = self.profile
        prof.records_in += 1
        if self.count:
            self._counters()[0].inc()
        profiler = self.profiler
        if profiler.timing:
            stack = profiler.stack
            stack.append(0.0)
            started = _perf()
            self.op.process_element(value, input_index)
            elapsed = _perf() - started
            child_time = stack.pop()
            prof.busy_seconds += elapsed - child_time
            prof.timed_in += 1
            if stack:
                stack[-1] += elapsed
        else:
            self.op.process_element(value, input_index)

    def preceive_batch(self, batch: Any, input_index: int) -> None:
        """The profiled batch entry point (wired only when profiling is
        on).  ``records_in`` stays exact (+= rows), ``batches_in`` and the
        rows-per-batch histogram record the batching shape, and the timed
        flow uses the same child-time stack as per-element pushes."""
        rows = len(batch)
        prof = self.profile
        prof.records_in += rows
        prof.record_batch(rows)
        if self.count:
            self._counters()[0].inc(rows)
        profiler = self.profiler
        if profiler.timing:
            stack = profiler.stack
            stack.append(0.0)
            started = _perf()
            self.op.process_batch(batch, input_index)
            elapsed = _perf() - started
            child_time = stack.pop()
            prof.busy_seconds += elapsed - child_time
            prof.timed_in += 1
            if stack:
                stack[-1] += elapsed
        else:
            self.op.process_batch(batch, input_index)


class _NodeEmitter(Emitter):
    """Routes a node's emissions to every downstream (node, input) pair."""

    __slots__ = ("_node", "_targets")

    def __init__(self, node: _Node) -> None:
        self._node = node
        self._targets = node.targets

    def emit(self, value: Any) -> None:
        node = self._node
        if node.plan._count:
            node._counters()[1].inc()
        for target, input_index in self._targets:
            target.receive(value, input_index)

    def emit_batch(self, batch: Any) -> None:
        node = self._node
        if node.plan._count:
            node._counters()[1].inc(len(batch))
        for target, input_index in self._targets:
            target.receive_batch(batch, input_index)


class _FastEmitter(Emitter):
    """The no-counting emitter: straight to downstream ``process_element``."""

    __slots__ = ("_deliveries", "_batch_deliveries")

    def __init__(self, node: _Node) -> None:
        self._deliveries = [(target.op.process_element, input_index)
                            for target, input_index in node.targets]
        self._batch_deliveries = [(target.op.process_batch, input_index)
                                  for target, input_index in node.targets]

    def emit(self, value: Any) -> None:
        for deliver, input_index in self._deliveries:
            deliver(value, input_index)

    def emit_batch(self, batch: Any) -> None:
        for deliver, input_index in self._batch_deliveries:
            deliver(batch, input_index)


class _ProfilingEmitter(Emitter):
    """Counts emissions into the node's profile, then delivers downstream
    through the profiled entry points.  Subsumes ``_NodeEmitter`` when the
    plan also counts into the registry."""

    __slots__ = ("_node", "_profile", "_count", "_deliveries",
                 "_batch_deliveries")

    def __init__(self, node: _Node) -> None:
        self._node = node
        self._profile = node.profile
        self._count = node.count
        self._deliveries = [(target.preceive, input_index)
                            for target, input_index in node.targets]
        self._batch_deliveries = [(target.preceive_batch, input_index)
                                  for target, input_index in node.targets]

    def emit(self, value: Any) -> None:
        self._profile.records_out += 1
        if self._count:
            self._node._counters()[1].inc()
        for deliver, input_index in self._deliveries:
            deliver(value, input_index)

    def emit_batch(self, batch: Any) -> None:
        rows = len(batch)
        self._profile.records_out += rows
        if self._count:
            self._node._counters()[1].inc(rows)
        for deliver, input_index in self._batch_deliveries:
            deliver(batch, input_index)


class Plan:
    """A wired set of kernel operators plus sources, ready to push into."""

    def __init__(self) -> None:
        self._sources: dict[str, _Source] = {}
        self._nodes: dict[str, _Node] = {}
        self._order: list[_Node] = []
        self._opened = False
        self._seq = 0
        self._idle: set[str] = set()
        self._count = True
        self._track_idle = False
        self._profiler: "_profile.PlanProfiler | None" = None
        self.labels: dict[str, str] = {}

    # -- construction ----------------------------------------------------------

    def add_source(self, name: str, idle_timeout: int | None = None,
                   initial_watermark: Timestamp = -1) -> str:
        if name in self._sources or name in self._nodes:
            raise ValueError(f"duplicate plan channel {name!r}")
        self._sources[name] = _Source(name, idle_timeout, initial_watermark)
        return name

    def add_operator(self, name: str, op: Operator,
                     inputs: list[str]) -> str:
        if name in self._sources or name in self._nodes:
            raise ValueError(f"duplicate plan channel {name!r}")
        if not inputs:
            raise ValueError(f"operator {name!r} needs at least one input")
        for channel in inputs:
            if channel not in self._sources and channel not in self._nodes:
                raise ValueError(
                    f"operator {name!r} reads unknown channel {channel!r}")
        node = _Node(name, op, list(inputs))
        self._nodes[name] = node
        self._order.append(node)
        return name

    def operator(self, name: str) -> Operator:
        return self._nodes[name].op

    def node_names(self) -> list[str]:
        return [node.name for node in self._order]

    # -- fusion ----------------------------------------------------------------

    def fuse(self) -> int:
        """Collapse chains of fusible operators; returns fusions applied."""
        if self._opened:
            raise RuntimeError("fuse() must run before open()")
        from repro.exec.operator import FusedOperator

        def consumers(channel: str) -> list[_Node]:
            return [node for node in self._order
                    for inp in node.inputs if inp == channel]

        def edges():
            for down in self._order:
                if len(down.inputs) == 1 and down.inputs[0] in self._nodes:
                    yield (self._nodes[down.inputs[0]], down)

        def can_fuse(edge) -> bool:
            up, down = edge
            return (up.op.fusible and down.op.fusible
                    and len(consumers(up.name)) == 1)

        def merge(edge) -> None:
            up, down = edge
            down.op = FusedOperator([up.op, down.op])
            down.inputs = list(up.inputs)
            del self._nodes[up.name]
            self._order.remove(up)

        return fuse_fixpoint(edges, can_fuse, merge)

    # -- lifecycle -------------------------------------------------------------

    def open(self, state_factory: Callable[[], StateBackend]
             = DictStateBackend, count_elements: bool = True,
             **labels: str) -> None:
        """Wire targets/trackers and open every operator in plan order."""
        if self._opened:
            raise RuntimeError("plan already opened")
        self._opened = True
        self._count = count_elements
        self.labels = dict(labels)
        # Channel initial watermarks propagate: a node's initial combined
        # mark is the min over its inputs' initials.
        initials: dict[str, Timestamp] = {
            name: src.initial_watermark
            for name, src in self._sources.items()}
        for node in self._order:
            node.plan = self
            for index, channel in enumerate(node.inputs):
                upstream = self._sources.get(channel) or self._nodes[channel]
                upstream.targets.append((node, index))
            node.tracker = WatermarkTracker(
                list(node.inputs),
                initials={ch: initials[ch] for ch in node.inputs})
            initials[node.name] = node.tracker.combined
        # Profiling is decided once, here: plans opened while profiling is
        # off never allocate a collector or take a timing call.
        if _profile._ENABLED:
            self._profiler = _profile.PlanProfiler(self)
            for node in self._order:
                node.profile = self._profiler.register(node.name, node.op)
                node.profiler = self._profiler
                node.count = count_elements
        for node in self._order:
            if self._profiler is not None:
                emitter: Emitter = _ProfilingEmitter(node)
            elif count_elements:
                emitter = _NodeEmitter(node)
            else:
                emitter = _FastEmitter(node)
            node.op.open(OperatorContext(
                name=node.name, emitter=emitter,
                state_factory=state_factory,
                watermark_fn=(lambda tracker=node.tracker:
                              tracker.combined)))
        # Hot-path precomputation: pushes bypass per-source idle
        # bookkeeping entirely when no source declares a timeout, and
        # deliver straight to ``process_element`` when counting is off.
        self._track_idle = any(src.idle_timeout is not None
                               for src in self._sources.values())
        from repro.exec.operator import FusedOperator
        for node in self._order:
            op_type = type(node.op)
            overrides = (op_type.process_watermark
                         is not Operator.process_watermark)
            if op_type is FusedOperator:
                overrides = bool(node.op._wm_members)
            node.fires_watermark = overrides
        for src in self._sources.values():
            if self._profiler is not None:
                entry = lambda node: node.preceive  # noqa: E731
                batch_entry = lambda node: node.preceive_batch  # noqa: E731
            elif count_elements:
                entry = lambda node: node.receive  # noqa: E731
                batch_entry = lambda node: node.receive_batch  # noqa: E731
            else:
                entry = lambda node: node.op.process_element  # noqa: E731
                batch_entry = \
                    lambda node: node.op.process_batch  # noqa: E731
            src.deliveries = [(entry(node), input_index)
                              for node, input_index in src.targets]
            src.batch_deliveries = [(batch_entry(node), input_index)
                                    for node, input_index in src.targets]

    def push(self, source: str, value: Any) -> None:
        """Inject one element at ``source``; it flows to completion."""
        src = self._sources[source]
        if self._track_idle:
            self._seq += 1
            src.last_seq = self._seq
            if source in self._idle:
                self._reactivate(source)
            self._expire_idle_sources()
        elif self._idle and source in self._idle:
            self._reactivate(source)
        profiler = self._profiler
        if profiler is not None:
            profiler.tick += 1
            profiler.timing = profiler.tick % profiler.sample_every == 0
            if profiler.tick % profiler.flight_every == 0:
                _profile._RECORDER.record(
                    "element.push", plan=profiler.label, source=source,
                    tick=profiler.tick)
        for deliver, input_index in src.deliveries:
            deliver(value, input_index)

    def push_batch(self, source: str, batch: Any) -> None:
        """Inject a whole batch (``RecordBatch`` or list) at ``source``.

        One plan-wide delivery per batch instead of one per element: the
        vectorized fast path.  Idle bookkeeping, profiling ticks and
        flight records advance once per batch (a batch is one unit of
        plan activity); ``records_in`` stays exact via the entry points.
        """
        if not len(batch):
            return
        src = self._sources[source]
        if self._track_idle:
            self._seq += 1
            src.last_seq = self._seq
            if source in self._idle:
                self._reactivate(source)
            self._expire_idle_sources()
        elif self._idle and source in self._idle:
            self._reactivate(source)
        profiler = self._profiler
        if profiler is not None:
            profiler.tick += 1
            profiler.timing = profiler.tick % profiler.sample_every == 0
            if profiler.tick % profiler.flight_every == 0:
                _profile._RECORDER.record(
                    "batch.push", plan=profiler.label, source=source,
                    rows=len(batch), tick=profiler.tick)
        for deliver, input_index in src.batch_deliveries:
            deliver(batch, input_index)

    def advance_watermark(self, source: str, watermark: Timestamp) -> None:
        """Advance ``source``'s watermark; fire operators whose combined
        input watermark moved (two-phase: track, then fire in plan order).
        """
        src = self._sources[source]
        src.watermark = watermark
        if self._track_idle:
            src.last_seq = self._seq
        if self._idle and source in self._idle:
            self._reactivate(source)
        profiler = self._profiler
        if profiler is not None:
            profiler.tick += 1
            profiler.timing = profiler.tick % profiler.sample_every == 0
            _profile._RECORDER.record(
                "watermark.advance", plan=profiler.label, source=source,
                watermark=watermark)
        updates: dict[str, Timestamp] = {source: watermark}
        self._propagate(updates)

    def mark_idle(self, source: str) -> None:
        """Manually idle a source so it stops holding back event time."""
        if source in self._idle:
            return
        self._idle.add(source)
        self._propagate_idle({source})

    def close(self) -> None:
        """Close every operator in plan order; final output cascades."""
        for node in self._order:
            node.op.close()

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {node.name: node.op.snapshot() for node in self._order}

    def restore(self, state: dict[str, Any]) -> None:
        for node in self._order:
            if node.name in state:
                node.op.restore(state[node.name])
        # Idle bookkeeping is execution-time state, not operator state: a
        # restored plan starts a fresh delivery sequence, so stale
        # ``last_seq`` values (captured when the crashed run was N pushes
        # in) would either instantly re-idle a live source or, if the
        # source was idle at the crash, keep it excluded from downstream
        # min-combines forever.  Reset the clock and re-activate
        # everything; the trackers' combined watermarks are monotone, so
        # re-activation never regresses event time.
        self._seq = 0
        for name, src in self._sources.items():
            src.last_seq = 0
            if name in self._idle:
                self._reactivate(name)
        self._idle.clear()

    # -- internals -------------------------------------------------------------

    def _propagate(self, updates: dict[str, Timestamp]) -> None:
        fired: list[tuple[_Node, Timestamp]] = []
        get = updates.get
        for node in self._order:
            advanced = None
            tracker = node.tracker
            for channel in node.inputs:
                value = get(channel)
                if value is not None:
                    new = tracker.advance(channel, value)
                    if new is not None:
                        advanced = new
            if advanced is not None:
                updates[node.name] = advanced
                if node.fires_watermark:
                    fired.append((node, advanced))
        profiler = self._profiler
        if profiler is not None and profiler.timing:
            for node, watermark in fired:
                self._timed_fire(node, watermark, profiler)
        else:
            for node, watermark in fired:
                node.op.process_watermark(watermark)

    def _timed_fire(self, node: _Node, watermark: Timestamp,
                    profiler: "_profile.PlanProfiler") -> None:
        # Watermark firings (pane emission, window eviction) are often the
        # real cost of a windowed plan; attribute them with the same
        # self-time stack discipline as element flows.
        stack = profiler.stack
        stack.append(0.0)
        started = _perf()
        node.op.process_watermark(watermark)
        elapsed = _perf() - started
        child_time = stack.pop()
        node.profile.busy_seconds += elapsed - child_time
        if stack:
            stack[-1] += elapsed

    def _propagate_idle(self, idle_channels: set[str]) -> None:
        fired: list[tuple[_Node, Timestamp]] = []
        for node in self._order:
            advanced = None
            for channel in node.inputs:
                if channel in idle_channels:
                    new = node.tracker.mark_idle(channel)
                    if new is not None:
                        advanced = new
            if advanced is not None and node.fires_watermark:
                fired.append((node, advanced))
            if all(ch in idle_channels or ch in self._idle
                   for ch in node.inputs):
                idle_channels.add(node.name)
                self._idle.add(node.name)
        for node, watermark in fired:
            node.op.process_watermark(watermark)

    def _reactivate(self, source: str) -> None:
        self._idle.discard(source)
        active = {source}
        for node in self._order:
            woke = False
            for channel in node.inputs:
                if channel in active:
                    node.tracker.mark_active(channel)
                    woke = True
            if woke and node.name in self._idle:
                self._idle.discard(node.name)
                active.add(node.name)

    def _expire_idle_sources(self) -> None:
        for name, src in self._sources.items():
            if (src.idle_timeout is not None and name not in self._idle
                    and self._seq - src.last_seq > src.idle_timeout):
                self.mark_idle(name)
