"""Pluggable keyed state for kernel operators.

Every stateful operator in the unified execution kernel keeps its keyed
state behind the :class:`StateBackend` surface, so the same operator runs
unchanged on a heap dict (Flink's 'hashmap' backend) or on the embedded
LSM store of :mod:`repro.runtime.kvstore` (the RocksDB stand-in of paper
Figure 5).  ``snapshot``/``restore`` give checkpointing a uniform way to
capture and reload a backend regardless of implementation.
"""

from __future__ import annotations

from typing import Any, Iterable


class StateBackend:
    """Keyed state: the minimal get/put/delete/items surface."""

    def get(self, key: Any, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key: Any) -> None:
        raise NotImplementedError

    def items(self) -> Iterable[tuple[Any, Any]]:
        raise NotImplementedError

    # -- batched mutation (vectorized operators) ------------------------------

    def put_many(self, items: Iterable[tuple[Any, Any]]) -> None:
        """Store many (key, value) pairs in one call.

        The default loops ``put``; backends with a cheaper bulk path
        (dict.update) override it.  Semantically identical to the loop —
        later pairs win on duplicate keys.
        """
        put = self.put
        for key, value in items:
            put(key, value)

    def get_many(self, keys: Iterable[Any],
                 default: Any = None) -> list[Any]:
        """Look up many keys; one result per key, in order."""
        get = self.get
        return [get(key, default) for key in keys]

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> Any:
        """A self-contained copy of the backend's contents."""
        return list(self.items())

    def restore(self, state: Any) -> None:
        """Load a :meth:`snapshot` back (into an empty backend)."""
        for key, value in state:
            self.put(key, value)

    # -- introspection (pull-based; never on the element hot path) ------------

    def estimated_entries(self) -> int:
        """How many keyed entries the backend currently holds."""
        return sum(1 for _ in self.items())

    def estimated_bytes(self, sample: int = 32) -> int:
        """A cheap serialized-size estimate.

        Measures the repr length of up to ``sample`` entries and scales to
        the entry count — good enough for EXPLAIN ANALYZE's "where is the
        memory" question without serializing whole windows.
        """
        entries = self.estimated_entries()
        if entries == 0:
            return 0
        sampled = []
        for item in self.items():
            sampled.append(len(repr(item)))
            if len(sampled) >= sample:
                break
        if not sampled:
            return 0
        return int(sum(sampled) / len(sampled) * entries)


class DictStateBackend(StateBackend):
    """Heap state backend (Flink's 'hashmap' backend)."""

    def __init__(self) -> None:
        self._data: dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: Any) -> None:
        self._data.pop(key, None)

    def put_many(self, items: Iterable[tuple[Any, Any]]) -> None:
        self._data.update(items)

    def items(self) -> Iterable[tuple[Any, Any]]:
        return list(self._data.items())

    def estimated_entries(self) -> int:
        return len(self._data)


class LSMStateBackend(StateBackend):
    """Embedded LSM state backend (the RocksDB stand-in).

    Keys must be orderable; window state keys are (key, start, end) tuples,
    so heterogeneous user keys should be strings or ints.
    """

    def __init__(self, memtable_limit: int = 256) -> None:
        # Imported lazily: repro.runtime.dag imports repro.exec, so a
        # module-level import here would close an import cycle.
        from repro.runtime.kvstore import LSMStore
        self.store = LSMStore(memtable_limit=memtable_limit)

    def get(self, key: Any, default: Any = None) -> Any:
        return self.store.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self.store.put(key, value)

    def delete(self, key: Any) -> None:
        self.store.delete(key)

    def items(self) -> Iterable[tuple[Any, Any]]:
        return list(self.store.items())
