"""repro.exec — the shared push-based execution kernel.

One physical substrate under all four API layers (Figure 4 of the
survey): CQL's delta executor, the DSMS engine, the dataflow direct
runner and the actor-style job runtime all lower to kernel
:class:`Operator` plans.  The protocol is dual-mode — per-element and
columnar micro-batch (:class:`RecordBatch`, :meth:`Plan.push_batch`) —
with vectorized kernels for the hot operators in
:mod:`repro.exec.vector`.  See DESIGN.md § "Execution kernel" and
§ "Vectorized execution".
"""

from repro.exec.batch import HAS_NUMPY, RecordBatch
from repro.exec.exchange import Exchange, Merge, PartitionGate, fission
from repro.exec.fusion import fuse_fixpoint
from repro.exec.operator import (
    CollectingEmitter,
    StageEmitter,
    Emitter,
    FusedOperator,
    Operator,
    OperatorContext,
    batch_capable,
)
from repro.exec.plan import Plan
from repro.exec.state import DictStateBackend, LSMStateBackend, StateBackend
from repro.exec.vector import (
    VectorFilter,
    VectorKeyedAggregate,
    VectorMap,
    VectorProject,
    VectorRangeWindow,
    keyed_count,
    keyed_fold,
    keyed_sum,
)
from repro.exec.watermarks import WatermarkTracker

__all__ = [
    "CollectingEmitter",
    "DictStateBackend",
    "Emitter",
    "Exchange",
    "FusedOperator",
    "HAS_NUMPY",
    "LSMStateBackend",
    "Merge",
    "Operator",
    "OperatorContext",
    "PartitionGate",
    "Plan",
    "RecordBatch",
    "StageEmitter",
    "StateBackend",
    "VectorFilter",
    "VectorKeyedAggregate",
    "VectorMap",
    "VectorProject",
    "VectorRangeWindow",
    "WatermarkTracker",
    "batch_capable",
    "fission",
    "fuse_fixpoint",
    "keyed_count",
    "keyed_fold",
    "keyed_sum",
]
