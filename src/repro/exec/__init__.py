"""repro.exec — the shared push-based execution kernel.

One physical substrate under all four API layers (Figure 4 of the
survey): CQL's delta executor, the DSMS engine, the dataflow direct
runner and the actor-style job runtime all lower to kernel
:class:`Operator` plans.  See DESIGN.md § "Execution kernel".
"""

from repro.exec.exchange import Exchange, Merge, PartitionGate, fission
from repro.exec.fusion import fuse_fixpoint
from repro.exec.operator import (
    CollectingEmitter,
    StageEmitter,
    Emitter,
    FusedOperator,
    Operator,
    OperatorContext,
)
from repro.exec.plan import Plan
from repro.exec.state import DictStateBackend, LSMStateBackend, StateBackend
from repro.exec.watermarks import WatermarkTracker

__all__ = [
    "CollectingEmitter",
    "DictStateBackend",
    "Emitter",
    "Exchange",
    "FusedOperator",
    "LSMStateBackend",
    "Merge",
    "Operator",
    "OperatorContext",
    "PartitionGate",
    "Plan",
    "StageEmitter",
    "StateBackend",
    "WatermarkTracker",
    "fission",
    "fuse_fixpoint",
]
