"""runtime — the streaming-system substrate of paper Figure 5.

Partitioned broker (Kafka stand-in), LSM key-value store (RocksDB
stand-in), deterministic actor system, job graphs with operator chaining,
parallel subtask execution with watermarks, and aligned-barrier
checkpointing with exactly-once recovery.
"""

from repro.runtime.actors import (
    Actor,
    ActorContext,
    ActorRef,
    ActorSystem,
    FunctionActor,
)
from repro.runtime.broker import (
    Broker,
    BrokerRecord,
    ConsumerGroup,
    Partition,
    Topic,
    default_hash,
    replay,
    replay_compacted,
)
from repro.runtime.checkpoint import CheckpointCoordinator, CheckpointSnapshot
from repro.runtime.dag import (
    ChainedOperator,
    CollectSinkOperator,
    Element,
    FailOnceOperator,
    FilterOperator,
    FlatMapOperator,
    JobGraph,
    KeyByOperator,
    MapOperator,
    StreamOperator,
    TimerService,
    chain_operators,
)
from repro.runtime.job import (
    BarrierMsg,
    DataMsg,
    EndMsg,
    JobFailure,
    JobResult,
    JobRunner,
    RunSourceMsg,
    WatermarkMsg,
)
from repro.runtime.kvstore import (
    TOMBSTONE,
    LSMStore,
    MemTable,
    SortedRun,
    WriteAheadLog,
)
from repro.runtime.placement import (
    ComputeNode,
    FissionAdvice,
    Network,
    Placement,
    advise_fission,
    bottlenecks,
    place,
)
from repro.runtime.partitioning import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    Partitioner,
    RebalancePartitioner,
)
from repro.runtime.pool import (
    PartitionedRunResult,
    WorkerPool,
    fission_job,
    partition_batches,
    run_job_partitioned,
    run_partitioned_recorded,
)

__all__ = [
    # broker
    "Broker", "Topic", "Partition", "BrokerRecord", "ConsumerGroup",
    "replay", "replay_compacted", "default_hash",
    # kv store
    "LSMStore", "MemTable", "SortedRun", "WriteAheadLog", "TOMBSTONE",
    # actors
    "Actor", "ActorRef", "ActorSystem", "ActorContext", "FunctionActor",
    # partitioning
    "Partitioner", "ForwardPartitioner", "HashPartitioner",
    "BroadcastPartitioner", "RebalancePartitioner",
    # dag & operators
    "JobGraph", "Element", "StreamOperator", "MapOperator",
    "FilterOperator", "FlatMapOperator", "KeyByOperator",
    "ChainedOperator", "CollectSinkOperator", "FailOnceOperator",
    "TimerService", "chain_operators",
    # execution
    "JobRunner", "JobResult", "JobFailure", "DataMsg", "WatermarkMsg",
    "BarrierMsg", "EndMsg", "RunSourceMsg",
    # checkpointing
    "CheckpointCoordinator", "CheckpointSnapshot",
    # placement & fission
    "Network", "ComputeNode", "Placement", "place",
    "FissionAdvice", "advise_fission", "bottlenecks",
    # worker pool
    "WorkerPool", "PartitionedRunResult", "partition_batches",
    "run_partitioned_recorded", "fission_job", "run_job_partitioned",
]
