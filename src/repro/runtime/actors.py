"""A deterministic actor system (paper Figure 4, bottom layer).

The survey notes that at the core of every streaming system sits "some
variation of the actor model" using message passing to coordinate parallel
continuous computation.  This module provides that foundation: named actors
with mailboxes, asynchronous ``tell``, and a cooperative, deterministic
scheduler (single-threaded, round-robin mailbox draining) — determinism is
what lets every experiment in this repository be replayed bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.core.errors import StateError


class ActorRef:
    """A handle for sending messages to an actor."""

    def __init__(self, system: "ActorSystem", name: str) -> None:
        self._system = system
        self.name = name

    def tell(self, message: Any, sender: "ActorRef | None" = None) -> None:
        """Enqueue a message (asynchronous, never blocks)."""
        self._system._deliver(self.name, message, sender)

    def __repr__(self) -> str:
        return f"ActorRef({self.name})"


class Actor:
    """Base actor: override :meth:`receive`."""

    def __init__(self) -> None:
        self.context: ActorContext | None = None

    def receive(self, message: Any, sender: ActorRef | None) -> None:
        raise NotImplementedError

    def on_start(self) -> None:
        """Called once when the actor is spawned."""

    def on_stop(self) -> None:
        """Called when the actor is stopped."""


class ActorContext:
    """What an actor can do to the outside world while processing."""

    def __init__(self, system: "ActorSystem", ref: ActorRef) -> None:
        self.system = system
        self.self_ref = ref

    def tell(self, target: str | ActorRef, message: Any) -> None:
        ref = target if isinstance(target, ActorRef) else \
            self.system.ref(target)
        ref.tell(message, sender=self.self_ref)

    def spawn(self, name: str, actor: Actor) -> ActorRef:
        return self.system.spawn(name, actor)

    def stop_self(self) -> None:
        self.system.stop(self.self_ref.name)


class FunctionActor(Actor):
    """An actor from a plain function ``fn(message, ctx)``."""

    def __init__(self, fn: Callable[[Any, ActorContext], None]) -> None:
        super().__init__()
        self._fn = fn

    def receive(self, message: Any, sender: ActorRef | None) -> None:
        self._fn(message, self.context)


class ActorSystem:
    """Single-threaded cooperative actor runtime.

    Messages are processed one at a time; :meth:`run_until_idle` drains all
    mailboxes round-robin.  Message counts are tracked for the Figure 4
    benchmark (abstraction-stack overhead).
    """

    def __init__(self) -> None:
        self._actors: dict[str, Actor] = {}
        self._mailboxes: dict[str, deque[tuple[Any, ActorRef | None]]] = {}
        self._stopped: set[str] = set()
        self.messages_delivered = 0
        self.messages_processed = 0

    def spawn(self, name: str, actor: Actor) -> ActorRef:
        if name in self._actors:
            raise StateError(f"actor {name!r} already exists")
        self._actors[name] = actor
        self._mailboxes[name] = deque()
        ref = ActorRef(self, name)
        actor.context = ActorContext(self, ref)
        actor.on_start()
        return ref

    def ref(self, name: str) -> ActorRef:
        if name not in self._actors:
            raise StateError(f"unknown actor {name!r}")
        return ActorRef(self, name)

    def stop(self, name: str) -> None:
        if name not in self._actors:
            raise StateError(f"unknown actor {name!r}")
        if name not in self._stopped:
            self._stopped.add(name)
            self._actors[name].on_stop()

    def _deliver(self, name: str, message: Any,
                 sender: ActorRef | None) -> None:
        if name not in self._actors:
            raise StateError(f"unknown actor {name!r}")
        if name in self._stopped:
            return  # dead letters are dropped
        self._mailboxes[name].append((message, sender))
        self.messages_delivered += 1

    def step(self) -> bool:
        """Process one message of one actor (round-robin); False if idle."""
        for name, mailbox in self._mailboxes.items():
            if mailbox and name not in self._stopped:
                message, sender = mailbox.popleft()
                self._actors[name].receive(message, sender)
                self.messages_processed += 1
                return True
        return False

    def run_until_idle(self, max_messages: int = 10_000_000) -> int:
        """Drain all mailboxes; returns messages processed."""
        processed = 0
        while processed < max_messages and self.step():
            processed += 1
        if processed >= max_messages:
            raise StateError("actor system did not quiesce "
                             f"within {max_messages} messages")
        return processed

    @property
    def actor_names(self) -> list[str]:
        return sorted(self._actors)

    def pending(self) -> int:
        return sum(len(m) for n, m in self._mailboxes.items()
                   if n not in self._stopped)
