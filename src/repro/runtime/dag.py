"""Job graphs: operators organised in a DAG (paper Figure 5, middle).

A streaming job is a directed acyclic graph of operator **vertices**, each
instantiated as ``parallelism`` subtasks, connected by **edges** carrying a
partitioner.  This module defines the operator interface (with keyed state
and event-time timers), the graph builder, and the **operator chaining**
optimisation — fusing forward-connected vertices of equal parallelism into
one vertex so records pass by function call instead of message (Hirzel et
al.'s *fusion*; measured by the Listing 2 benchmark).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import repro.obs as obs
from repro.core.errors import PlanError, StateError
from repro.core.time import Timestamp
from repro.exec import (
    CollectingEmitter,
    Operator,
    OperatorContext,
    StageEmitter,
    fuse_fixpoint,
)
from repro.runtime.partitioning import ForwardPartitioner, Partitioner


@dataclass(frozen=True)
class Element:
    """One record flowing through a job: value, optional key, timestamp."""

    value: Any
    key: Any = None
    timestamp: Timestamp = 0


class TimerService:
    """Per-subtask event-time timers (fired by watermark progress)."""

    def __init__(self) -> None:
        self._heap: list[tuple[Timestamp, Any]] = []
        self._registered: set[tuple[Timestamp, Any]] = set()

    def register(self, fire_at: Timestamp, key: Any = None) -> None:
        entry = (fire_at, key)
        if entry not in self._registered:
            self._registered.add(entry)
            heapq.heappush(self._heap, entry)

    def due(self, watermark: Timestamp) -> list[tuple[Timestamp, Any]]:
        """Pop all timers with ``fire_at <= watermark``, in time order."""
        out = []
        while self._heap and self._heap[0][0] <= watermark:
            entry = heapq.heappop(self._heap)
            self._registered.discard(entry)
            out.append(entry)
        return out

    def snapshot(self) -> list[tuple[Timestamp, Any]]:
        return sorted(self._registered)

    def restore(self, entries: list[tuple[Timestamp, Any]]) -> None:
        self._heap = list(entries)
        self._registered = set(entries)
        heapq.heapify(self._heap)


class StreamOperator(Operator):
    """Base runtime operator — a kernel operator with runtime hooks.

    Lifecycle: ``open`` once per subtask (with an
    :class:`~repro.exec.OperatorContext`), then ``process`` per element,
    ``on_watermark`` per watermark advance (with ``timers`` already
    populated), ``on_end`` at end of stream.  ``snapshot``/``restore``
    implement checkpointing.  The iterable-returning hooks are the
    authoring surface; the kernel protocol (``process_element`` /
    ``process_watermark`` / ``close``) wraps them, emitting through the
    context so the subtask runtime and kernel plans drive runtime
    operators identically.
    """

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        self.subtask = ctx.subtask
        self.parallelism = ctx.parallelism
        self.timers = TimerService()

    def process(self, element: Element) -> Iterable[Element]:
        raise NotImplementedError

    def on_watermark(self, watermark: Timestamp) -> Iterable[Element]:
        return ()

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        """Fired for each due timer registered via ``self.timers``."""
        return ()

    def on_barrier(self, checkpoint_id: int) -> None:
        """Called when barrier alignment completes (before snapshot) —
        transactional sinks commit their pending epoch here."""

    def on_end(self) -> Iterable[Element]:
        return ()

    def snapshot(self) -> Any:
        return None

    def restore(self, state: Any) -> None:
        if state is not None:
            raise StateError(f"{type(self).__name__} has no state to "
                             f"restore into")

    # -- kernel protocol -------------------------------------------------------

    def process_element(self, element: Element, input_index: int = 0) -> None:
        self.ctx.emitter.emit_all(self.process(element))

    def process_watermark(self, watermark: Timestamp,
                          input_index: int = 0) -> None:
        emitter = self.ctx.emitter
        for fire_at, key in self.timers.due(watermark):
            emitter.emit_all(self.on_timer(fire_at, key))
        emitter.emit_all(self.on_watermark(watermark))

    def close(self) -> None:
        self.ctx.emitter.emit_all(self.on_end())


class MapOperator(StreamOperator):
    """Element-wise transformation (1 → 1)."""

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self._fn = fn

    def process(self, element: Element) -> Iterable[Element]:
        yield Element(self._fn(element.value), element.key,
                      element.timestamp)


class FilterOperator(StreamOperator):
    """Element-wise selection (1 → 0/1)."""

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self._predicate = predicate

    def process(self, element: Element) -> Iterable[Element]:
        if self._predicate(element.value):
            yield element


class FlatMapOperator(StreamOperator):
    """Element-wise expansion (1 → n) — the ParDo shape."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]]) -> None:
        self._fn = fn

    def process(self, element: Element) -> Iterable[Element]:
        for value in self._fn(element.value):
            yield Element(value, element.key, element.timestamp)


class KeyByOperator(StreamOperator):
    """Assigns the routing key (precedes a hash edge)."""

    def __init__(self, key_fn: Callable[[Any], Any]) -> None:
        self._key_fn = key_fn

    def process(self, element: Element) -> Iterable[Element]:
        yield Element(element.value, self._key_fn(element.value),
                      element.timestamp)


class ChainedOperator(StreamOperator):
    """Several operators fused into one subtask (operator chaining).

    Elements pass between the chained operators by direct function call —
    zero messages, the whole point of the fusion optimisation.
    """

    def __init__(self, operators: Sequence[StreamOperator]) -> None:
        if not operators:
            raise PlanError("cannot chain zero operators")
        self.operators = list(operators)

    def open(self, ctx: OperatorContext) -> None:
        super().open(ctx)
        # Wire members tail-first through StageEmitters so each member's
        # output is pushed straight into its successor's ``process_element``
        # — the kernel's fusion wiring, replacing the recursive cascade.
        # The tail collects into a buffer the chain's own hooks drain.
        self._tail = CollectingEmitter()
        downstream: Any = self._tail
        for position in range(len(self.operators) - 1, -1, -1):
            op = self.operators[position]
            op.open(OperatorContext(
                name=f"{ctx.name}[{position}]", subtask=ctx.subtask,
                parallelism=ctx.parallelism, emitter=downstream,
                state_factory=ctx.state_factory,
                watermark_fn=ctx._watermark_fn))
            op.timers = self.timers  # one shared timer service per chain
            downstream = StageEmitter(op)

    def process(self, element: Element) -> Iterable[Element]:
        self.operators[0].process_element(element)
        return self._tail.drain()

    def _cascade_hook(self, produced_per_op) -> list[Element]:
        # Each member's hook output enters the chain *after* that member:
        # emitting through the member's own emitter routes it into the next
        # member's process path (or the tail buffer for the last member).
        for op, produced in produced_per_op:
            for element in produced:
                op.ctx.emitter.emit(element)
        return self._tail.drain()

    def on_watermark(self, watermark: Timestamp) -> Iterable[Element]:
        return self._cascade_hook(
            (op, op.on_watermark(watermark)) for op in self.operators)

    def on_timer(self, fire_at: Timestamp, key: Any) -> Iterable[Element]:
        return self._cascade_hook(
            (op, op.on_timer(fire_at, key)) for op in self.operators)

    def on_barrier(self, checkpoint_id: int) -> None:
        for op in self.operators:
            op.on_barrier(checkpoint_id)

    def on_end(self) -> Iterable[Element]:
        return self._cascade_hook(
            (op, op.on_end()) for op in self.operators)

    def snapshot(self) -> Any:
        return [op.snapshot() for op in self.operators]

    def restore(self, state: Any) -> None:
        for op, op_state in zip(self.operators, state):
            op.restore(op_state)

    def take_committed(self) -> dict[Any, list[Element]]:
        """Merge committed epochs of any transactional sinks in the chain
        (so the runner can harvest a sink fused into a chain)."""
        merged: dict[Any, list[Element]] = {}
        for op in self.operators:
            take = getattr(op, "take_committed", None)
            if take is not None:
                for epoch, elements in take().items():
                    merged.setdefault(epoch, []).extend(elements)
        return merged


class CollectSinkOperator(StreamOperator):
    """A transactional sink: output becomes visible epoch by epoch.

    Elements accumulate in a *pending* buffer; when a checkpoint barrier
    passes (:meth:`on_barrier`) the buffer is committed under that epoch id.
    On recovery the crashed instance's pending buffer is simply lost, and
    re-committed epochs overwrite identically (determinism), which is what
    makes end-to-end results exactly-once.
    """

    FINAL_EPOCH = "final"

    def __init__(self) -> None:
        self._pending: list[Element] = []
        self._epochs: dict[Any, list[Element]] = {}

    def process(self, element: Element) -> Iterable[Element]:
        self._pending.append(element)
        return ()

    def on_barrier(self, checkpoint_id: int) -> None:
        self._epochs.setdefault(checkpoint_id, []).extend(self._pending)
        self._pending = []

    def on_end(self) -> Iterable[Element]:
        self._epochs.setdefault(self.FINAL_EPOCH, []).extend(self._pending)
        self._pending = []
        return ()

    def snapshot(self) -> Any:
        return None  # committed epochs live outside the checkpoint

    def restore(self, state: Any) -> None:
        self._pending = []

    def take_committed(self) -> dict[Any, list[Element]]:
        """Committed epochs (epoch id → elements), for the runner."""
        return dict(self._epochs)


class FailOnceOperator(StreamOperator):
    """Passes elements through, crashing once at the Nth element.

    ``fuse`` is a shared one-element list: the first instance to reach the
    trigger blows it and flips the fuse so the recovered run proceeds —
    the standard fault-injection harness for exactly-once tests.
    """

    def __init__(self, fail_at: int, fuse: list[bool]) -> None:
        self._fail_at = fail_at
        self._fuse = fuse
        self._seen = 0

    def process(self, element: Element) -> Iterable[Element]:
        self._seen += 1
        if not self._fuse[0] and self._seen == self._fail_at:
            self._fuse[0] = True
            from repro.runtime.job import JobFailure
            raise JobFailure(f"injected failure at element {self._seen}")
        yield element

    def snapshot(self) -> Any:
        return self._seen

    def restore(self, state: Any) -> None:
        self._seen = state


# ---------------------------------------------------------------------------
# The graph
# ---------------------------------------------------------------------------


@dataclass
class SourceSpec:
    """A source vertex: per-subtask record feeds.

    ``records`` holds, per subtask, the (value, key, timestamp) tuples that
    subtask emits — typically split from a broker topic's partitions.
    """

    name: str
    records: list[list[tuple[Any, Any, Timestamp]]]
    watermark_lag: Timestamp = 0

    @property
    def parallelism(self) -> int:
        return len(self.records)


@dataclass
class VertexSpec:
    """An operator vertex: a factory producing one operator per subtask."""

    name: str
    factory: Callable[[], StreamOperator]
    parallelism: int


@dataclass
class EdgeSpec:
    """A connection from ``upstream`` to ``downstream`` with a partitioner
    factory (a fresh partitioner per producing subtask)."""

    upstream: str
    downstream: str
    partitioner: Callable[[], Partitioner]

    def is_forward(self) -> bool:
        return self.partitioner().is_forward


class JobGraph:
    """Builder for a streaming job DAG."""

    def __init__(self, name: str = "job") -> None:
        self.name = name
        self.sources: dict[str, SourceSpec] = {}
        self.vertices: dict[str, VertexSpec] = {}
        self.edges: list[EdgeSpec] = []
        self.sinks: set[str] = set()
        #: current vertex name -> originally marked sink name (chaining
        #: renames vertices; results stay addressable by the original name).
        self.sink_origin: dict[str, str] = {}

    def add_source(self, name: str,
                   records: list[list[tuple[Any, Any, Timestamp]]],
                   watermark_lag: Timestamp = 0) -> "JobGraph":
        self._check_free(name)
        self.sources[name] = SourceSpec(name, records, watermark_lag)
        return self

    def add_operator(self, name: str,
                     factory: Callable[[], StreamOperator],
                     parallelism: int = 1) -> "JobGraph":
        self._check_free(name)
        if parallelism <= 0:
            raise PlanError(f"parallelism must be positive for {name!r}")
        self.vertices[name] = VertexSpec(name, factory, parallelism)
        return self

    def connect(self, upstream: str, downstream: str,
                partitioner: Callable[[], Partitioner] = ForwardPartitioner,
                ) -> "JobGraph":
        if upstream not in self.sources and upstream not in self.vertices:
            raise PlanError(f"unknown upstream {upstream!r}")
        if downstream not in self.vertices:
            raise PlanError(f"unknown downstream {downstream!r}")
        self.edges.append(EdgeSpec(upstream, downstream, partitioner))
        return self

    def mark_sink(self, name: str) -> "JobGraph":
        if name not in self.vertices:
            raise PlanError(f"unknown vertex {name!r}")
        self.sinks.add(name)
        self.sink_origin[name] = name
        return self

    def sink_alias(self, name: str) -> str:
        """The originally marked sink name for a (possibly fused) vertex."""
        return self.sink_origin.get(name, name)

    def _check_free(self, name: str) -> None:
        if name in self.sources or name in self.vertices:
            raise PlanError(f"vertex {name!r} already exists")

    def parallelism_of(self, name: str) -> int:
        if name in self.sources:
            return self.sources[name].parallelism
        return self.vertices[name].parallelism

    def upstream_edges(self, name: str) -> list[EdgeSpec]:
        return [e for e in self.edges if e.downstream == name]

    def downstream_edges(self, name: str) -> list[EdgeSpec]:
        return [e for e in self.edges if e.upstream == name]

    def validate(self) -> None:
        """Every vertex reachable, every edge sane, graph acyclic."""
        for edge in self.edges:
            if edge.is_forward() and (self.parallelism_of(edge.upstream)
                                      != self.parallelism_of(edge.downstream)):
                raise PlanError(
                    f"forward edge {edge.upstream}->{edge.downstream} "
                    f"requires equal parallelism")
        # Cycle check by Kahn's algorithm.
        names = set(self.sources) | set(self.vertices)
        indegree = {n: 0 for n in names}
        for edge in self.edges:
            indegree[edge.downstream] += 1
        queue = [n for n, d in indegree.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for edge in self.downstream_edges(node):
                indegree[edge.downstream] -= 1
                if indegree[edge.downstream] == 0:
                    queue.append(edge.downstream)
        if seen != len(names):
            raise PlanError("job graph contains a cycle")


def chain_operators(graph: JobGraph) -> JobGraph:
    """The fusion optimisation: collapse forward chains.

    A vertex V with exactly one upstream edge that is forward, whose
    upstream U is a vertex (not a source) with exactly one downstream edge,
    and equal parallelism, is fused into U (their operators run chained in
    one subtask).  Applied to fixpoint; edge endpoints are rewritten.
    """
    graph.validate()
    out = JobGraph(graph.name + "-chained")
    out.sources = dict(graph.sources)
    out.vertices = dict(graph.vertices)
    out.edges = [EdgeSpec(e.upstream, e.downstream, e.partitioner)
                 for e in graph.edges]
    out.sinks = set(graph.sinks)
    out.sink_origin = dict(graph.sink_origin)

    def can_fuse(edge: EdgeSpec) -> bool:
        if not edge.is_forward():
            return False
        if edge.upstream not in out.vertices:
            return False  # never fuse into a source
        upstream = out.vertices[edge.upstream]
        downstream = out.vertices[edge.downstream]
        return (upstream.parallelism == downstream.parallelism
                and len(out.downstream_edges(edge.upstream)) == 1
                and len(out.upstream_edges(edge.downstream)) == 1)

    def merge(edge: EdgeSpec) -> None:
        _fuse(out, edge, out.vertices[edge.upstream],
              out.vertices[edge.downstream])

    fused = fuse_fixpoint(lambda: out.edges, can_fuse, merge)
    if obs.is_enabled():
        registry = obs.get_registry()
        registry.counter("runtime.chaining.fusions", job=graph.name).inc(
            fused)
        registry.gauge("runtime.graph.vertices", job=out.name).set(
            len(out.vertices))
        registry.gauge("runtime.graph.edges", job=out.name).set(
            len(out.edges))
    return out


def _fuse(graph: JobGraph, edge: EdgeSpec, upstream: VertexSpec,
          downstream: VertexSpec) -> None:
    up_factory, down_factory = upstream.factory, downstream.factory

    def chained_factory() -> StreamOperator:
        up = up_factory()
        down = down_factory()
        ops: list[StreamOperator] = []
        for op in (up, down):
            if isinstance(op, ChainedOperator):
                ops.extend(op.operators)
            else:
                ops.append(op)
        return ChainedOperator(ops)

    fused_name = f"{upstream.name}+{downstream.name}"
    graph.vertices.pop(upstream.name)
    graph.vertices.pop(downstream.name)
    graph.vertices[fused_name] = VertexSpec(
        fused_name, chained_factory, upstream.parallelism)
    graph.edges.remove(edge)
    for other in graph.edges:
        if other.upstream == downstream.name:
            other.upstream = fused_name
        if other.downstream == upstream.name:
            other.downstream = fused_name
    for old in (downstream.name, upstream.name):
        if old in graph.sinks:
            graph.sinks.discard(old)
            graph.sinks.add(fused_name)
            graph.sink_origin[fused_name] = graph.sink_origin.pop(old)
