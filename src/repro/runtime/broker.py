"""An in-process, Kafka-style distributed queue (paper Figure 5, left/right).

Streaming systems consume input from and push output to partitioned,
append-only logs (Kafka, Pulsar).  This module substitutes a faithful
single-process equivalent: named **topics** split into **partitions**, each
an append-only offset-addressed log; **producers** route records to
partitions by key hash; **consumer groups** share partitions among their
members and track committed offsets, so replay-from-offset (the foundation
of exactly-once recovery) works exactly as in the real system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator

from repro.core.errors import BrokerError
from repro.core.time import Timestamp


def default_hash(key: Hashable) -> int:
    """A stable, deterministic key hash (Python's ``hash`` is salted for
    str; experiments need run-to-run stability).

    Integer keys are mixed through FNV-1a like every other type: a raw
    ``key % partitions`` inherits whatever stride pattern the key space
    has (keys 0, 4, 8, … across 4 partitions all land on partition 0),
    which is exactly the skew a hash partitioner exists to destroy.
    """
    if key is None:
        return 0
    if isinstance(key, int):
        text = str(key)
    elif isinstance(key, str):
        text = key
    else:
        text = repr(key)
    value = 2166136261
    for ch in text.encode("utf-8"):  # FNV-1a
        value = ((value ^ ch) * 16777619) & 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class BrokerRecord:
    """One record as stored in / fetched from a partition log."""

    topic: str
    partition: int
    offset: int
    key: Hashable
    value: Any
    timestamp: Timestamp


class Partition:
    """A single append-only log with offset addressing."""

    def __init__(self, topic: str, index: int) -> None:
        self.topic = topic
        self.index = index
        self._log: list[BrokerRecord] = []

    def append(self, key: Hashable, value: Any,
               timestamp: Timestamp) -> BrokerRecord:
        record = BrokerRecord(self.topic, self.index, len(self._log),
                              key, value, timestamp)
        self._log.append(record)
        return record

    def read(self, offset: int, max_records: int | None = None,
             ) -> list[BrokerRecord]:
        if offset < 0:
            raise BrokerError(f"negative offset {offset}")
        end = None if max_records is None else offset + max_records
        return self._log[offset:end]

    def compacted(self) -> list[BrokerRecord]:
        """The log-compacted view: only each key's latest record survives
        (Kafka's cleanup.policy=compact, the changelog-topic contract).
        Records with ``value is None`` are tombstones: after compaction
        the key disappears entirely.
        """
        latest: dict = {}
        for record in self._log:
            latest[record.key] = record
        return sorted((r for r in latest.values() if r.value is not None),
                      key=lambda r: r.offset)

    @property
    def end_offset(self) -> int:
        """The offset the next appended record will receive."""
        return len(self._log)

    def __len__(self) -> int:
        return len(self._log)


class Topic:
    """A named set of partitions."""

    def __init__(self, name: str, partitions: int) -> None:
        if partitions <= 0:
            raise BrokerError(f"need at least one partition, "
                              f"got {partitions}")
        self.name = name
        self.partitions = [Partition(name, i) for i in range(partitions)]
        self._round_robin = itertools.cycle(range(partitions))

    def route(self, key: Hashable) -> int:
        """Partition index for a key (hash routing; None → round-robin)."""
        if key is None:
            return next(self._round_robin)
        return default_hash(key) % len(self.partitions)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)


class Broker:
    """The broker: topic management, produce, fetch."""

    def __init__(self) -> None:
        self._topics: dict[str, Topic] = {}

    def create_topic(self, name: str, partitions: int = 1) -> Topic:
        if name in self._topics:
            raise BrokerError(f"topic {name!r} already exists")
        topic = Topic(name, partitions)
        self._topics[name] = topic
        return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise BrokerError(f"unknown topic {name!r}") from None

    def topic_names(self) -> list[str]:
        return sorted(self._topics)

    def produce(self, topic_name: str, value: Any,
                key: Hashable = None,
                timestamp: Timestamp = 0,
                partition: int | None = None) -> BrokerRecord:
        """Append a record; returns it with its assigned partition/offset."""
        topic = self.topic(topic_name)
        if partition is None:
            partition = topic.route(key)
        if not 0 <= partition < topic.partition_count:
            raise BrokerError(
                f"partition {partition} out of range for {topic_name!r}")
        return topic.partitions[partition].append(key, value, timestamp)

    def produce_all(self, topic_name: str,
                    records: Iterable[tuple[Hashable, Any, Timestamp]],
                    ) -> int:
        """Bulk produce ``(key, value, timestamp)`` tuples; returns count."""
        n = 0
        for key, value, timestamp in records:
            self.produce(topic_name, value, key=key, timestamp=timestamp)
            n += 1
        return n

    def fetch(self, topic_name: str, partition: int, offset: int,
              max_records: int | None = None) -> list[BrokerRecord]:
        topic = self.topic(topic_name)
        if not 0 <= partition < topic.partition_count:
            raise BrokerError(
                f"partition {partition} out of range for {topic_name!r}")
        return topic.partitions[partition].read(offset, max_records)

    def end_offsets(self, topic_name: str) -> list[int]:
        return [p.end_offset for p in self.topic(topic_name).partitions]


class ConsumerGroup:
    """Cooperative consumption with committed offsets.

    Members joining the group trigger a range rebalance: partitions are
    split contiguously among members.  Each member polls only its assigned
    partitions; offsets are committed per (topic, partition) at group level,
    so a restarted member resumes where the group left off — the
    at-least-once / exactly-once replay contract.
    """

    def __init__(self, broker: Broker, group_id: str,
                 topics: Iterable[str]) -> None:
        self.broker = broker
        self.group_id = group_id
        self.topics = list(topics)
        for name in self.topics:
            broker.topic(name)  # validate
        self._members: list[str] = []
        self._assignment: dict[str, list[tuple[str, int]]] = {}
        self._committed: dict[tuple[str, int], int] = {}
        self._positions: dict[tuple[str, int], int] = {}

    def join(self, member_id: str) -> list[tuple[str, int]]:
        """Add a member; rebalance; return its new assignment."""
        if member_id in self._members:
            raise BrokerError(f"member {member_id!r} already joined")
        self._members.append(member_id)
        self._rebalance()
        return self.assignment(member_id)

    def leave(self, member_id: str) -> None:
        if member_id not in self._members:
            raise BrokerError(f"unknown member {member_id!r}")
        self._members.remove(member_id)
        self._rebalance()

    def _rebalance(self) -> None:
        all_partitions = [
            (name, p) for name in self.topics
            for p in range(self.broker.topic(name).partition_count)]
        self._assignment = {m: [] for m in self._members}
        if not self._members:
            return
        for i, tp in enumerate(all_partitions):
            member = self._members[i % len(self._members)]
            self._assignment[member].append(tp)
        # Reset uncommitted read positions: a rebalance re-reads from the
        # last commit, exactly like Kafka.
        self._positions = dict(self._committed)

    def assignment(self, member_id: str) -> list[tuple[str, int]]:
        try:
            return list(self._assignment[member_id])
        except KeyError:
            raise BrokerError(f"unknown member {member_id!r}") from None

    def poll(self, member_id: str,
             max_records: int | None = None) -> list[BrokerRecord]:
        """Fetch new records from the member's partitions, round-robin.

        Positions advance from the **offsets of the records actually
        received**, not the requested count: under a faulty transport
        (see :class:`repro.chaos.ChaosBroker`) a fetch may come back
        short, duplicated, or reordered, and ``position + len(records)``
        would silently skip or re-deliver log entries.  Only the
        contiguous offset prefix is consumed — duplicates are dropped,
        out-of-order records are resequenced, and anything after a gap is
        left for the next poll to re-fetch (the TCP-style cumulative-ack
        discipline), so consumers see each offset exactly once, in order.
        """
        out: list[BrokerRecord] = []
        for topic_name, partition in self.assignment(member_id):
            key = (topic_name, partition)
            position = self._positions.get(key, 0)
            remaining = (None if max_records is None
                         else max_records - len(out))
            if remaining is not None and remaining <= 0:
                break
            fetched = self.broker.fetch(topic_name, partition, position,
                                        remaining)
            expected = position
            for record in sorted(fetched, key=lambda r: r.offset):
                if record.offset == expected:
                    out.append(record)
                    expected += 1
                elif record.offset > expected:
                    break  # gap: dropped in transit, re-fetch next poll
            self._positions[key] = expected
        return out

    def commit(self, member_id: str) -> None:
        """Commit the member's current positions for its partitions."""
        for tp in self.assignment(member_id):
            if tp in self._positions:
                self._committed[tp] = self._positions[tp]

    def committed(self, topic_name: str, partition: int) -> int:
        return self._committed.get((topic_name, partition), 0)

    def lag(self) -> int:
        """Total records available but not yet committed across topics."""
        total = 0
        for name in self.topics:
            for partition, end in enumerate(self.broker.end_offsets(name)):
                total += end - self.committed(name, partition)
        return total


def replay(broker: Broker, topic_name: str) -> Iterator[BrokerRecord]:
    """Iterate a topic's full contents in (partition, offset) order —
    the 'reprocess history' capability append-only logs give for free."""
    topic = broker.topic(topic_name)
    for partition in topic.partitions:
        yield from partition.read(0)


def replay_compacted(broker: Broker,
                     topic_name: str) -> Iterator[BrokerRecord]:
    """Iterate the topic's log-compacted view: latest record per key,
    tombstones removed — bootstrapping a table from a changelog topic
    reads exactly this (the stream/table duality's storage side)."""
    topic = broker.topic(topic_name)
    for partition in topic.partitions:
        yield from partition.compacted()
