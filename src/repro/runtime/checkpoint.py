"""Checkpointing: aligned barriers and consistent snapshots (Section 4.2).

Implements the Chandy–Lamport-derived protocol streaming systems use for
fault tolerance (Carbone et al.'s Flink paper, cited by the survey):
the coordinator schedules **barriers** that sources inject into their
streams; operators **align** barriers across input channels, snapshot their
state, and forward the barrier; a checkpoint *completes* when every
participant has reported.  Completed checkpoints are recovery points: the
runner restores operator state and source offsets from the latest one,
giving exactly-once results with transactional sinks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import StateError


@dataclass
class CheckpointSnapshot:
    """All state reported for one checkpoint id.

    Expectations are tracked **per role**: a participant that is both a
    source and a stateful operator must report its offset *and* its state
    before the checkpoint counts as complete.  (Unioning the reported keys
    against one flat expected set let a dual-role participant's offset
    report mask its missing state report, so restore silently dropped the
    state — the torn-snapshot bug.)
    """

    checkpoint_id: int
    expected_operators: set[tuple[str, int]]
    expected_sources: set[tuple[str, int]]
    operator_state: dict[tuple[str, int], Any] = field(default_factory=dict)
    source_offsets: dict[tuple[str, int], int] = field(default_factory=dict)
    #: Wall-clock bracket: first report → completing report (observability).
    started_at: float = field(default_factory=time.perf_counter)
    completed_at: float | None = None

    @property
    def expected(self) -> set[tuple[str, int]]:
        """All participants, either role (kept for display/diagnostics)."""
        return self.expected_operators | self.expected_sources

    @property
    def complete(self) -> bool:
        return (set(self.operator_state) >= self.expected_operators
                and set(self.source_offsets) >= self.expected_sources)

    @property
    def duration(self) -> float | None:
        """Seconds from first to last report, or None while incomplete."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class CheckpointCoordinator:
    """Schedules barriers and collects snapshots.

    ``interval`` is measured in records *per source subtask*: each source
    injects a barrier every ``interval`` records.  Barrier ids increase
    monotonically and are globally shared (all sources inject barrier n at
    their own n·interval position — consistent cuts are guaranteed by the
    alignment downstream, not by source synchrony).

    ``sources`` and ``operators`` are the per-role participant sets; a
    subtask appearing in both must deliver both kinds of report for a
    checkpoint to complete.
    """

    def __init__(self, interval: int | None,
                 sources: set[tuple[str, int]] | None = None,
                 operators: set[tuple[str, int]] | None = None) -> None:
        if interval is not None and interval <= 0:
            raise StateError(f"checkpoint interval must be positive, "
                             f"got {interval}")
        self.interval = interval
        self.sources = set(sources or ())
        self.operators = set(operators or ())
        self._snapshots: dict[int, CheckpointSnapshot] = {}
        #: Ids at or below this are retired: a restore rolled the job back
        #: to this checkpoint, so recounting sources re-derive them.
        self._floor = 0
        #: Completed-checkpoint wall times: (checkpoint id, seconds).
        self.durations: list[tuple[int, float]] = []

    @property
    def participants(self) -> set[tuple[str, int]]:
        return self.sources | self.operators

    def barrier_due(self, records_emitted: int) -> int | None:
        """Checkpoint id to inject after ``records_emitted`` records, or
        None.  (id = how many intervals have elapsed.)  Ids at or below
        the restore floor were completed before the rollback that replays
        these records; re-injecting them would re-open snapshots that are
        already recovery points."""
        if self.interval is None or records_emitted == 0:
            return None
        if records_emitted % self.interval == 0:
            checkpoint_id = records_emitted // self.interval
            if checkpoint_id <= self._floor:
                return None
            return checkpoint_id
        return None

    def reset_for_restore(self, restored_id: int | None) -> None:
        """Prepare for a restart from checkpoint ``restored_id``.

        Snapshots newer than the restored checkpoint are partial work from
        the crashed attempt — its in-flight barriers died with it, so they
        can never complete and would otherwise accumulate as garbage (or
        worse, complete *incorrectly* when replaying sources recount into
        them).  Numbering resumes above ``restored_id``.  ``None`` means a
        restart from scratch: everything is discarded.
        """
        restored = restored_id if restored_id is not None else 0
        self._floor = restored
        for checkpoint_id in list(self._snapshots):
            if checkpoint_id > restored or \
                    not self._snapshots[checkpoint_id].complete:
                del self._snapshots[checkpoint_id]

    def _snapshot_for(self, checkpoint_id: int) -> CheckpointSnapshot:
        if checkpoint_id not in self._snapshots:
            self._snapshots[checkpoint_id] = CheckpointSnapshot(
                checkpoint_id, set(self.operators), set(self.sources))
        return self._snapshots[checkpoint_id]

    def report_operator(self, checkpoint_id: int, vertex: str,
                        subtask: int, state: Any) -> None:
        snapshot = self._snapshot_for(checkpoint_id)
        snapshot.operator_state[(vertex, subtask)] = state
        self._stamp_if_complete(snapshot)

    def report_source(self, checkpoint_id: int, vertex: str,
                      subtask: int, offset: int) -> None:
        snapshot = self._snapshot_for(checkpoint_id)
        snapshot.source_offsets[(vertex, subtask)] = offset
        self._stamp_if_complete(snapshot)

    def _stamp_if_complete(self, snapshot: CheckpointSnapshot) -> None:
        if snapshot.completed_at is None and snapshot.complete:
            snapshot.completed_at = time.perf_counter()
            self.durations.append(
                (snapshot.checkpoint_id, snapshot.duration))

    def latest_complete(self) -> CheckpointSnapshot | None:
        """The newest checkpoint every participant reported for."""
        complete = [s for s in self._snapshots.values() if s.complete]
        if not complete:
            return None
        return max(complete, key=lambda s: s.checkpoint_id)

    def completed_ids(self) -> list[int]:
        return sorted(s.checkpoint_id for s in self._snapshots.values()
                      if s.complete)
