"""An embedded log-structured (LSM) key-value store — the RocksDB stand-in.

Figure 5 shows stateful operators persisting intermediate results in an
embedded key-value store.  This module substitutes RocksDB with a faithful
laptop-scale LSM tree: writes go to a write-ahead log and a sorted
**memtable**; when the memtable exceeds its budget it is flushed to an
immutable **sorted run** (SSTable); reads consult memtable then runs newest
first; deletes write **tombstones**; background **compaction** merges runs
to bound read amplification.  The same get/put/delete/scan interface backs
the keyed operator state of :mod:`repro.dsl` and the Figure 5 state-backend
benchmark.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.core.errors import StateError


class _Tombstone:
    """Marker for deleted keys (distinct from any user value)."""

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class MemTable:
    """The mutable in-memory write buffer: a sorted key → value map."""

    def __init__(self) -> None:
        self._keys: list[Any] = []
        self._values: dict[Any, Any] = {}

    def put(self, key: Any, value: Any) -> None:
        if key not in self._values:
            bisect.insort(self._keys, key)
        self._values[key] = value

    def get(self, key: Any) -> Any:
        """The stored value, TOMBSTONE, or None when absent."""
        return self._values.get(key)

    def __contains__(self, key: Any) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Sorted (key, value) pairs, tombstones included."""
        for key in self._keys:
            yield key, self._values[key]

    def scan(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_left(self._keys, high)
        for key in self._keys[lo:hi]:
            yield key, self._values[key]


class SortedRun:
    """An immutable sorted run (the SSTable of a real LSM tree)."""

    def __init__(self, items: list[tuple[Any, Any]]) -> None:
        self._keys = [k for k, _ in items]
        self._vals = [v for _, v in items]
        if self._keys != sorted(self._keys):
            raise StateError("sorted run keys must be sorted")

    def get(self, key: Any) -> Any:
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._vals[index]
        return None

    def __contains__(self, key: Any) -> bool:
        index = bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def __len__(self) -> int:
        return len(self._keys)

    def items(self) -> Iterator[tuple[Any, Any]]:
        return iter(zip(self._keys, self._vals))

    def scan(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_left(self._keys, high)
        return iter(zip(self._keys[lo:hi], self._vals[lo:hi]))


class WriteAheadLog:
    """An append-only operation log enabling crash recovery.

    In-memory by design (the substitution note in DESIGN.md): what matters
    for the reproduction is the *protocol* — every mutation is logged
    before it is applied, and :meth:`replay` rebuilds the store state.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, Any, Any]] = []

    def log_put(self, key: Any, value: Any) -> None:
        self._entries.append(("put", key, value))

    def log_delete(self, key: Any) -> None:
        self._entries.append(("del", key, None))

    def truncate(self) -> None:
        """Drop entries covered by a flushed run."""
        self._entries.clear()

    def replay(self) -> Iterator[tuple[str, Any, Any]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class LSMStore:
    """The log-structured store: RocksDB's interface at laptop scale.

    Metrics (`flushes`, `compactions`, `reads`, `run_probes`) make write
    and read amplification observable for the Figure 5 benchmark.
    """

    def __init__(self, memtable_limit: int = 1024,
                 max_runs: int = 4) -> None:
        if memtable_limit <= 0 or max_runs <= 0:
            raise StateError("memtable_limit and max_runs must be positive")
        self.memtable_limit = memtable_limit
        self.max_runs = max_runs
        self._memtable = MemTable()
        self._runs: list[SortedRun] = []  # newest first
        self._wal = WriteAheadLog()
        self.flushes = 0
        self.compactions = 0
        self.reads = 0
        self.run_probes = 0

    # -- writes ----------------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        if isinstance(value, _Tombstone):
            raise StateError("cannot store the tombstone marker directly")
        self._wal.log_put(key, value)
        self._memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: Any) -> None:
        self._wal.log_delete(key)
        self._memtable.put(key, TOMBSTONE)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new sorted run; truncate the WAL."""
        if not len(self._memtable):
            return
        self._runs.insert(0, SortedRun(list(self._memtable.items())))
        self._memtable = MemTable()
        self._wal.truncate()
        self.flushes += 1
        if len(self._runs) > self.max_runs:
            self.compact()

    def compact(self) -> None:
        """Merge all runs into one, dropping shadowed values and tombstones."""
        merged: dict[Any, Any] = {}
        for run in reversed(self._runs):  # oldest first; newer overwrite
            for key, value in run.items():
                merged[key] = value
        survivors = sorted(
            (k, v) for k, v in merged.items()
            if not isinstance(v, _Tombstone))
        self._runs = [SortedRun(survivors)] if survivors else []
        self.compactions += 1

    # -- reads -----------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Newest-wins lookup: memtable, then runs newest-first."""
        self.reads += 1
        if key in self._memtable:
            value = self._memtable.get(key)
            return default if isinstance(value, _Tombstone) else value
        for run in self._runs:
            self.run_probes += 1
            if key in run:
                value = run.get(key)
                return default if isinstance(value, _Tombstone) else value
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def scan(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Merged range scan over ``[low, high)``, newest value per key."""
        sources = [self._memtable.scan(low, high)] + [
            run.scan(low, high) for run in self._runs]
        chosen: dict[Any, Any] = {}
        for source in sources:  # newest source first; keep first sighting
            for key, value in source:
                if key not in chosen:
                    chosen[key] = value
        for key in sorted(chosen):
            value = chosen[key]
            if not isinstance(value, _Tombstone):
                yield key, value

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All live (key, value) pairs in key order."""
        chosen: dict[Any, Any] = {}
        for source in [self._memtable.items()] + [
                run.items() for run in self._runs]:
            for key, value in source:
                if key not in chosen:
                    chosen[key] = value
        for key in sorted(chosen):
            value = chosen[key]
            if not isinstance(value, _Tombstone):
                yield key, value

    def __len__(self) -> int:
        """Number of live keys (requires a full merge — O(n))."""
        return sum(1 for _ in self.items())

    # -- introspection -----------------------------------------------------------

    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)

    def recover(self) -> "LSMStore":
        """Simulate crash recovery: rebuild from runs + WAL replay.

        Returns a new store whose live contents equal this one's — the
        property the WAL exists to guarantee.
        """
        fresh = LSMStore(self.memtable_limit, self.max_runs)
        fresh._runs = list(self._runs)
        for op, key, value in self._wal.replay():
            if op == "put":
                fresh._memtable.put(key, value)
            else:
                fresh._memtable.put(key, TOMBSTONE)
        return fresh
