"""Stream partitioning strategies between operator subtasks (Figure 5).

Operators in a streaming job exchange records in parallel; the edge between
two operators carries a partitioner deciding which downstream subtask(s)
receive each record:

* **forward** — subtask i to subtask i (requires equal parallelism; the
  precondition for operator chaining/fusion);
* **hash** — by key, so all records of one key meet at one subtask (keyed
  state correctness);
* **broadcast** — every subtask gets every record (small dimension tables,
  control messages, watermarks);
* **rebalance** — round-robin, for load balancing stateless work.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

from repro.core.errors import StateError
from repro.runtime.broker import default_hash


class Partitioner:
    """Maps a record to the downstream subtask indices that receive it."""

    def route(self, value: Any, key: Any, downstream: int) -> Sequence[int]:
        raise NotImplementedError

    @property
    def is_forward(self) -> bool:
        """Forward edges are the ones operator chaining may fuse."""
        return False


class ForwardPartitioner(Partitioner):
    """Subtask i → subtask i.  The runner validates equal parallelism."""

    def __init__(self) -> None:
        self.upstream_index = 0  # set per producing subtask by the runner

    def route(self, value: Any, key: Any, downstream: int) -> Sequence[int]:
        if self.upstream_index >= downstream:
            raise StateError(
                "forward edge requires equal upstream/downstream "
                "parallelism")
        return (self.upstream_index,)

    @property
    def is_forward(self) -> bool:
        return True


class HashPartitioner(Partitioner):
    """Route by key hash; all records of a key go to one subtask."""

    def __init__(self, key_fn: Callable[[Any], Any] | None = None) -> None:
        self.key_fn = key_fn

    def route(self, value: Any, key: Any, downstream: int) -> Sequence[int]:
        if self.key_fn is not None:
            key = self.key_fn(value)
        return (default_hash(key) % downstream,)


class BroadcastPartitioner(Partitioner):
    """Every downstream subtask receives every record."""

    def route(self, value: Any, key: Any, downstream: int) -> Sequence[int]:
        return tuple(range(downstream))


class RebalancePartitioner(Partitioner):
    """Round-robin across downstream subtasks.

    One instance may serve edges of different widths (the runner reuses
    partitioner objects per edge factory), so the round-robin position is
    kept *per downstream width*: alternating calls with different widths
    each continue their own cycle instead of restarting at subtask 0 on
    every width change — the restart starved every subtask but 0.
    """

    def __init__(self) -> None:
        self._cycles: dict[int, "itertools.cycle[int]"] = {}

    def route(self, value: Any, key: Any, downstream: int) -> Sequence[int]:
        cycle = self._cycles.get(downstream)
        if cycle is None:
            cycle = self._cycles[downstream] = itertools.cycle(
                range(downstream))
        return (next(cycle),)
