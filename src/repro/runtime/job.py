"""Job execution: the actor-based streaming runtime (Figure 5 assembled).

Every operator subtask is an actor; records, watermarks, checkpoint
barriers and end-of-stream markers flow as messages.  Within one input
channel ordering is FIFO (actor mailboxes preserve send order), which is
exactly the guarantee the alignment and watermark protocols need.

The runner supports:

* **parallel subtasks** with hash/forward/broadcast/rebalance edges;
* **operator chaining** (fusion) before deployment;
* **event-time watermarks** with minimum-across-channels propagation;
* **aligned-barrier checkpointing** and **exactly-once recovery**: on
  failure, operator state and source offsets are restored from the last
  complete checkpoint and uncommitted sink output is discarded.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable

import repro.obs as obs
from repro.obs import profile as _profile
from repro.core.errors import StateError
from repro.core.time import MAX_TIMESTAMP, Timestamp
from repro.exec import Emitter, OperatorContext, WatermarkTracker
from repro.runtime.actors import Actor, ActorRef, ActorSystem
from repro.runtime.checkpoint import CheckpointCoordinator
from repro.runtime.dag import (
    Element,
    JobGraph,
    StreamOperator,
    chain_operators,
)
from repro.runtime.partitioning import ForwardPartitioner, Partitioner

Channel = tuple[str, int]


@dataclass(frozen=True)
class DataMsg:
    channel: Channel
    element: Element


@dataclass(frozen=True)
class WatermarkMsg:
    channel: Channel
    value: Timestamp


@dataclass(frozen=True)
class BarrierMsg:
    channel: Channel
    checkpoint_id: int


@dataclass(frozen=True)
class EndMsg:
    channel: Channel


@dataclass(frozen=True)
class RunSourceMsg:
    pass


class JobFailure(Exception):
    """Raised by operators to simulate a crash (drives recovery tests)."""


class _OutEdge:
    """Routing info for one outgoing edge of a subtask."""

    def __init__(self, downstream: str, parallelism: int,
                 partitioner: Partitioner, subtask: int) -> None:
        self.downstream = downstream
        self.parallelism = parallelism
        self.partitioner = partitioner
        if isinstance(partitioner, ForwardPartitioner):
            partitioner.upstream_index = subtask


class _Emitter(Emitter):
    """Kernel emitter that routes elements as actor messages.

    Operators opened with this as their context emitter push output
    straight onto downstream mailboxes — the kernel's ``emit`` surface
    bound to the actor transport.
    """

    def __init__(self, system: ActorSystem, vertex: str, subtask: int,
                 out_edges: list[_OutEdge]) -> None:
        self._system = system
        self.channel: Channel = (vertex, subtask)
        self._out = out_edges
        self.records_out = 0

    def _ref(self, vertex: str, index: int) -> ActorRef:
        return self._system.ref(f"{vertex}#{index}")

    def emit(self, element: Element) -> None:
        self.records_out += 1
        for edge in self._out:
            for index in edge.partitioner.route(
                    element.value, element.key, edge.parallelism):
                self._ref(edge.downstream, index).tell(
                    DataMsg(self.channel, element))

    def broadcast(self, make_msg: Callable[[Channel], Any]) -> None:
        message = make_msg(self.channel)
        for edge in self._out:
            for index in range(edge.parallelism):
                self._ref(edge.downstream, index).tell(message)


class SourceSubtask(Actor):
    """Replays its share of the input, injecting watermarks and barriers."""

    def __init__(self, vertex: str, subtask: int,
                 records: list[tuple[Any, Any, Timestamp]],
                 watermark_lag: Timestamp,
                 emitter: _Emitter,
                 coordinator: CheckpointCoordinator,
                 start_offset: int = 0) -> None:
        super().__init__()
        self.vertex = vertex
        self.subtask = subtask
        self._records = records
        self._lag = watermark_lag
        self._emitter = emitter
        self._coordinator = coordinator
        self._offset = start_offset

    def receive(self, message: Any, sender: ActorRef | None) -> None:
        if not isinstance(message, RunSourceMsg):
            raise StateError(f"source got unexpected message {message!r}")
        max_seen: Timestamp = -1
        # Replay the prefix's watermark effect when resuming from an offset.
        for value, key, timestamp in self._records[:self._offset]:
            max_seen = max(max_seen, timestamp)
        while self._offset < len(self._records):
            value, key, timestamp = self._records[self._offset]
            self._emitter.emit(Element(value, key, timestamp))
            self._offset += 1
            barrier = self._coordinator.barrier_due(self._offset)
            if barrier is not None:
                self._coordinator.report_source(
                    barrier, self.vertex, self.subtask, self._offset)
                self._emitter.broadcast(
                    lambda ch, b=barrier: BarrierMsg(ch, b))
            if timestamp > max_seen:
                max_seen = timestamp
                self._emitter.broadcast(
                    lambda ch, w=max_seen - self._lag - 1: WatermarkMsg(
                        ch, w))
        self._emitter.broadcast(
            lambda ch: WatermarkMsg(ch, MAX_TIMESTAMP))
        self._emitter.broadcast(EndMsg)


class OperatorSubtask(Actor):
    """One parallel instance of an operator vertex."""

    #: Mailbox depth at which the channel-edge pressure signal trips
    #: (mailboxes are unbounded, so this is a fixed depth, not a
    #: fraction of capacity like the DSMS input queues).
    PRESSURE_DEPTH = 64

    def __init__(self, vertex: str, subtask: int, operator: StreamOperator,
                 channels: list[Channel], emitter: _Emitter,
                 coordinator: CheckpointCoordinator,
                 kernel: bool = True) -> None:
        super().__init__()
        self.vertex = vertex
        self.subtask = subtask
        self.operator = operator
        self._emitter = emitter
        self._coordinator = coordinator
        self._kernel = kernel
        self._tracker = WatermarkTracker(channels)
        self._ended: set[Channel] = set()
        self._channels = list(channels)
        self._pressured = False
        # Barrier alignment state.
        self._aligning: int | None = None
        self._aligned: set[Channel] = set()
        self._buffered: list[Any] = []

    # -- message handling ------------------------------------------------------

    def receive(self, message: Any, sender: ActorRef | None) -> None:
        # A channel that already delivered the current barrier is blocked:
        # everything it sends (data, watermarks, even the *next* barrier)
        # is buffered until alignment completes.  This is what prevents
        # pre-barrier and post-barrier records from mixing in the snapshot
        # and keeps concurrent checkpoints ordered.
        if self._aligning is not None and \
                getattr(message, "channel", None) in self._aligned:
            self._buffered.append(message)
            return
        if isinstance(message, DataMsg):
            self._process_data(message)
        elif isinstance(message, WatermarkMsg):
            self._process_watermark(message)
        elif isinstance(message, BarrierMsg):
            self._process_barrier(message)
        elif isinstance(message, EndMsg):
            self._process_end(message)
        else:
            raise StateError(f"unexpected message {message!r}")

    def _process_data(self, message: DataMsg) -> None:
        if obs.is_enabled():
            registry = obs.get_registry()
            registry.counter("exec.operator.records_in", layer="runtime",
                             operator=self.vertex).inc()
            mailbox = self.context.system._mailboxes.get(
                f"{self.vertex}#{self.subtask}")
            if mailbox is not None:
                depth = len(mailbox)
                registry.gauge("runtime.vertex.queue_depth",
                               vertex=self.vertex).observe(depth)
                # Edge-triggered pressure signal on the channel edge (the
                # gauge's running max is already the depth high-water
                # mark; this counts sustained-overload episodes).
                if depth >= self.PRESSURE_DEPTH:
                    if not self._pressured:
                        self._pressured = True
                        registry.counter("runtime.vertex.pressure_events",
                                         vertex=self.vertex).inc()
                        if _profile._ENABLED:
                            _profile._RECORDER.record(
                                "channel.pressure", vertex=self.vertex,
                                subtask=self.subtask, depth=depth)
                else:
                    self._pressured = False
        if self._kernel:
            self.operator.process_element(message.element)
        else:
            self._emitter.emit_all(self.operator.process(message.element))

    def _process_watermark(self, message: WatermarkMsg) -> None:
        combined = self._tracker.advance(message.channel, message.value)
        if combined is not None:
            self._fire_watermark(combined)

    def _fire_watermark(self, combined: Timestamp) -> None:
        if obs.is_enabled():
            obs.get_registry().gauge(
                "exec.operator.watermark", layer="runtime",
                operator=self.vertex).set(combined)
        if self._kernel:
            self.operator.process_watermark(combined)
        else:
            for fire_at, key in self.operator.timers.due(combined):
                self._emitter.emit_all(self.operator.on_timer(fire_at, key))
            self._emitter.emit_all(self.operator.on_watermark(combined))
        self._emitter.broadcast(
            lambda ch, w=combined: WatermarkMsg(ch, w))

    def _process_barrier(self, message: BarrierMsg) -> None:
        if self._aligning is None:
            self._aligning = message.checkpoint_id
            self._aligned = set()
        if message.checkpoint_id != self._aligning:
            raise StateError(
                f"overlapping checkpoints {self._aligning} and "
                f"{message.checkpoint_id} (alignment violated)")
        self._aligned.add(message.channel)
        open_channels = set(self._channels) - self._ended
        if self._aligned >= open_channels:
            checkpoint_id = self._aligning
            if _profile._ENABLED:
                _profile._RECORDER.record(
                    "checkpoint.barrier", vertex=self.vertex,
                    subtask=self.subtask, checkpoint=checkpoint_id)
            self.operator.on_barrier(checkpoint_id)
            self._coordinator.report_operator(
                checkpoint_id, self.vertex, self.subtask,
                (self.operator.snapshot(),
                 self.operator.timers.snapshot()))
            self._emitter.broadcast(
                lambda ch, b=checkpoint_id: BarrierMsg(ch, b))
            self._aligning = None
            self._aligned = set()
            buffered, self._buffered = self._buffered, []
            for data in buffered:
                self.receive(data, None)

    def _process_end(self, message: EndMsg) -> None:
        self._ended.add(message.channel)
        # An ended channel stops holding back the combined watermark...
        combined = self._tracker.mark_idle(message.channel)
        if combined is not None:
            self._fire_watermark(combined)
        # ...and no longer blocks alignment.
        if self._aligning is not None:
            self._process_barrier_progress()
        if self._ended >= set(self._channels):
            if self._kernel:
                self.operator.close()
            else:
                self._emitter.emit_all(self.operator.on_end())
            self._emitter.broadcast(EndMsg)
            self.context.stop_self()

    def _process_barrier_progress(self) -> None:
        open_channels = set(self._channels) - self._ended
        if self._aligned >= open_channels and self._aligning is not None:
            # Re-run completion via a synthetic barrier from an aligned
            # channel (idempotent path through _process_barrier).
            checkpoint_id = self._aligning
            some_channel = next(iter(self._aligned), self._channels[0])
            self._process_barrier(BarrierMsg(some_channel, checkpoint_id))


class JobResult:
    """What a finished run returns: sink outputs and counters."""

    def __init__(self) -> None:
        self.sink_outputs: dict[str, list[Element]] = defaultdict(list)
        self.messages_processed = 0
        self.recoveries = 0
        self.completed_checkpoints: list[int] = []

    def values(self, sink: str) -> list[Any]:
        return [e.value for e in self.sink_outputs[sink]]


class JobRunner:
    """Deploys a job graph onto an actor system and runs it to completion.

    ``checkpoint_interval`` (records per source subtask) enables
    checkpointing; ``chaining`` applies the fusion optimisation first.
    ``max_restarts`` bounds recovery attempts after :class:`JobFailure`.
    """

    def __init__(self, graph: JobGraph, chaining: bool = True,
                 checkpoint_interval: int | None = None,
                 max_restarts: int = 3, kernel: bool = True) -> None:
        graph.validate()
        self.graph = chain_operators(graph) if chaining else graph
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.kernel = kernel
        source_participants: set[tuple[str, int]] = set()
        operator_participants: set[tuple[str, int]] = set()
        for name, source in self.graph.sources.items():
            source_participants.update((name, i)
                                       for i in range(source.parallelism))
        for name, vertex in self.graph.vertices.items():
            operator_participants.update((name, i)
                                         for i in range(vertex.parallelism))
        self.coordinator = CheckpointCoordinator(
            checkpoint_interval, sources=source_participants,
            operators=operator_participants)
        # (vertex, subtask) -> epoch id -> committed elements.  Epochs are
        # overwritten idempotently on re-commit after recovery, which is
        # what deduplicates replayed output (exactly-once).
        self._committed_sink: dict[tuple[str, int],
                                   dict[Any, list[Element]]] = \
            defaultdict(dict)
        self.system: ActorSystem | None = None
        self._operators: dict[tuple[str, int], StreamOperator] = {}
        self._emitters: dict[tuple[str, int], _Emitter] = {}

    # -- deployment -------------------------------------------------------------

    def _channels_into(self, name: str) -> list[Channel]:
        channels: list[Channel] = []
        for edge in self.graph.upstream_edges(name):
            upstream_parallelism = self.graph.parallelism_of(edge.upstream)
            channels.extend((edge.upstream, i)
                            for i in range(upstream_parallelism))
        return channels

    def _out_edges(self, name: str, subtask: int) -> list[_OutEdge]:
        out = []
        for edge in self.graph.downstream_edges(name):
            out.append(_OutEdge(
                edge.downstream,
                self.graph.parallelism_of(edge.downstream),
                edge.partitioner(), subtask))
        return out

    def _deploy(self, restore_from=None) -> None:
        self.system = ActorSystem()
        self._operators = {}
        self._emitters = {}
        offsets = {}
        states = {}
        if restore_from is not None:
            offsets = restore_from.source_offsets
            states = restore_from.operator_state
        for name, vertex in self.graph.vertices.items():
            channels = self._channels_into(name)
            for subtask in range(vertex.parallelism):
                operator = vertex.factory()
                emitter = _Emitter(self.system, name, subtask,
                                   self._out_edges(name, subtask))
                operator.open(OperatorContext(
                    name=name, subtask=subtask,
                    parallelism=vertex.parallelism, emitter=emitter))
                key = (name, subtask)
                if key in states:
                    op_state, timer_state = states[key]
                    operator.restore(op_state)
                    operator.timers.restore(timer_state)
                self._operators[key] = operator
                self._emitters[key] = emitter
                self.system.spawn(
                    f"{name}#{subtask}",
                    OperatorSubtask(name, subtask, operator, channels,
                                    emitter, self.coordinator,
                                    kernel=self.kernel))
        for name, source in self.graph.sources.items():
            for subtask in range(source.parallelism):
                emitter = _Emitter(self.system, name, subtask,
                                   self._out_edges(name, subtask))
                self._emitters[(name, subtask)] = emitter
                self.system.spawn(
                    f"{name}#{subtask}",
                    SourceSubtask(name, subtask, source.records[subtask],
                                  source.watermark_lag, emitter,
                                  self.coordinator,
                                  start_offset=offsets.get(
                                      (name, subtask), 0)))

    # -- running ----------------------------------------------------------------

    def run(self) -> JobResult:
        """Run to completion, recovering from JobFailure if checkpointing
        is enabled."""
        result = JobResult()
        restore_from = None
        attempts = 0
        tracer = obs.get_tracer() if obs.is_enabled() else obs.NoopTracer()
        with tracer.span("runtime.job.run", job=self.graph.name) as root:
            while True:
                self._deploy(restore_from)
                for name, source in self.graph.sources.items():
                    for subtask in range(source.parallelism):
                        self.system.ref(f"{name}#{subtask}").tell(
                            RunSourceMsg())
                try:
                    with tracer.span("runtime.job.attempt",
                                     attempt=attempts) as span:
                        self.system.run_until_idle()
                        span.add(messages=self.system.messages_processed)
                    result.messages_processed += \
                        self.system.messages_processed
                    break
                except JobFailure:
                    # The crashed attempt's work still counts: it is the
                    # overhead recovery pays for (the ablation's metric).
                    result.messages_processed += \
                        self.system.messages_processed
                    attempts += 1
                    result.recoveries += 1
                    if attempts > self.max_restarts:
                        raise
                    restore_from = self.coordinator.latest_complete()
                    if _profile._ENABLED:
                        _profile._RECORDER.record(
                            "recovery.attempt", layer="runtime",
                            job=self.graph.name, attempt=attempts,
                            checkpoint=(restore_from.checkpoint_id
                                        if restore_from is not None
                                        else None))
                    # Replaying sources recount from the restored offset,
                    # so barrier ids up to the restored checkpoint will be
                    # derived again; retire them (and the crashed
                    # attempt's partial snapshots) before redeploying.
                    self.coordinator.reset_for_restore(
                        restore_from.checkpoint_id
                        if restore_from is not None else None)
                    self._collect_committed()
            root.add(messages=result.messages_processed,
                     recoveries=result.recoveries)
            if obs.is_enabled():
                self.publish_observability()
        self._collect_committed()
        for (name, subtask), epochs in self._committed_sink.items():
            if name in self.graph.sinks:
                alias = self.graph.sink_alias(name)
                for elements in epochs.values():
                    result.sink_outputs[alias].extend(elements)
        for name in list(result.sink_outputs):
            result.sink_outputs[name].sort(
                key=lambda e: (e.timestamp, repr(e.value)))
        result.completed_checkpoints = self.coordinator.completed_ids()
        return result

    def _collect_committed(self) -> None:
        """Harvest committed epochs from transactional sinks.

        Keyed by epoch id so that epochs re-committed after a recovery
        overwrite (identically) instead of duplicating.
        """
        for (name, subtask), operator in self._operators.items():
            take = getattr(operator, "take_committed", None)
            if take is not None:
                self._committed_sink[(name, subtask)].update(take())

    def operator_instance(self, vertex: str,
                          subtask: int = 0) -> StreamOperator:
        """Access a deployed operator (tests and metrics)."""
        return self._operators[(vertex, subtask)]

    def publish_observability(self, registry=None) -> None:
        """Snapshot per-vertex throughput and checkpoint durations into
        the (global) metrics registry.  Pull-based and idempotent."""
        registry = registry if registry is not None else obs.get_registry()
        per_vertex: dict[str, int] = defaultdict(int)
        for (name, _subtask), emitter in self._emitters.items():
            per_vertex[name] += emitter.records_out
        for name, records_out in per_vertex.items():
            counter = registry.counter("exec.operator.records_out",
                                       layer="runtime", operator=name)
            counter.inc(max(0, records_out - counter.value))
        durations = registry.histogram("runtime.checkpoint.duration_seconds")
        for _checkpoint_id, seconds in \
                self.coordinator.durations[durations.count:]:
            durations.observe(seconds)
        registry.gauge("runtime.checkpoints.completed").set(
            len(self.coordinator.completed_ids()))
