"""Network-aware operator placement and fission advice (Section 4.2).

The two entries of Hirzel et al.'s optimisation catalog that live at
deployment time rather than plan time:

* **operator placement** (Pietzuch et al.): assign a job graph's vertices
  to compute nodes so that high-rate edges cross low-latency links —
  minimise Σ rate(edge) · latency(host(u), host(v)) subject to per-node
  slot capacities.  Small graphs are solved exactly (exhaustive over
  assignments); larger ones greedily, seeded by the exact method's cost
  structure.
* **fission** (fan-out advice): given per-vertex service costs and input
  rates, report the bottleneck vertices whose parallelism should grow and
  by how much — the auto-scaling decision real systems make.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.errors import PlanError
from repro.runtime.dag import JobGraph


@dataclass(frozen=True)
class ComputeNode:
    """A placement target: a host with a number of operator slots."""

    name: str
    slots: int

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise PlanError(f"node {self.name!r} needs positive slots")


class Network:
    """Hosts plus pairwise link latencies (same-host traffic is free)."""

    def __init__(self, nodes: list[ComputeNode],
                 default_latency: float = 10.0) -> None:
        if not nodes:
            raise PlanError("a network needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise PlanError("duplicate node names")
        self.nodes = list(nodes)
        self.default_latency = default_latency
        self._latency: dict[frozenset, float] = {}

    def set_latency(self, a: str, b: str, latency: float) -> None:
        self._latency[frozenset((a, b))] = latency

    def latency(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._latency.get(frozenset((a, b)), self.default_latency)


@dataclass
class Placement:
    """An assignment of job-graph vertices to network nodes."""

    assignment: dict[str, str]
    cost: float
    method: str = "exact"

    def host_of(self, vertex: str) -> str:
        return self.assignment[vertex]


def _edge_rates(graph: JobGraph,
                rates: dict[tuple[str, str], float] | None,
                ) -> list[tuple[str, str, float]]:
    out = []
    for edge in graph.edges:
        rate = 1.0 if rates is None else rates.get(
            (edge.upstream, edge.downstream), 1.0)
        out.append((edge.upstream, edge.downstream, rate))
    return out


def _cost(assignment: dict[str, str], edges, network: Network) -> float:
    return sum(rate * network.latency(assignment[u], assignment[v])
               for u, v, rate in edges)


def place(graph: JobGraph, network: Network,
          rates: dict[tuple[str, str], float] | None = None,
          pinned: dict[str, str] | None = None,
          exhaustive_limit: int = 7) -> Placement:
    """Assign every vertex (and source) of ``graph`` to a network node.

    ``rates`` gives per-edge tuple rates (default 1.0); ``pinned`` fixes
    some vertices to hosts (sources usually sit where data enters).
    Graphs with at most ``exhaustive_limit`` free vertices are solved
    exactly; larger graphs use a greedy pass over vertices in topological
    order, choosing per vertex the feasible host minimising the cost of
    its already-placed incident edges.
    """
    graph.validate()
    vertices = sorted(set(graph.sources) | set(graph.vertices))
    pinned = dict(pinned or {})
    for vertex, host in pinned.items():
        if vertex not in vertices:
            raise PlanError(f"pinned vertex {vertex!r} not in the graph")
        if host not in {n.name for n in network.nodes}:
            raise PlanError(f"pinned host {host!r} not in the network")
    edges = _edge_rates(graph, rates)
    free = [v for v in vertices if v not in pinned]
    capacity = {n.name: n.slots for n in network.nodes}
    for host in pinned.values():
        capacity[host] -= 1
        if capacity[host] < 0:
            raise PlanError(f"pinning exceeds {host!r} capacity")
    if sum(capacity.values()) < len(free):
        raise PlanError("network has fewer slots than operators")

    if len(free) <= exhaustive_limit:
        return _place_exact(free, pinned, capacity, edges, network)
    return _place_greedy(graph, free, pinned, capacity, edges, network)


def _place_exact(free, pinned, capacity, edges, network) -> Placement:
    hosts = sorted(capacity)
    best: Placement | None = None
    for combo in itertools.product(hosts, repeat=len(free)):
        used: dict[str, int] = {}
        feasible = True
        for host in combo:
            used[host] = used.get(host, 0) + 1
            if used[host] > capacity[host]:
                feasible = False
                break
        if not feasible:
            continue
        assignment = dict(pinned)
        assignment.update(zip(free, combo))
        cost = _cost(assignment, edges, network)
        if best is None or cost < best.cost:
            best = Placement(assignment, cost, method="exact")
    assert best is not None  # capacity was pre-checked
    return best


def _place_greedy(graph, free, pinned, capacity, edges,
                  network) -> Placement:
    assignment = dict(pinned)
    remaining = dict(capacity)
    # Topological-ish order: sources first, then by distance downstream.
    order = sorted(free, key=lambda v: (v not in graph.sources, v))
    for vertex in order:
        incident = [(u, w, r) for u, w, r in edges
                    if vertex in (u, w)]
        best_host, best_cost = None, None
        for host in sorted(remaining):
            if remaining[host] <= 0:
                continue
            cost = 0.0
            for u, w, rate in incident:
                other = w if u == vertex else u
                if other in assignment:
                    cost += rate * network.latency(host,
                                                   assignment[other])
            if best_cost is None or cost < best_cost:
                best_host, best_cost = host, cost
        assignment[vertex] = best_host
        remaining[best_host] -= 1
    return Placement(assignment, _cost(assignment, edges, network),
                     method="greedy")


# ---------------------------------------------------------------------------
# Fission advice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FissionAdvice:
    """One vertex's scaling recommendation."""

    vertex: str
    current_parallelism: int
    utilisation: float          # input rate x unit cost / parallelism
    recommended_parallelism: int


def advise_fission(graph: JobGraph,
                   input_rates: dict[str, float],
                   unit_costs: dict[str, float],
                   target_utilisation: float = 0.8,
                   ) -> list[FissionAdvice]:
    """Recommend parallelism per vertex (the fission optimisation).

    ``input_rates[vertex]`` — tuples/tick arriving; ``unit_costs[vertex]``
    — processing ticks per tuple per subtask.  A vertex is a bottleneck
    when utilisation = rate · cost / parallelism exceeds
    ``target_utilisation``; the recommendation restores it below target.
    """
    import math

    if not 0 < target_utilisation <= 1:
        raise PlanError("target utilisation must be in (0, 1]")
    advice = []
    for name, vertex in sorted(graph.vertices.items()):
        rate = input_rates.get(name, 0.0)
        cost = unit_costs.get(name, 1.0)
        load = rate * cost
        utilisation = load / vertex.parallelism
        recommended = vertex.parallelism
        if load:
            recommended = max(vertex.parallelism,
                              math.ceil(load / target_utilisation))
        advice.append(FissionAdvice(name, vertex.parallelism,
                                    utilisation, recommended))
    return advice


def bottlenecks(advice: list[FissionAdvice]) -> list[FissionAdvice]:
    """The vertices whose recommended parallelism exceeds the current."""
    return [a for a in advice
            if a.recommended_parallelism > a.current_parallelism]
