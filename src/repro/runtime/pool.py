"""WorkerPool: multi-process execution of key-partitioned work.

The in-plan fission machinery (:mod:`repro.exec.exchange`,
:class:`repro.cql.parallel.PartitionedQuery`) splits a query into
replicas but still runs them on one interpreter — useful semantics,
no extra cores.  This module is the other half of the survey's §4.2
story: ship each partition to a worker *process* so partitions execute
on separate CPUs, then merge at the sink.

Three layers:

* :class:`WorkerPool` — a thin ``map`` over N workers with three
  backends: ``"process"`` (``multiprocessing`` fork pool), ``"inline"``
  (same-process loop, the debuggability fallback: full tracebacks,
  coverage, pdb), and ``"auto"`` (process when the platform can fork and
  more than one worker is asked for, inline otherwise).
* :func:`run_partitioned_recorded` — fissioned *CQL* execution: route a
  recorded workload's arrivals by the plan's
  :class:`~repro.plan.parallel.PartitionScheme`, run one full
  :class:`~repro.cql.executor.ContinuousQuery` per partition in a
  worker, merge emissions and final state.  Everything shipped across
  the process boundary is plain data (logical plan, catalog, record
  values) — operators compile *inside* the worker, so nothing
  unpicklable (closures, compiled predicates) ever crosses.
* :func:`fission_job` / :func:`run_job_partitioned` — fissioned *job*
  execution through :mod:`repro.runtime.job`'s existing JobVertex /
  subtask machinery: each partition gets a complete copy of the
  JobGraph whose sources keep only the records whose key hashes to that
  partition, runs under its own :class:`~repro.runtime.job.JobRunner`,
  and the per-partition :class:`~repro.runtime.job.JobResult` sink
  outputs merge in timestamp order.

Key placement uses the same fixed
:func:`~repro.runtime.broker.default_hash` as the broker, the Exchange
operator and the partitioners, so every layer of the stack agrees on
which worker owns which key.

Caveat the caller owns for jobs: JobGraph operators are opaque, so
job-level fission cannot *prove* key-locality the way the CQL planner
does — splitting a job whose operators mix state across keys changes
its output, exactly like keying Flink state wrongly would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import process_time
from typing import Any, Callable, Sequence

from repro.core.errors import PlanError
from repro.core.records import Record
from repro.core.relation import Bag
from repro.core.time import Timestamp
from repro.runtime.broker import default_hash

__all__ = ["WorkerPool", "PartitionedRunResult", "partition_batches",
           "run_partitioned_recorded", "fission_job", "run_job_partitioned"]


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """N workers executing independent partition tasks.

    ``backend="process"`` forks worker processes (operator state lives
    and dies in the worker; only pickled inputs/results cross).
    ``backend="inline"`` runs tasks sequentially in-process — bitwise
    the same results, one core, full debuggability.  ``"auto"`` picks
    ``process`` when the platform supports fork and ``workers > 1``.
    """

    def __init__(self, workers: int, backend: str = "auto") -> None:
        if workers < 1:
            raise PlanError(f"need at least one worker, got {workers}")
        if backend not in ("auto", "process", "inline"):
            raise PlanError(f"unknown pool backend {backend!r}")
        if backend == "auto":
            backend = "process" if workers > 1 and _fork_available() \
                else "inline"
        if backend == "process" and not _fork_available():
            raise PlanError("process backend needs fork(); use inline")
        self.workers = workers
        self.backend = backend
        self._pool = None

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) \
            -> list[Any]:
        """Run ``fn`` over ``tasks``, one task per partition, in order."""
        if self.backend == "inline" or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            # Size by self.workers, NOT min(workers, len(tasks)): the
            # pool is cached across map() calls, so sizing it to the
            # first call's task count silently capped a later, larger
            # task list's parallelism for the lifetime of the pool.
            self._pool = context.Pool(self.workers)
        return self._pool.map(fn, tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Fissioned CQL execution
# ---------------------------------------------------------------------------


@dataclass
class PartitionedRunResult:
    """Merged output of a partitioned recorded run."""

    emissions: list          # merged Emission list, timestamp order
    state: Bag               # final maintained relation (union of workers)
    backend: str
    parallelism: int
    #: records routed to each partition (the load-balance evidence)
    partition_loads: list[int] = field(default_factory=list)
    #: CPU seconds spent inside each partition's worker (process time,
    #: so concurrent workers sharing cores don't inflate each other);
    #: the max is the run's critical path — what wall time converges to
    #: once every partition has its own core
    partition_seconds: list[float] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        return max(self.partition_seconds, default=0.0)


def partition_batches(scheme, catalog, batches, parallelism: int) \
        -> list[list[tuple[Timestamp, dict[str, list[Record]]]]]:
    """Split per-instant arrival batches into per-partition workloads.

    Every partition sees every instant (empty where it received
    nothing), so replica agendas fire window work at identical times.
    """
    per_partition: list[list[tuple[Timestamp, dict[str, list[Record]]]]] = \
        [[] for _ in range(parallelism)]
    for timestamp, arrivals in batches:
        routed: list[dict[str, list[Record]]] = \
            [{} for _ in range(parallelism)]
        for name, rows in arrivals.items():
            base_schema = catalog.stream(name).schema
            for row in rows:
                record = (row if isinstance(row, Record)
                          else Record.from_mapping(base_schema, row))
                key = scheme.key_for(name, record.values)
                index = default_hash(key) % parallelism
                routed[index].setdefault(name, []).append(record)
        for index in range(parallelism):
            per_partition[index].append((timestamp, routed[index]))
    return per_partition


def _run_cql_partition(payload: tuple) -> tuple[list, list, Bag, int]:
    """Worker entry point: compile and run one partition's query.

    Module-level and fed only picklable data — the compiled operator
    tree (closures, predicates, kernel wiring) is built and torn down
    entirely inside the worker.
    """
    plan, catalog, batches, finish = payload
    from repro.cql.executor import ContinuousQuery

    started = process_time()
    query = ContinuousQuery(plan, catalog)
    emissions = list(query.start())
    records = 0
    for timestamp, arrivals in batches:
        records += sum(len(rows) for rows in arrivals.values())
        emissions.extend(query.push_batch(timestamp, arrivals))
    if finish:
        emissions.extend(query.finish())
    return emissions, records, query.current(), process_time() - started


def run_partitioned_recorded(plan, catalog, batches, parallelism: int,
                             backend: str = "auto",
                             finish: bool = True) -> PartitionedRunResult:
    """Run a recorded workload fissioned across a worker pool.

    ``batches`` is a list of ``(timestamp, {stream: [row, ...]})`` in
    timestamp order — the same shape ``push_batch`` takes.  Requires a
    partitionable plan (:func:`repro.plan.parallel.partition_scheme`).
    """
    from repro.plan.parallel import partition_scheme

    scheme = partition_scheme(plan)
    if scheme is None:
        raise PlanError("plan is not key-partitionable; cannot pool it")
    workloads = partition_batches(scheme, catalog, batches, parallelism)
    with WorkerPool(parallelism, backend=backend) as pool:
        outcomes = pool.map(
            _run_cql_partition,
            [(plan, catalog, load, finish) for load in workloads])
        effective = pool.backend
    merged: list = []
    state = Bag()
    loads = []
    seconds = []
    for emissions, records, partial, elapsed in outcomes:
        merged.extend(emissions)
        loads.append(records)
        seconds.append(elapsed)
        for record, mult in partial.items():
            state.add(record, mult)
    merged.sort(key=lambda e: e.timestamp)
    return PartitionedRunResult(emissions=merged, state=state,
                                backend=effective, parallelism=parallelism,
                                partition_loads=loads,
                                partition_seconds=seconds)


# ---------------------------------------------------------------------------
# Fissioned job execution (repro.runtime.job)
# ---------------------------------------------------------------------------


def fission_job(graph, parallelism: int) -> list:
    """Split a JobGraph into ``parallelism`` single-partition jobs.

    Partition p's copy shares every vertex, edge and sink of the
    original but keeps only the source records whose key (or value,
    for keyless records) hashes to p.  The caller asserts key-locality
    of the operators — the graph's user code is opaque to us.
    """
    from repro.runtime.dag import JobGraph

    jobs = []
    for index in range(parallelism):
        job = JobGraph(name=f"{graph.name}!{index}")
        for name, source in graph.sources.items():
            job.add_source(
                name,
                [[record for record in subtask_records
                  if default_hash(record[1] if record[1] is not None
                                  else record[0]) % parallelism == index]
                 for subtask_records in source.records],
                watermark_lag=source.watermark_lag)
        for name, vertex in graph.vertices.items():
            job.add_operator(name, vertex.factory,
                             parallelism=vertex.parallelism)
        for edge in graph.edges:
            job.connect(edge.upstream, edge.downstream, edge.partitioner)
        for name in graph.sinks:
            job.mark_sink(name)
        jobs.append(job)
    return jobs


def _run_job_partition(payload: tuple):
    """Worker entry point: run one partition's sub-job to completion."""
    graph, runner_kwargs = payload
    from repro.runtime.job import JobRunner

    return JobRunner(graph, **runner_kwargs).run()


def run_job_partitioned(graph, parallelism: int, backend: str = "auto",
                        **runner_kwargs: Any):
    """Run a JobGraph fissioned by key across a worker pool.

    Returns a merged :class:`~repro.runtime.job.JobResult`: sink outputs
    re-sorted into (timestamp, repr) order — the same order a
    single-copy run produces — and counters summed.
    """
    from repro.runtime.job import JobResult

    jobs = fission_job(graph, parallelism)
    with WorkerPool(parallelism, backend=backend) as pool:
        results = pool.map(_run_job_partition,
                           [(job, dict(runner_kwargs)) for job in jobs])
    merged = JobResult()
    for result in results:
        for sink, elements in result.sink_outputs.items():
            merged.sink_outputs[sink].extend(elements)
        merged.messages_processed += result.messages_processed
        merged.recoveries += result.recoveries
    for sink in list(merged.sink_outputs):
        merged.sink_outputs[sink].sort(
            key=lambda e: (e.timestamp, repr(e.value)))
    return merged
