"""Live rescale: checkpoint-driven state migration across widths.

The survey's elasticity story (§4.2, ROADMAP item 4): a fissioned query
must be able to change its parallelism *without stopping* — no replay
from the beginning, no output divergence, a stall bounded by the state
volume actually moved.  :func:`rescale` does exactly that for a running
:class:`~repro.cql.parallel.PartitionedQuery`:

1. **Barrier-by-instant checkpoint.**  At a quiescent instant boundary
   (between ``push_batch`` calls — the same barrier the chaos layer
   checkpoints at) every replica is snapshotted via the existing
   ``snapshot()/restore()`` protocol.  Nothing mid-instant may be in
   flight: staged arrivals or un-processed relation updates abort the
   migration rather than silently drop records.

2. **State re-keying.**  Each operator's checkpointed state is split by
   the *target* width using the planner's key annotations
   (:func:`repro.plan.parallel.key_annotations`) and the shared
   :func:`~repro.runtime.broker.default_hash` placement — the same hash
   every routing layer uses, so a record's post-rescale owner is exactly
   the replica future arrivals with its key will be routed to.  A key's
   state moves *wholesale* (window buffers, join index buckets, group
   accumulators), so per-key processing order — and therefore every
   future emission — is identical to a never-rescaled run at the target
   width.  Broadcast state (stream-free join sides, base relations) is
   replicated to every target, as the scheme requires.

3. **Driver reconstruction.**  A replica's maintained relation state
   cannot always be split record-by-record — the spine above the
   partition boundary may project the routing key away.  Instead each
   target's driver state is *recomputed* from its re-keyed boundary
   state (group current-rows, join index products) pushed functionally
   through the stateless spine, and a conservation check pins the union
   of target states to the union of source states before anything is
   swapped in.  The change-log is re-seeded so ``as_relation()`` still
   reports the exact pre-rescale history.

The migration never mutates the query until every payload has been
built and verified; a failed rescale leaves the query running at its
old width.
"""

from __future__ import annotations

import time
from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.errors import StateError
from repro.core.relation import Bag
from repro.core.time import Timestamp
from repro.plan.ir import (
    Aggregate,
    Distinct,
    Join,
    LogicalOp,
    SetOp,
    StreamScan,
    WindowAggregate,
    scans_of,
    walk,
)
from repro.plan.parallel import (
    BROADCAST,
    key_annotations,
    partition_boundary,
)
from repro.runtime.broker import default_hash

__all__ = ["RescaleError", "RescaleReport", "rescale"]

#: Distinct from BROADCAST (which is None): an operator the key analysis
#: never reached, i.e. no recoverable routing key for its state.
_MISSING = object()


class RescaleError(StateError):
    """A running query's state could not be migrated to the target width."""


@dataclass(frozen=True)
class RescaleReport:
    """What one live rescale did — the bench's stall/volume evidence."""

    parallelism_from: int
    parallelism_to: int
    #: The migration instant: the last instant the old replicas applied a
    #: net change at (None when nothing had been processed yet).
    instant: Timestamp | None
    #: State entries re-keyed across partitions (window tuples, join
    #: index rows, aggregate groups, distinct/set-op records).
    migrated_entries: int
    #: Wall-clock stall: how long the query was frozen mid-migration.
    seconds: float


def rescale(query: Any, parallelism: int) -> RescaleReport:
    """Migrate a running :class:`PartitionedQuery` to a new width, in place.

    The query object keeps its identity (engine handles, scratch
    registrations and difftest drivers hold references to it); only its
    replica set is swapped.  Returns a :class:`RescaleReport`; raises
    :class:`RescaleError` — leaving the query untouched — when the state
    cannot be migrated.
    """
    from repro.cql import executor as cqlexec  # runtime<->cql import cycle

    if parallelism < 1:
        raise RescaleError(f"parallelism must be >= 1, got {parallelism}")
    started_at = time.perf_counter()
    if parallelism == query.parallelism:
        return RescaleReport(query.parallelism, parallelism, None, 0,
                             time.perf_counter() - started_at)

    annotations = key_annotations(query.plan)
    boundary = partition_boundary(query.plan)
    if annotations is None or boundary is None:
        raise RescaleError("plan is not key-partitionable; nothing to rescale")

    snaps = [replica.snapshot() for replica in query._replicas]
    template = cqlexec.ContinuousQuery(
        query.plan, query.catalog,
        kernel=query._replicas[0]._kernel is not None)
    replicas = [template] + [
        cqlexec.ContinuousQuery(query.plan, query.catalog,
                                kernel=template._kernel is not None)
        for _ in range(parallelism - 1)]

    migration = _Migration(query, annotations, boundary, parallelism,
                           template, cqlexec)
    migration.check_quiescent(snaps)
    per_target_ops = migration.rekey_operators(snaps)
    payloads = migration.driver_payloads(snaps, per_target_ops)
    for replica, ops, driver in zip(replicas, per_target_ops, payloads):
        driver["operators"] = ops
        replica.restore(driver)
    migration.carry_accounting(query._replicas, replicas)

    instant = payloads[0]["last_instant"]
    query._replicas = replicas
    query.parallelism = parallelism
    query._stream_sources = replicas[0]._stream_sources
    query._relation_sources = replicas[0]._relation_sources
    return RescaleReport(len(snaps), parallelism, instant, migration.moved,
                         time.perf_counter() - started_at)


class _Migration:
    """One rescale's worth of payload surgery, old snapshots → new width."""

    def __init__(self, query: Any, annotations: Mapping[int, Any],
                 boundary: tuple[LogicalOp, tuple[str, ...], str],
                 parallelism: int, template: Any, cqlexec: Any) -> None:
        self.query = query
        self.scheme = query.scheme
        self.ann = annotations
        self.boundary = boundary
        self.n = parallelism
        self.template = template
        self.ex = cqlexec
        self.moved = 0
        logical_by_id = {id(node): node for node in walk(query.plan)}
        self._nodes_of_phys: dict[int, list[LogicalOp]] = defaultdict(list)
        for node_id, op in template._phys_by_logical.items():
            self._nodes_of_phys[id(op)].append(logical_by_id[node_id])

    # -- shared helpers ------------------------------------------------------

    def _route(self, components: tuple) -> int:
        # Single-column keys hash the bare value, matching
        # PartitionScheme.key_for / PartitionedQuery._route placement.
        key = components[0] if len(components) == 1 else components
        return default_hash(key) % self.n

    def _blank(self) -> list[dict[str, Any]]:
        return [{} for _ in range(self.n)]

    def _node_for(self, op: Any, kinds: tuple[type, ...]) -> LogicalOp:
        for node in self._nodes_of_phys.get(id(op), ()):
            if isinstance(node, kinds):
                return node
        raise RescaleError(
            f"no logical node of kind {kinds} for {type(op).__name__}")

    def _spread_counters(self, news: list[dict[str, Any]],
                         olds: list[Mapping[str, Any]]) -> None:
        # Lifetime accounting is global, not per-key: keep the totals on
        # target 0 so engine-level work/eviction counters stay monotone.
        for attr in ("emitted", "received"):
            news[0][attr] = sum(old[attr] for old in olds)
            for payload in news[1:]:
                payload[attr] = 0

    @staticmethod
    def _nonempty(mapping: Mapping) -> dict:
        # defaultdict probes leave empty buckets behind; they are not
        # state, and they differ per replica.
        return {key: value for key, value in mapping.items() if value}

    # -- quiescence ----------------------------------------------------------

    def check_quiescent(self, snaps: list[Mapping[str, Any]]) -> None:
        ops = self.template.operators()
        for snap in snaps:
            if snap["undelivered"]:
                raise RescaleError(
                    "undelivered emissions pending; drain before rescaling")
            for (name, op), payload in zip(ops, snap["operators"]):
                if isinstance(op, self.ex.StreamSourceOp):
                    if payload["_staged"] or payload["_arrived"]:
                        raise RescaleError(
                            f"{name} has staged arrivals; rescale only at "
                            f"an instant boundary")
                elif isinstance(op, self.ex.RelationSourceOp):
                    if payload["_staged"]:
                        raise RescaleError(
                            f"{name} has staged relation updates; rescale "
                            f"only at an instant boundary")

    # -- operator state ------------------------------------------------------

    def rekey_operators(self, snaps: list[Mapping[str, Any]]) \
            -> list[list[dict[str, Any]]]:
        """Old per-replica operator payloads → per-*target* payload lists."""
        per_op: list[list[dict[str, Any]]] = []
        operators = self.template.operators()
        for index, (name, op) in enumerate(operators):
            olds = [snap["operators"][index] for snap in snaps]
            per_op.append(self._rekey_op(name, op, olds))
        return [[per_op[i][k] for i in range(len(per_op))]
                for k in range(self.n)]

    def _rekey_op(self, name: str, op: Any,
                  olds: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        ex = self.ex
        if isinstance(op, ex.StreamSourceOp):
            return self._rekey_stream_source(op, olds)
        if isinstance(op, ex.RelationSourceOp):
            return self._broadcast(op, olds, verify=("_initial", "_staged"))
        if isinstance(op, (ex.FilterOp, ex.ProjectOp)):
            news = self._blank()
            self._spread_counters(news, olds)
            return news
        if isinstance(op, ex.JoinOp):  # covers AppendOnlyJoinOp
            node = self._node_for(op, (Join,))
            if self.ann.get(id(node), _MISSING) is BROADCAST:
                return self._broadcast(op, olds)
            return self._rekey_join(op, node, olds)
        if isinstance(op, ex.AggregateOp):
            node = self._node_for(op, (Aggregate, WindowAggregate))
            keys = self.ann.get(id(node), _MISSING)
            if keys is BROADCAST:
                return self._broadcast(op, olds)
            if keys is _MISSING:
                raise RescaleError(f"{name}: no recoverable routing key")
            return self._rekey_aggregate(node, keys, olds)
        if isinstance(op, ex.DistinctOp):  # covers AppendOnlyDistinctOp
            node = self._node_for(op, (Distinct,))
            return self._rekey_records(
                name, op, node, olds,
                attrs=("_seen",) if isinstance(op, ex.AppendOnlyDistinctOp)
                else ("_counts",))
        if isinstance(op, ex.SetOpOp):
            node = self._node_for(op, (SetOp,))
            for child in node.children:
                if not any(isinstance(s, StreamScan)
                           for s in scans_of(child)):
                    raise RescaleError(
                        f"{name}: a stream-free set-op side is replicated "
                        f"per partition and cannot be re-keyed")
            return self._rekey_records(name, op, node, olds,
                                       attrs=("_left", "_right", "_out"))
        if op._STATE_ATTRS:
            raise RescaleError(
                f"{name}: no migration rule for {type(op).__name__}")
        news = self._blank()
        self._spread_counters(news, olds)
        return news

    def _broadcast(self, op: Any, olds: list[Mapping[str, Any]],
                   verify: tuple[str, ...] = ()) -> list[dict[str, Any]]:
        """Replicated state: every target gets old replica 0's copy.

        ``restore`` deep-copies payloads, so sharing the source object
        across targets is safe.  Only cheaply value-comparable attrs are
        verified identical across the old replicas.
        """
        for attr in verify:
            reference = olds[0][attr]
            for old in olds[1:]:
                left, right = old[attr], reference
                if isinstance(left, dict) and isinstance(right, dict):
                    left, right = self._nonempty(left), \
                        self._nonempty(right)
                if left != right:
                    raise RescaleError(
                        f"broadcast state diverged across replicas "
                        f"({attr}); cannot migrate")
        news = self._blank()
        for payload in news:
            for attr in op._STATE_ATTRS:
                payload[attr] = olds[0][attr]
        self._spread_counters(news, olds)
        return news

    def _rekey_stream_source(self, op: Any, olds: list[Mapping[str, Any]]) \
            -> list[dict[str, Any]]:
        indices = self.scheme.stream_keys[op.scan.name]

        def owner(record):
            return self._route(tuple(record.values[i] for i in indices))

        news = self._blank()
        for payload in news:
            payload.update(_staged=[], _expiries=defaultdict(list),
                           _fifo=deque(), _per_key=defaultdict(deque),
                           _pending=[], _visible=[], _arrived=False,
                           evicted=0)
        for old in olds:
            if old["_fifo"]:
                # Unreachable behind a partitionability proof: [Rows n]
                # windows are never keyed.
                raise RescaleError(
                    "[Rows n] windows depend on global arrival order and "
                    "do not rescale")
            for expiry, records in old["_expiries"].items():
                for record in records:
                    news[owner(record)]["_expiries"][expiry].append(record)
                    self.moved += 1
            for window_key, queue in old["_per_key"].items():
                if not queue:
                    continue
                # The window's partition columns contain the routing key,
                # so the whole per-key FIFO shares one owner.
                news[owner(queue[0])]["_per_key"][window_key].extend(queue)
                self.moved += len(queue)
            for entry in old["_pending"]:
                news[owner(entry[0])]["_pending"].append(entry)
                self.moved += 1
            for entry in old["_visible"]:
                news[owner(entry[0])]["_visible"].append(entry)
                self.moved += 1
        news[0]["evicted"] = sum(old["evicted"] for old in olds)
        self._spread_counters(news, olds)
        return news

    def _rekey_join(self, op: Any, node: Join,
                    olds: list[Mapping[str, Any]]) -> list[dict[str, Any]]:
        append_only = isinstance(op, self.ex.AppendOnlyJoinOp)
        news = self._blank()
        for payload in news:
            payload["_left_state"] = defaultdict(Counter)
            payload["_right_state"] = defaultdict(Counter)
            if append_only:
                payload["_left_index"] = defaultdict(list)
                payload["_right_index"] = defaultdict(list)
        sides = (("_left_state", "_left_index", node.left),
                 ("_right_state", "_right_index", node.right))
        for state_attr, index_attr, child in sides:
            keys = self.ann.get(id(child), _MISSING)
            if keys is _MISSING:
                raise RescaleError(
                    f"join side {state_attr} has no recoverable routing key")
            if keys is BROADCAST:
                attrs = (state_attr, index_attr) if append_only \
                    else (state_attr,)
                for attr in attrs:
                    reference = self._nonempty(olds[0][attr])
                    for old in olds[1:]:
                        if self._nonempty(old[attr]) != reference:
                            raise RescaleError(
                                f"broadcast join state diverged across "
                                f"replicas ({attr}); cannot migrate")
                    for payload in news:
                        payload[attr] = olds[0][attr]
                continue
            positions = [child.schema.index_of(column) for column in keys]

            def owner(record, positions=positions):
                return self._route(
                    tuple(record.values[p] for p in positions))

            for old in olds:
                for bucket, counter in old[state_attr].items():
                    for record, mult in counter.items():
                        news[owner(record)][state_attr][bucket][record] \
                            += mult
                        self.moved += 1
                if append_only:
                    for bucket, entries in old[index_attr].items():
                        for record, mult in entries:
                            news[owner(record)][index_attr][bucket] \
                                .append((record, mult))
                            self.moved += 1
        self._spread_counters(news, olds)
        return news

    def _rekey_aggregate(self, node: Aggregate | WindowAggregate,
                         keys: tuple[str, ...],
                         olds: list[Mapping[str, Any]]) \
            -> list[dict[str, Any]]:
        positions = [node.group_names.index(key) for key in keys]
        news = self._blank()
        for payload in news:
            payload.update(_groups={}, _current_rows={}, _child_active=False)
        for old in olds:
            for group, state in old["_groups"].items():
                target = news[self._route(
                    tuple(group[p] for p in positions))]
                # The whole accumulator moves: a group lives wholly inside
                # one partition, before and after.
                target["_groups"][group] = state
                row = old["_current_rows"].get(group)
                if row is not None:
                    target["_current_rows"][group] = row
                self.moved += 1
        self._spread_counters(news, olds)
        return news

    def _rekey_records(self, name: str, op: Any, node: LogicalOp,
                       olds: list[Mapping[str, Any]],
                       attrs: tuple[str, ...]) -> list[dict[str, Any]]:
        """Re-key per-record state (distinct counters, set-op sides)."""
        keys = self.ann.get(id(node), _MISSING)
        if keys is BROADCAST:
            return self._broadcast(op, olds)
        if keys is _MISSING:
            raise RescaleError(f"{name}: no recoverable routing key")
        positions = [node.schema.index_of(column) for column in keys]
        news = self._blank()
        for payload in news:
            for attr in attrs:
                payload[attr] = (set() if attr == "_seen" else Counter())
        for old in olds:
            for attr in attrs:
                if attr == "_seen":
                    for record in old[attr]:
                        target = self._route(
                            tuple(record.values[p] for p in positions))
                        news[target][attr].add(record)
                        self.moved += 1
                else:
                    for record, count in old[attr].items():
                        target = self._route(
                            tuple(record.values[p] for p in positions))
                        news[target][attr][record] += count
                        self.moved += 1
        self._spread_counters(news, olds)
        return news

    # -- driver state --------------------------------------------------------

    def driver_payloads(self, snaps: list[Mapping[str, Any]],
                        per_target_ops: list[list[dict[str, Any]]]) \
            -> list[dict[str, Any]]:
        """The non-operator half of each target's restore payload."""
        boundary_node = self.boundary[0]
        boundary_phys = self.template._phys_by_logical[id(boundary_node)]
        operators = self.template.operators()
        boundary_index = next(
            index for index, (_, op) in enumerate(operators)
            if op is boundary_phys)
        chain: list[Any] = []
        cursor = self.template._root
        while cursor is not boundary_phys:
            chain.append(cursor)
            if not cursor.children:
                raise RescaleError("spine walk did not reach the boundary")
            cursor = cursor.children[0]

        states: list[Bag] = []
        for target in range(self.n):
            bag = self._boundary_output(
                boundary_phys, per_target_ops[target][boundary_index])
            for op in reversed(chain):
                bag = self._apply_spine(op, bag)
            states.append(Bag.from_counts(
                {record: mult for record, mult in bag.items() if mult}))

        # Conservation: the union of the recomputed target states must be
        # exactly the union of the source states, or the migration is
        # wrong and must not be swapped in.
        source: Counter = Counter()
        for snap in snaps:
            for record, mult in snap["state"].items():
                source[record] += mult
        migrated: Counter = Counter()
        for state in states:
            for record, mult in state.items():
                migrated[record] += mult
        if source != migrated:
            raise RescaleError(
                "state conservation check failed: recomputed target states "
                "do not union to the checkpointed global state")

        instant = max((snap["last_instant"] for snap in snaps
                       if snap["last_instant"] is not None), default=None)
        merged_log = self.query._merged_log()
        merged_emissions = sorted(
            (emission for snap in snaps for emission in snap["emissions"]),
            key=lambda emission: emission.timestamp)
        scheduled: set[Timestamp] = set()
        for snap in snaps:
            scheduled.update(snap["agenda"]["scheduled"])

        payloads = []
        for target, state in enumerate(states):
            if instant is None:
                log: list[tuple[Timestamp, Bag]] = []
            elif target == 0:
                # Target 0 carries the merged pre-rescale history; every
                # target seeds its own share of the state at the migration
                # instant, so the per-instant union — what as_relation()
                # reports — is unchanged across the rescale.
                log = [(t, bag) for t, bag in merged_log if t < instant]
                log.append((instant, state))
            else:
                log = [(instant, state)]
            payloads.append({
                "agenda": {"heap": sorted(scheduled),
                           "scheduled": set(scheduled)},
                "state": state,
                "log": log,
                "emissions": list(merged_emissions) if target == 0 else [],
                "undelivered": [],
                "last_instant": instant,
                "deltas_processed": sum(snap["deltas_processed"]
                                        for snap in snaps)
                if target == 0 else 0,
            })
        return payloads

    def _boundary_output(self, op: Any,
                         payload: Mapping[str, Any]) -> Counter:
        """The boundary operator's current output, read from its payload."""
        ex = self.ex
        if isinstance(op, ex.AggregateOp):
            return Counter(payload["_current_rows"].values())
        if isinstance(op, ex.AppendOnlyJoinOp):
            return self._join_output(op, payload["_left_index"],
                                     payload["_right_index"],
                                     lambda entries: entries)
        if isinstance(op, ex.JoinOp):
            return self._join_output(op, payload["_left_state"],
                                     payload["_right_state"],
                                     lambda counter: counter.items())
        raise RescaleError(
            f"cannot read current output from {type(op).__name__}")

    def _join_output(self, op: Any, left: Mapping, right: Mapping,
                     entries_of: Any) -> Counter:
        out: Counter = Counter()
        for key, left_bucket in left.items():
            right_bucket = right.get(key)
            if not right_bucket:
                continue
            for left_record, left_mult in entries_of(left_bucket):
                for right_record, right_mult in entries_of(right_bucket):
                    joined = left_record.concat(right_record)
                    if op._residual is None or op._residual(joined):
                        out[joined] += left_mult * right_mult
        return out

    def _apply_spine(self, op: Any, bag: Counter) -> Counter:
        """One stateless spine operator, applied functionally to a bag."""
        ex = self.ex
        if isinstance(op, ex.FilterOp):
            return Counter({record: mult for record, mult in bag.items()
                            if op._predicate(record)})
        if isinstance(op, ex.ProjectOp):
            out: Counter = Counter()
            for record, mult in bag.items():
                out[op._mapper(record)] += mult
            return out
        if isinstance(op, ex.DistinctOp):  # covers AppendOnlyDistinctOp
            return Counter({record: 1 for record, mult in bag.items()
                            if mult > 0})
        raise RescaleError(
            f"cannot recompute driver state through {type(op).__name__}")

    # -- post-restore accounting --------------------------------------------

    def carry_accounting(self, old_replicas: list[Any],
                         new_replicas: list[Any]) -> None:
        """Keep lifetime arrival counts monotone across the swap.

        ``arrivals`` is deliberately outside the checkpoint protocol
        (lifetime accounting, not state), so it is carried over by hand —
        explain_analyze's source selectivities must not reset to zero
        mid-flight.
        """
        old_ops = [replica.operators() for replica in old_replicas]
        for index, (_, op) in enumerate(new_replicas[0].operators()):
            if isinstance(op, self.ex.StreamSourceOp):
                op.arrivals = sum(ops[index][1].arrivals for ops in old_ops)
