"""Setup shim: keeps `pip install -e .` working without the wheel package
(offline environments fall back to the legacy develop install)."""

from setuptools import setup

setup()
