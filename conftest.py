"""Repo-root pytest configuration.

Puts ``src/`` on the path so the suite runs straight from a checkout,
before any ``pip install -e .`` / ``python setup.py develop``, and resets
the global observability state around every test so metrics/traces never
leak between tests (or into timing-sensitive benchmarks).
"""

import pathlib
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


@pytest.fixture(autouse=True)
def _fresh_observability():
    """Every test starts with an empty registry and a no-op tracer."""
    import repro.obs as obs

    obs.reset()
    yield
    obs.reset()
