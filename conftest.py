"""Repo-root pytest configuration.

Puts ``src/`` on the path so the suite runs straight from a checkout,
before any ``pip install -e .`` / ``python setup.py develop``.
"""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
