"""F3 — Figure 3: the DSMS architecture (Stream / Store / Scratch / Throw).

Runs standing queries through the DSMS engine and observes the four
architectural components: tuples flow in from streams, working state sits
in the Scratch, expired tuples pass through the Throw, and answers land in
the Store.  The sweep varies window size: Scratch occupancy must grow with
the window while every expired tuple is accounted for by the Throw.
A second experiment shows load shedding engaging under queue pressure.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    assert_monotone,
    room_observations,
    OBSERVATION_SCHEMA,
)
from repro.dsms import DSMSEngine, RandomShedder


def run_dsms(window, rows):
    dsms = DSMSEngine()
    dsms.register_stream("Obs", OBSERVATION_SCHEMA)
    handle = dsms.register_query(
        "avg", f"SELECT room, AVG(temp) a FROM Obs [Range {window}] "
               f"GROUP BY room")
    for row, t in rows:
        dsms.ingest("Obs", row, t)
        dsms.run_until_idle()
    return dsms, handle


def test_fig3_scratch_grows_with_window_and_throw_accounts_expiry():
    rows = room_observations(150)
    horizon = rows[-1][1]
    table = ExperimentTable(
        "Figure 3: window size vs Scratch/Throw (150 events)",
        ["window", "peak_scratch", "thrown", "store_rows"])
    peaks = []
    for window in (50, 200, 800):
        dsms, handle = run_dsms(window, rows)
        dsms.advance_time(horizon + window + 1)
        peak = dsms.scratch.peak
        table.add_row(window, peak, dsms.throw.discarded,
                      len(handle.store_state()))
        peaks.append(peak)
        # Every ingested tuple eventually passes through the Throw.
        assert dsms.throw.discarded == len(rows)
        # And the Scratch is empty once everything expired.
        assert dsms.scratch.occupancy() == 0
    table.show()
    assert_monotone(peaks, increasing=True)


def test_fig3_store_serves_continuous_answers():
    rows = room_observations(60)
    dsms, handle = run_dsms(500, rows)
    history = handle.store_history()
    # The Store's history has one state per processed event (the query's
    # answer at every instant — the Figure 1 contract).
    assert len(history.change_points()) >= 1
    current = handle.store_state()
    assert all(r["a"] is not None for r in current)


def test_fig3_load_shedding_under_pressure():
    rows = room_observations(400)
    dsms = DSMSEngine()
    dsms.register_stream("Obs", OBSERVATION_SCHEMA)
    handle = dsms.register_query(
        "count", "SELECT COUNT(*) n FROM Obs [Range 100]",
        shedder=RandomShedder(threshold=0.5, seed=9), queue_capacity=8)
    # Ingest in bursts: pressure builds because we only drain every 16.
    for i, (row, t) in enumerate(rows):
        dsms.ingest("Obs", row, t)
        if i % 16 == 15:
            dsms.run_until_idle()
    dsms.run_until_idle()
    metrics = handle.metrics
    table = ExperimentTable(
        "Figure 3: load shedding under burst pressure",
        ["ingested", "shed", "queue_dropped", "processed"])
    table.add_row(metrics.ingested, metrics.shed, metrics.queue_dropped,
                  metrics.processed)
    table.show()
    assert metrics.shed > 0
    assert metrics.processed + metrics.shed + metrics.queue_dropped == \
        metrics.ingested


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_dsms_ingest(benchmark):
    rows = room_observations(150)

    def ingest_all():
        dsms, handle = run_dsms(200, rows)
        return handle.metrics.processed

    assert benchmark(ingest_all) == 150
