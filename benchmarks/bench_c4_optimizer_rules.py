"""C4 — Section 4.2: the optimisation catalog, rule by rule.

Hirzel et al.'s static optimisations measured on our stack: predicate
pushdown / equi-join extraction (operator reordering + redundancy
elimination) measured by deltas the executor actually processes, and
volcano join ordering measured by the streaming cost model.  Expected
shapes: every rewrite preserves results; the optimised plan processes a
fraction of the naive plan's deltas; volcano's chosen order costs no more
than the FROM-clause order.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    person_rows,
    room_observations,
    OBSERVATION_SCHEMA,
    PERSON_SCHEMA,
)
from repro.core import Schema, Stream
from repro.cql import CQLEngine, ContinuousQuery
from repro.sql import (
    DEFAULT_RULES,
    SourceStats,
    Statistics,
    estimate,
    optimize,
    plan_signature,
    volcano_optimize,
)

QUERY = ("SELECT O.id, P.name FROM Person P, RoomObservation O [Range 500] "
         "WHERE P.id = O.id AND O.temp > 25")


def build_engine():
    engine = CQLEngine()
    engine.register_stream("RoomObservation", OBSERVATION_SCHEMA)
    engine.register_relation("Person", PERSON_SCHEMA, rows=person_rows())
    return engine


def run_plan(engine, plan, rows):
    query = ContinuousQuery(plan, engine.catalog)
    query.run_recorded(
        {"RoomObservation": Stream.of_records(OBSERVATION_SCHEMA, rows)})
    return query


def test_c4_rule_ablation_on_executor_work():
    rows = room_observations(120)
    table = ExperimentTable(
        "C4: rewrite rules vs executor work (120 events)",
        ["plan", "signature", "operator_deltas"])
    engine = build_engine()
    naive_plan = engine.plan(QUERY, optimize=False)
    naive = run_plan(engine, naive_plan, rows)
    table.add_row("naive", plan_signature(naive_plan),
                  naive.operator_work)
    deltas = {"naive": naive.operator_work}
    for upto in range(1, len(DEFAULT_RULES) + 1):
        plan = optimize(naive_plan, rules=DEFAULT_RULES[:upto])
        query = run_plan(engine, plan, rows)
        label = DEFAULT_RULES[upto - 1].__name__
        table.add_row(f"+{label}", plan_signature(plan),
                      query.operator_work)
        deltas[label] = query.operator_work
        # Semantics preserved at every rule prefix.
        assert query.as_relation() == naive.as_relation()
    table.show()
    # The full rule set processes strictly fewer deltas than the naive
    # cross-product plan.
    assert deltas[DEFAULT_RULES[-1].__name__] < deltas["naive"]


def test_c4_volcano_join_ordering():
    engine = CQLEngine()
    engine.register_stream("Fast", Schema(["id", "v"]))
    engine.register_stream("Slow", Schema(["id", "w"]))
    engine.register_relation("Dim", Schema(["id", "label"]),
                             rows=[{"id": i, "label": f"L{i}"}
                                   for i in range(5)])
    stats = Statistics({
        "Fast": SourceStats(rate=1000.0, size=10000.0,
                            distinct={"id": 500}),
        "Slow": SourceStats(rate=2.0, size=20.0, distinct={"id": 500}),
        "Dim": SourceStats(rate=0.0, size=5.0, distinct={"id": 5}),
    })
    plan = engine.plan(
        "SELECT F.v FROM Fast F [Range 10], Slow S [Range 10], Dim D "
        "WHERE F.id = S.id AND S.id = D.id")
    optimized = volcano_optimize(plan, stats)
    naive_cost = estimate(plan, stats)
    optimized_cost = estimate(optimized, stats)
    table = ExperimentTable(
        "C4: volcano cost-based join ordering",
        ["plan", "work/tick", "state"])
    table.add_row("FROM order", naive_cost.work, naive_cost.state)
    table.add_row("volcano", optimized_cost.work, optimized_cost.state)
    table.show()
    assert optimized_cost.work <= naive_cost.work


@pytest.mark.benchmark(group="c4")
@pytest.mark.parametrize("optimized", [False, True],
                         ids=["naive", "optimized"])
def test_bench_c4_executor_work(benchmark, optimized):
    rows = room_observations(120)
    engine = build_engine()
    plan = engine.plan(QUERY, optimize=optimized)

    def run():
        return run_plan(engine, plan, rows).operator_work

    assert benchmark(run) > 0


def test_c4_operator_placement_and_fission():
    """The deployment-time half of the catalog: placement moves the chain
    cut onto the coldest link; fission scales the bottleneck operator."""
    from repro.bench import ExperimentTable as _Table
    from repro.runtime import (
        ComputeNode,
        JobGraph,
        MapOperator,
        Network,
        advise_fission,
        bottlenecks,
        place,
    )

    graph = JobGraph()
    graph.add_source("ingest", [[("x", None, 0)]])
    for name in ("parse", "enrich", "aggregate"):
        graph.add_operator(name, lambda: MapOperator(lambda v: v))
    graph.connect("ingest", "parse")
    graph.connect("parse", "enrich")
    graph.connect("enrich", "aggregate")

    network = Network([ComputeNode("edge", 3), ComputeNode("dc", 3)],
                      default_latency=10.0)
    rates = {("ingest", "parse"): 1000.0, ("parse", "enrich"): 900.0,
             ("enrich", "aggregate"): 10.0}  # enrich filters hard
    placement = place(graph, network, rates=rates,
                      pinned={"ingest": "edge"})
    table = _Table("C4: network-aware placement",
                   ["vertex", "host"])
    for vertex in sorted(placement.assignment):
        table.add_row(vertex, placement.assignment[vertex])
    table.show()
    # The cut lands on the cold enrich->aggregate edge: hot operators
    # stay with the source at the edge.
    assert placement.host_of("parse") == "edge"
    assert placement.host_of("enrich") == "edge"
    assert placement.cost == rates[("enrich", "aggregate")] * 10.0

    advice = advise_fission(
        graph, input_rates={"parse": 12.0, "enrich": 12.0,
                            "aggregate": 0.5},
        unit_costs={"parse": 0.05, "enrich": 0.4, "aggregate": 0.1})
    hot = bottlenecks(advice)
    assert [a.vertex for a in hot] == ["enrich"]
    assert hot[0].recommended_parallelism >= 6
