"""C9 — Section 4.1.2: the stream/table duality, quantified.

Sax et al.'s "two sides of the same coin": the round-trip laws hold
exactly, log compaction shrinks changelogs without changing the table,
and the same aggregation computed stream-side and table-side agrees —
the property Kafka Streams' KTable/KStream split rests on.
"""

import random

import pytest

from repro.bench import ExperimentTable, timed, transactions
from repro.core import Stream
from repro.dsl import (
    Table,
    changelog_of,
    compact,
    table_from_changelog,
    table_from_record_stream,
)


def build_account_table(n=600, accounts=40, seed=23):
    """Upserts + occasional deletes over account balances."""
    rng = random.Random(seed)
    table = Table()
    for t in range(n):
        account = f"acc{rng.randrange(accounts)}"
        if rng.random() < 0.1 and account in table:
            table.delete(account, t)
        else:
            table.upsert(account, rng.randrange(1000), t)
    return table


def test_c9_round_trip_and_compaction():
    table = build_account_table()
    log = changelog_of(table)
    rebuilt, rebuild_time = timed(lambda: table_from_changelog(log))
    assert rebuilt.snapshot() == table.snapshot()

    compacted = compact(log)
    assert table_from_changelog(compacted).snapshot() == table.snapshot()

    report = ExperimentTable(
        "C9: changelog round-trip and compaction",
        ["measure", "value"])
    report.add_row("changelog entries", len(log))
    report.add_row("compacted entries", len(compacted))
    report.add_row("compaction ratio",
                   len(compacted) / len(log))
    report.add_row("rebuild seconds", rebuild_time)
    report.show()
    # Shape: hot keys compact away most of the log.
    assert len(compacted) < len(log) / 2


def test_c9_stream_side_equals_table_side_aggregation():
    rows = transactions(400)
    stream = Stream.from_pairs([(row, t) for row, t in rows])
    # Stream side: fold per-user totals while converting to a table.
    stream_side = table_from_record_stream(
        stream, key_fn=lambda tx: tx["user"],
        fold=lambda acc, tx: acc + tx["amount"], initial=0)
    # Table side: keep latest per tx id, then group-aggregate by user.
    tx_table = Table()
    for row, t in rows:
        tx_table.upsert(row["id"], row, t)
    table_side = tx_table.group_aggregate(
        key_fn=lambda _, tx: tx["user"],
        add=lambda acc, tx: acc + tx["amount"],
        subtract=lambda acc, tx: acc - tx["amount"],
        initial=0)
    assert stream_side.snapshot() == table_side.snapshot()


def test_c9_filter_retraction_duality():
    """A table filter's changelog contains the deletes that make the
    filtered view maintainable downstream — the stateful subtlety."""
    table = Table()
    table.upsert("a", 100, 0)
    table.upsert("a", 1, 1)
    filtered = table.filter(lambda v: v >= 50)
    deletes = [c for c in filtered.changelog() if c.is_delete]
    assert len(deletes) == 1
    assert table_from_changelog(filtered.changelog()).snapshot() == {}


@pytest.mark.benchmark(group="c9")
def test_bench_c9_round_trip(benchmark):
    table = build_account_table()
    log = changelog_of(table)

    def round_trip():
        return len(table_from_changelog(log).snapshot())

    assert benchmark(round_trip) == len(table)
