"""Profiling overhead: enabled-vs-disabled throughput + attribution.

The observability tentpole's cost ledger.  The Figure 4 standing query
(per-room hot-reading counts over tumbling windows) runs through the
DSMS three times — obs fully off, metrics-only (``obs.enable()``), and
full profiling (``obs.enable(profile=True)``) — and a raw kernel push
loop runs off-vs-profiled.  Budgets:

* fully-enabled profiling stays within ``ENABLED_SLACK`` (15%) of the
  metrics-only path on the layer workloads — sampled timing (1 in 16
  flows) keeps it cheap.  A raw kernel push loop over near-trivial
  operators is also measured but *not* gated: with per-element work in
  the ~1µs range, the exact in/out counting is a visible fraction by
  construction — it is recorded as the honest worst case;
* the *disabled* path budget (<= 3%) is structural: profiling is an
  open-time decision, so a never-enabled plan runs the exact
  pre-profiling shape.  That is pinned by the zero-work guard in
  ``tests/obs/test_profile.py`` and by ``bench_kernel_unification``'s
  kernel-vs-legacy ratio gates, which run with profiling compiled in
  but disabled.
* per-operator attribution stays sane: busy shares sum to ~100%.

Timings, ratios and the attribution readout land in
``BENCH_profiling.json``.
"""

import gc

import pytest

import repro.obs as obs
from repro.obs import profile as _profile
from repro.bench import (
    ExperimentTable,
    OBSERVATION_SCHEMA,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.cql import CQLEngine
from repro.dsms import DSMSEngine
from repro.exec import Operator, Plan

ROWS = room_observations(600)
WINDOW = 100
HOT = 25
HORIZON = max(t for _, t in ROWS) + WINDOW

CQL_QUERY = (f"SELECT room, COUNT(*) FROM Obs "
             f"[Range {WINDOW} Slide {WINDOW}] "
             f"WHERE temp > {HOT} GROUP BY room")

#: full profiling (sampled timing + flight recorder) budget vs cold.
ENABLED_SLACK = 0.15
#: the disabled-path budget from the issue — recorded in the JSON; the
#: structural guarantee is pinned by the zero-work guard test.
DISABLED_BUDGET = 0.03
#: raw kernel push-loop length for the micro leg.
KERNEL_EVENTS = 5000
REPEATS = 7

MODES = [
    ("off", lambda: obs.reset()),
    ("metrics", lambda: obs.enable()),
    ("profile", lambda: obs.enable(profile=True)),
]


def run_dsms():
    engine = DSMSEngine(sharing=True)
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    handle = engine.register_query("hot", CQL_QUERY)
    for row, t in ROWS:
        engine.ingest("Obs", row, t)
    engine.run_until_idle()
    engine.advance_time(HORIZON)
    return handle


def run_cql_kernel():
    """The kernel-unification CQL leg: the standing query lowered onto
    the shared kernel — the path the issue's budget is written against."""
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    query = engine.register_query(CQL_QUERY, kernel=True)
    query.start()
    for row, t in ROWS:
        query.push("Obs", row, t)
    query.advance_to(HORIZON)
    return sorted(tuple(r.values) for r in query.current())


class _HotFilter(Operator):
    """The Figure 4 per-element work: keep hot readings."""

    fusible = True

    def process_element(self, value, input_index=0):
        if value["temp"] > HOT:
            self.emit((value["room"], 1))


class _KeyedCount(Operator):
    def __init__(self):
        self.counts = {}

    def process_element(self, value, input_index=0):
        room, n = value
        self.counts[room] = self.counts.get(room, 0) + n
        self.emit((room, self.counts[room]))


class _Sink(Operator):
    def __init__(self):
        self.seen = 0

    def process_element(self, value, input_index=0):
        self.seen += 1


KERNEL_ROWS = [row for row, _t in room_observations(KERNEL_EVENTS)]


def run_kernel():
    plan = Plan()
    plan.add_source("s")
    plan.add_operator("hot", _HotFilter(), ["s"])
    plan.add_operator("count", _KeyedCount(), ["hot"])
    sink = _Sink()
    plan.add_operator("sink", sink, ["count"])
    plan.open(layer="bench")
    for row in KERNEL_ROWS:
        plan.push("s", row)
    plan.close()
    return sink.seen


def best_times(runner):
    """Best-of-REPEATS per mode, interleaved so GC pressure and
    allocator drift hit every mode alike."""
    best = {name: float("inf") for name, _ in MODES}
    for _ in range(REPEATS):
        for name, arm in MODES:
            gc.collect()
            obs.reset()
            arm()
            best[name] = min(best[name], timed(runner)[1])
    obs.reset()
    return best


def measure():
    table = ExperimentTable(
        "Profiling overhead: off vs metrics vs full profiling "
        f"({len(ROWS)} DSMS events, {KERNEL_EVENTS} kernel events)",
        ["workload", "off_s", "metrics_s", "profile_s",
         "metrics_ratio", "profile_ratio", "profile_marginal", "gated"])
    for workload, runner, gated in [("dsms", run_dsms, True),
                                    ("cql_kernel", run_cql_kernel, True),
                                    ("kernel_raw", run_kernel, False)]:
        best = best_times(runner)
        table.add_row(workload, best["off"], best["metrics"],
                      best["profile"], best["metrics"] / best["off"],
                      best["profile"] / best["off"],
                      best["profile"] / best["metrics"], gated)
    return table


def attribution_readout():
    """Per-operator attribution sanity on the standing query."""
    obs.reset()
    obs.enable(profile=True, sample_every=1)
    handle = run_dsms()
    report = _profile.analyze(handle)
    obs.reset()
    shares = [entry["busy_share"] for entry in report["operators"]
              if entry["busy_share"] is not None]
    return {"operators": report["operators"],
            "total_busy_seconds": report["total_busy_seconds"],
            "shares_sum": sum(shares)}


def test_profiling_modes_agree_on_results():
    answers = []
    for _name, arm in MODES:
        obs.reset()
        arm()
        handle = run_dsms()
        answers.append(sorted(tuple(r.values)
                              for r in handle.query.current()))
        obs.reset()
    assert answers[0], "workload produced no rows"
    assert answers[0] == answers[1] == answers[2]


def test_bench_profiling_writes_json():
    table = measure()
    table.show()
    attribution = attribution_readout()
    payload = bench_result(
        "profiling", table,
        events=len(ROWS), kernel_events=KERNEL_EVENTS,
        enabled_slack=ENABLED_SLACK, disabled_budget=DISABLED_BUDGET,
        disabled_path_note=(
            "profiling is an open-time decision; the never-enabled path "
            "is pinned by tests/obs/test_profile.py zero-work guard and "
            "bench_kernel_unification ratio gates"),
        attribution=attribution,
        within_slack=all(r <= 1 + ENABLED_SLACK
                         for r, gated in zip(
                             table.column("profile_marginal"),
                             table.column("gated")) if gated))
    write_bench_json(payload)
    # The budget gates the *profiling layer's* cost on the layer
    # workloads: what turning profile=True adds on top of whatever obs
    # level was already on (the metrics layer predates this profiling
    # work and carries its own budgets elsewhere).  The raw push-loop
    # worst case and the full off->profile ratios land in the JSON for
    # the record, ungated.
    for workload, ratio, gated in zip(table.column("workload"),
                                      table.column("profile_marginal"),
                                      table.column("gated")):
        if not gated:
            continue
        assert ratio <= 1 + ENABLED_SLACK, (
            f"{workload}: full profiling {ratio:.2f}x the metrics-only "
            f"path exceeds {1 + ENABLED_SLACK:.2f}x budget")
    # attribution sanity: busy shares cover the plan (~100%)
    assert 0.98 <= attribution["shares_sum"] <= 1.02
    assert attribution["total_busy_seconds"] > 0


@pytest.mark.benchmark(group="profiling")
@pytest.mark.parametrize("mode", [name for name, _ in MODES])
def test_bench_profiling_mode(benchmark, mode):
    arm = dict(MODES)[mode]
    obs.reset()
    arm()
    assert benchmark(run_dsms)
    obs.reset()
