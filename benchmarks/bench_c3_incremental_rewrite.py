"""C3 — Section 3.2: monotonic rewriting enables incremental evaluation.

Barbarà's observation operationalised: on append-only streams a monotonic
SPJ query can be rewritten so each arrival touches only the delta (hash
probes), re-using all previous results.  The sweep grows the history and
compares per-arrival incremental work against from-scratch re-evaluation;
the static classifier is also exercised on the corresponding plans.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    assert_monotone,

    transactions,
)
from repro.core import (
    IncrementalSPJ,
    MonotonicityClass,
    Schema,
    classify_plan,
)
from repro.cql import Catalog, parse_query, plan_statement


def make_spj():
    return IncrementalSPJ(
        left_predicate=lambda tx: tx["amount"] > 100,
        right_predicate=lambda user: True,
        left_key=lambda tx: tx["user"],
        right_key=lambda user: user["user"],
        project_fn=lambda tx, user: (tx["id"], user["city"]))


def users(n=50):
    return [{"user": u, "city": f"city{u % 7}"} for u in range(n)]


def test_c3_incremental_equals_reevaluation():
    spj = make_spj()
    user_rows = users()
    for user in user_rows:
        spj.on_right(user)
    tx_rows = [row for row, _ in transactions(300)]
    for tx in tx_rows:
        spj.on_left(tx)
    assert spj.result == spj.one_shot(tx_rows, user_rows)


def test_c3_speedup_grows_with_history():
    """Deterministic work accounting: the incremental rewrite touches one
    tuple (plus its matches) per arrival; re-evaluation touches the whole
    history per arrival, so its total work is quadratic."""
    table = ExperimentTable(
        "C3: incremental rewrite vs re-evaluation (tuples touched)",
        ["history", "incremental_work", "reevaluate_work", "ratio"])
    ratios = []
    user_rows = users()
    for n in (100, 200, 400):
        tx_rows = [row for row, _ in transactions(n)]
        spj = make_spj()
        for user in user_rows:
            spj.on_right(user)
        matches = 0
        for tx in tx_rows:
            matches += len(spj.on_left(tx))
        # Incremental: each arrival is one probe + its produced matches.
        incremental_work = len(user_rows) + len(tx_rows) + matches
        # Re-evaluation per arrival scans the full prefix + the relation.
        reevaluate_work = sum(i + 1 + len(user_rows)
                              for i in range(len(tx_rows)))
        table.add_row(n, incremental_work, reevaluate_work,
                      reevaluate_work / incremental_work)
        ratios.append(reevaluate_work / incremental_work)
    table.show()
    assert ratios[-1] > 1
    assert_monotone(ratios, increasing=True)


def test_c3_static_classifier_identifies_rewrite_candidates():
    catalog = Catalog()
    catalog.register_stream("Tx", Schema(["id", "user", "amount"]))
    catalog.register_relation("Users", Schema(["user", "city"]))
    monotonic_plan = plan_statement(parse_query(
        "SELECT T.id, U.city FROM Tx T, Users U "
        "WHERE T.user = U.user AND T.amount > 100"), catalog)
    assert classify_plan(monotonic_plan) is MonotonicityClass.MONOTONIC
    blocked_plan = plan_statement(parse_query(
        "SELECT COUNT(*) n FROM Tx [Range 100]"), catalog)
    assert classify_plan(blocked_plan) is MonotonicityClass.NON_MONOTONIC


@pytest.mark.benchmark(group="c3")
def test_bench_c3_incremental_arrivals(benchmark):
    user_rows = users()
    tx_rows = [row for row, _ in transactions(500)]

    def run():
        spj = make_spj()
        for user in user_rows:
            spj.on_right(user)
        for tx in tx_rows:
            spj.on_left(tx)
        return len(spj.result)

    assert benchmark(run) > 0
