"""Live rescale: migration stall and the zero-divergence gate.

Elasticity (survey §4.2, ROADMAP item 4): a running fissioned query is
live-migrated 1→4→2 mid-stream — barrier checkpoint by instant, state
re-keyed by ``default_hash`` placement at the target width, resumed —
and must produce **byte-identical** output to a never-rescaled run.
Two gates back the claim:

* a grouped-aggregate workload rescaled mid-stream, comparing emitted
  stream and final relation against the serial control, with the stall
  (wall time the query is paused inside ``rescale()``) measured per
  migration;
* the difftest live-rescale leg over 200 seeded generator cases
  (``run_rescale_case``), which must come back clean.

Results land in ``BENCH_rescale.json``.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    OBSERVATION_SCHEMA,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.cql import CQLEngine
from repro.cql.parallel import PartitionedQuery

pytestmark = pytest.mark.rescale

ROWS = room_observations(600)
QUERY = ("SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 40] "
         "WHERE temp > 10 GROUP BY room")
#: Rescale 1→4 after a third of the instants, 4→2 after two thirds.
WIDTHS = (4, 2)
RESCALE_FUZZ_CASES = 200


def _batches():
    by_instant: dict[int, list] = {}
    for row, t in ROWS:
        by_instant.setdefault(t, []).append(row)
    return sorted(by_instant.items())


def _run(rescale: bool):
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    plan = engine.plan(QUERY)
    query = PartitionedQuery(plan, engine.catalog, parallelism=1)
    batches = _batches()
    cuts = {len(batches) // 3: WIDTHS[0],
            2 * len(batches) // 3: WIDTHS[1]}
    reports = []
    query.start()
    for position, (t, rows) in enumerate(batches):
        if rescale and position in cuts:
            reports.append(query.rescale(cuts[position]))
        query.push_batch(t, {"Obs": rows})
    query.finish()
    return query, reports


def _outputs(query):
    stream = query.emitted_stream()
    return (stream.timestamps(), stream.values(),
            sorted(query.current().items(), key=repr))


def test_bench_rescale_writes_json():
    control, _ = _run(rescale=False)
    expected = _outputs(control)

    (rescaled, reports), elapsed = timed(lambda: _run(rescale=True))
    assert len(reports) == len(WIDTHS), "both migrations must run"
    assert _outputs(rescaled) == expected, \
        "rescaled 1→4→2 run diverged from the never-rescaled control"
    assert rescaled.parallelism == WIDTHS[-1]

    table = ExperimentTable(
        f"Live rescale 1→{WIDTHS[0]}→{WIDTHS[1]} "
        f"({len(ROWS)} events, grouped aggregate)",
        ["migration", "migrated_entries", "stall_seconds"])
    for report in reports:
        table.add_row(f"{report.parallelism_from}→{report.parallelism_to}",
                      report.migrated_entries, round(report.seconds, 6))
    table.show()

    total_stall = sum(report.seconds for report in reports)
    # The stall bound the acceptance criterion asks for: migration must
    # be a pause, not a rerun — far cheaper than replaying the stream.
    assert total_stall < elapsed, \
        "migration stall exceeded the entire run time"

    from repro.difftest.runner import fuzz
    campaign = fuzz(seed=0, cases=0, core_cases=0, view_cases=0,
                    rescale_cases=RESCALE_FUZZ_CASES, shrink=False)
    assert campaign.clean, campaign.summary()

    write_bench_json(bench_result(
        "rescale",
        table=table,
        events=len(ROWS),
        widths=list(WIDTHS),
        stall_seconds=round(total_stall, 6),
        run_seconds=round(elapsed, 6),
        migrated_entries=sum(r.migrated_entries for r in reports),
        divergences=0,
        rescale_fuzz_cases=RESCALE_FUZZ_CASES,
        rescale_fuzz_clean=campaign.clean,
    ), ".")
