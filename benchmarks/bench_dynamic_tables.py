"""Dynamic tables — incremental refresh vs recompute-from-base.

A two-level view DAG (grouped SUM/COUNT -> HAVING-style filter) is kept
fresh over a 10k-row base table while skewed updates hammer a small hot
key set.  At every refresh instant the incremental path (CDC deltas
through the kernel delta operators) is pinned for exact parity against
:func:`repro.views.reference.recompute`, then the two are timed: the
claim is that delta maintenance beats full recompute by >=5x on skewed
updates, while the measured staleness never exceeds the configured
``target_lag`` — with the upper view's lag derived via ``DOWNSTREAM``
propagation from its consumer.  Results land in
``BENCH_dynamic_tables.json``.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    assert_dominates,
    bench_result,
    timed,
    write_bench_json,
)
from repro.core import Schema
from repro.views import DynamicTableService, recompute

N_BASE = 10_000
NUM_KEYS = 500
#: 90% of updates land on this many keys (5% of the key space).
HOT_KEYS = 25
ROUNDS = 60
UPDATES_PER_ROUND = 50
TARGET_LAG = 2
SPEEDUP_FLOOR = 5.0

TOTALS_SQL = ("CREATE DYNAMIC TABLE totals TARGET_LAG = DOWNSTREAM AS "
              "SELECT k, SUM(v) AS total, COUNT(*) AS n FROM orders "
              "GROUP BY k EMIT CHANGES")
HOT_SQL = (f"CREATE DYNAMIC TABLE hot TARGET_LAG = {TARGET_LAG} AS "
           "SELECT k FROM totals WHERE total > 100000 EMIT CHANGES")

pytestmark = pytest.mark.views


def build_service():
    service = DynamicTableService()
    service.create_table("orders", Schema(["k", "v"]))
    # Filler rows plus one designated mutable slot per key; slot values
    # are unique so update deletes always match exactly one row.
    filler = [{"k": i % NUM_KEYS, "v": i % 97} for i in range(N_BASE)]
    slots = {key: 100_000 + key for key in range(NUM_KEYS)}
    service.apply("orders", inserts=filler + [
        {"k": key, "v": value} for key, value in slots.items()], at=1)
    service.execute(TOTALS_SQL)
    service.execute(HOT_SQL)
    return service, slots


def update_rounds(slots):
    """A deterministic skewed update script: (deletes, inserts) pairs."""
    state = 1234567
    fresh = 1_000_000
    rounds = []
    for _ in range(ROUNDS):
        deletes, inserts = [], []
        for _ in range(UPDATES_PER_ROUND):
            state = (state * 1103515245 + 12345) % (1 << 31)
            if state % 10 < 9:
                key = state % HOT_KEYS
            else:
                key = state % NUM_KEYS
            deletes.append({"k": key, "v": slots[key]})
            fresh += 1
            slots[key] = fresh
            inserts.append({"k": key, "v": slots[key]})
        rounds.append((deletes, inserts))
    return rounds


def full_recompute(service):
    """Both views from scratch off the current base contents."""
    base = service.read("orders")
    totals = recompute(service.view("totals").plan, {"orders": base})
    hot = recompute(service.view("hot").plan,
                    {"orders": base, "totals": totals})
    return totals, hot


def bag_key(bag):
    return sorted(bag.items(), key=repr)


def drive():
    service, slots = build_service()
    assert service.effective_lags() == {"totals": TARGET_LAG,
                                        "hot": TARGET_LAG}
    incremental_s = 0.0
    full_s = 0.0
    refresh_instants = 0
    max_lag = 0
    parity = True
    for deletes, inserts in update_rounds(slots):
        service.apply("orders", inserts=inserts, deletes=deletes,
                      at=service.clock + 1)
        refreshed, seconds = timed(service.tick)
        incremental_s += seconds
        for name in ("totals", "hot"):
            lag = service.clock - service.view(name).version
            max_lag = max(max_lag, lag)
        if refreshed:
            refresh_instants += 1
            (totals, hot), seconds = timed(lambda: full_recompute(service))
            full_s += seconds
            parity = parity \
                and bag_key(service.read("totals")) == bag_key(totals) \
                and bag_key(service.read("hot")) == bag_key(hot)
    return {
        "incremental_s": incremental_s,
        "full_s": full_s,
        "speedup": full_s / incremental_s,
        "refresh_instants": refresh_instants,
        "max_lag": max_lag,
        "parity": parity,
    }


def test_bench_dynamic_tables_writes_json():
    stats = drive()
    table = ExperimentTable(
        f"Dynamic tables: incremental vs recompute ({N_BASE} base rows, "
        f"{ROUNDS}x{UPDATES_PER_ROUND} skewed updates)",
        ["maintenance", "total_s", "per_refresh_ms", "parity"])
    table.add_row("incremental", stats["incremental_s"],
                  1e3 * stats["incremental_s"] / stats["refresh_instants"],
                  stats["parity"])
    table.add_row("full-recompute", stats["full_s"],
                  1e3 * stats["full_s"] / stats["refresh_instants"],
                  stats["parity"])
    table.show()

    assert stats["parity"], "incremental refresh diverged from recompute"
    assert stats["refresh_instants"] > 0
    assert stats["max_lag"] <= TARGET_LAG, (
        f"measured lag {stats['max_lag']} exceeds target {TARGET_LAG}")
    payload = bench_result(
        "dynamic_tables", table,
        base_rows=N_BASE, keys=NUM_KEYS, hot_keys=HOT_KEYS,
        rounds=ROUNDS, updates_per_round=UPDATES_PER_ROUND,
        target_lag=TARGET_LAG, downstream_lag_resolved=TARGET_LAG,
        floor=SPEEDUP_FLOOR, **stats)
    write_bench_json(payload)
    assert_dominates([stats["incremental_s"]], [stats["full_s"]],
                     SPEEDUP_FLOOR)


def test_measured_lag_tracks_downstream_target():
    """The DOWNSTREAM view inherits its consumer's freshness obligation."""
    service, slots = build_service()
    lags = service.effective_lags()
    assert lags["totals"] == lags["hot"] == TARGET_LAG
    for deletes, inserts in update_rounds(slots)[:6]:
        service.apply("orders", inserts=inserts, deletes=deletes,
                      at=service.clock + 1)
        service.tick()
        assert service.clock - service.view("totals").version <= TARGET_LAG
