"""P1 — multi-query plan sharing: 8 overlapping queries, one kernel plan.

The DSMS tradition's shared-plan argument, measured: eight standing
queries over the same stream, all built on the same windowed + filtered
prefix, run once with per-query private plans and once compiled into a
communal :class:`repro.cql.shared.SharedGroup`
(``DSMSEngine(sharing=True)``).  Sharing must deliver at least 1.5x the
aggregate throughput (tuple-deliveries per second across all queries) and
strictly less operator state, because the window buffer — the expensive
stateful prefix — is paid once instead of eight times.  Results and
per-query state sizes land in ``BENCH_plan_sharing.json``.
"""

import gc

import pytest

from repro.bench import (
    ExperimentTable,
    OBSERVATION_SCHEMA,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.dsms import DSMSEngine

ROWS = room_observations(200)
WINDOW = 100
HOT = 15
HORIZON = max(t for _, t in ROWS) + WINDOW

#: Eight standing queries sharing the window(filter(scan)) prefix; the
#: tails (projections, grouping, distinct) differ per query.
PREFIX = f"FROM Obs [Range {WINDOW}] WHERE temp > {HOT}"
QUERIES = [
    f"SELECT COUNT(*) AS n {PREFIX}",
    f"SELECT DISTINCT room {PREFIX}",
    f"SELECT room, COUNT(*) AS n {PREFIX} GROUP BY room",
    f"SELECT DISTINCT id {PREFIX}",
    f"SELECT id, room {PREFIX}",
    f"SELECT MAX(temp) AS hottest {PREFIX}",
    f"SELECT id, COUNT(*) AS n {PREFIX} GROUP BY id",
    f"SELECT AVG(temp) AS mean {PREFIX}",
]

#: The acceptance bar: shared aggregate throughput vs unshared.
SPEEDUP_FLOOR = 1.5
REPEATS = 5


def build(sharing):
    engine = DSMSEngine(sharing=sharing, queue_capacity=1_000_000)
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    for index, text in enumerate(QUERIES):
        engine.register_query(f"q{index}", text)
    return engine


def drive(engine):
    for row, t in ROWS:
        engine.ingest("Obs", row, t)
        engine.run_until_idle()
    return engine


def final_states(engine):
    return [sorted(tuple(r.values) for r in handle.query.current())
            for handle in engine.queries]


def throughput(sharing):
    """Best-of-REPEATS aggregate throughput: tuple deliveries/second
    (every arrival is delivered to all 8 queries)."""
    best = 0.0
    for _ in range(REPEATS):
        gc.collect()
        engine = build(sharing)
        _, elapsed = timed(lambda: drive(engine))
        best = max(best, len(ROWS) * len(QUERIES) / elapsed)
    return best


def test_shared_answers_match_unshared():
    shared = final_states(drive(build(sharing=True)))
    unshared = final_states(drive(build(sharing=False)))
    assert shared == unshared
    assert any(state for state in shared), "workload produced no results"


def test_shared_group_actually_shares():
    engine = drive(build(sharing=True))
    assert engine.shared_subplan_hits >= len(QUERIES) - 1
    assert engine.total_state_size() < \
        drive(build(sharing=False)).total_state_size()


def test_bench_plan_sharing_writes_json():
    shared_engine = drive(build(sharing=True))
    unshared_engine = drive(build(sharing=False))

    shared_tput = throughput(sharing=True)
    unshared_tput = throughput(sharing=False)
    speedup = shared_tput / unshared_tput

    table = ExperimentTable(
        "Plan sharing: 8 overlapping standing queries, shared vs private "
        f"plans ({len(ROWS)} events)",
        ["mode", "throughput_tuples_s", "total_state", "state_per_query"])
    for mode, tput, engine in (
            ("unshared", unshared_tput, unshared_engine),
            ("shared", shared_tput, shared_engine)):
        total = engine.total_state_size()
        table.add_row(mode, tput, total, total / len(QUERIES))
    table.show()

    payload = bench_result(
        "plan_sharing", table,
        window=WINDOW, events=len(ROWS), queries=len(QUERIES),
        shared_subplan_hits=shared_engine.shared_subplan_hits,
        speedup=speedup, speedup_floor=SPEEDUP_FLOOR,
        meets_floor=speedup >= SPEEDUP_FLOOR)
    write_bench_json(payload)

    assert speedup >= SPEEDUP_FLOOR, (
        f"shared plans {speedup:.2f}x unshared, below the "
        f"{SPEEDUP_FLOOR}x floor")


@pytest.mark.benchmark(group="plan-sharing")
@pytest.mark.parametrize("sharing", [False, True],
                         ids=["unshared", "shared"])
def test_bench_plan_sharing(benchmark, sharing):
    benchmark(lambda: drive(build(sharing)))
