"""C5 — Section 4: out-of-order processing, watermarks, and triggers.

The Dataflow model's correctness/latency/cost trade-off, measured:
(i) a lateness sweep — more watermark slack (bounded out-of-orderness)
admits more stragglers into on-time panes at the cost of waiting;
(ii) a trigger sweep — eager triggers fire more panes (lower latency,
higher cost) for the same final answer.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    assert_monotone,
    out_of_order_readings,
)
from repro.core import BoundedOutOfOrderness
from repro.dataflow import (
    AccumulationMode,
    AfterCount,
    AfterWatermark,
    FixedWindows,
    PaneTiming,
    Pipeline,
    Repeatedly,
)

ARRIVALS = out_of_order_readings(n=120, disorder=12)
WINDOW = 20


def run_with_slack(slack, trigger=None,
                   accumulation=AccumulationMode.DISCARDING):
    p = Pipeline()
    (p.create(ARRIVALS, watermark=BoundedOutOfOrderness(bound=slack))
     .map(lambda reading: (reading[0], 1))
     .window_into(FixedWindows(WINDOW), trigger=trigger,
                  accumulation=accumulation)
     .combine_per_key(sum)
     .collect("counts"))
    return p.run()


def totals_of(result):
    """Final per-(key, window) counts, late refinements folded in."""
    out = {}
    for wv in result["counts"]:
        key = (wv.value[0], wv.windows[0].start)
        out[key] = out.get(key, 0) + wv.value[1]
    return out


def test_c5_watermark_slack_sweep():
    table = ExperimentTable(
        "C5: lateness vs watermark slack (120 events, disorder <= 12)",
        ["slack", "dropped_late", "on_time_panes", "late_panes"])
    dropped_series = []
    for slack in (0, 2, 6, 12):
        result = run_with_slack(slack)
        table.add_row(slack, result.dropped_late,
                      result.panes_by_timing[PaneTiming.ON_TIME],
                      result.panes_by_timing[PaneTiming.LATE])
        dropped_series.append(result.dropped_late)
    table.show()
    # Shape: more slack, fewer drops; generous slack drops nothing.
    assert_monotone(dropped_series, increasing=False)
    assert dropped_series[0] > 0
    assert dropped_series[-1] == 0


def test_c5_completeness_recovered_with_allowed_lateness():
    strict = run_with_slack(0)
    generous = run_with_slack(12)
    # With enough slack the totals equal the true (event-time) counts.
    true_counts = {}
    for (sensor, _), event_time in ARRIVALS:
        key = (sensor, (event_time // WINDOW) * WINDOW)
        true_counts[key] = true_counts.get(key, 0) + 1
    assert totals_of(generous) == true_counts
    assert sum(totals_of(strict).values()) < sum(true_counts.values())


def test_c5_trigger_latency_cost_tradeoff():
    table = ExperimentTable(
        "C5: triggers — panes fired for the same final answer",
        ["trigger", "panes", "final_counts_equal"])
    baseline = run_with_slack(12)
    configurations = [
        ("watermark only", None),
        ("early every 2", AfterWatermark(early=Repeatedly(AfterCount(2)))),
        ("early every 1", AfterWatermark(early=Repeatedly(AfterCount(1)))),
    ]
    pane_counts = []
    for name, trigger in configurations:
        result = run_with_slack(12, trigger=trigger)
        equal = totals_of(result) == totals_of(baseline)
        panes = len(result["counts"])
        table.add_row(name, panes, equal)
        pane_counts.append(panes)
        assert equal, name
    table.show()
    # Shape: eagerness costs panes.
    assert_monotone(pane_counts, increasing=True)


@pytest.mark.benchmark(group="c5")
def test_bench_c5_out_of_order_pipeline(benchmark):
    result = benchmark(lambda: run_with_slack(8))
    assert result["counts"]
