"""P2 — partitioned parallel execution: keyed aggregation, 1→2→4 workers.

The survey's §4.2 fission claim, measured: a keyed aggregation fissioned
into N key-routed partitions, each replayed by a worker process.  Two
quantities per configuration:

* **wall seconds** — end-to-end, exactly as this machine experienced it.
  On a single-core container (CI) forked workers time-share the one CPU,
  so wall time does *not* drop with workers; it is reported, not gated.
* **critical-path seconds** — the largest per-partition CPU time (each
  worker measures its own ``process_time``, so co-scheduled workers
  cannot inflate each other).  This is what wall time converges to when
  every partition has its own core, and it is the gated claim: the
  4-worker critical path must be at least ``SPEEDUP_FLOOR`` times
  shorter than the 1-worker run.  The residual gap to 4x is key skew —
  the heaviest partition's share of rows — which the payload records.

Parity is asserted before any timing matters: partitioned runs (inline
and forked) must equal the serial executor instant by instant — final
state, per-instant change-log and emission multiset — on the main
workload and on the strided-int-key workload (keys 0, 4, 8, …) that the
pre-fix ``default_hash`` collapsed onto partition 0.

Results land in ``BENCH_parallelism.json``.
"""

import gc
import os
import random

import pytest

from repro.bench import (
    OBSERVATION_SCHEMA,
    bench_result,
    timed,
    write_bench_json,
)
from repro.cql import ContinuousQuery, CQLEngine
from repro.runtime.pool import WorkerPool, run_partitioned_recorded

INSTANTS = 200
ROWS_PER_INSTANT = 40
KEYS = 64
WINDOW = 20
QUERY = (f"SELECT id, COUNT(*) AS n, MAX(temp) AS m "
         f"FROM Obs [Range {WINDOW}] GROUP BY id")

#: The gated claim: 4-worker critical path vs 1-worker, CPU seconds.
SPEEDUP_FLOOR = 2.0
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3


def keyed_batches(keys=KEYS, stride=1, seed=7):
    """Per-instant batches of keyed observations; ``stride`` spaces the
    int keys out (stride 4 is the pre-fix hash's worst case)."""
    rng = random.Random(seed)
    return [
        (t, {"Obs": [{"id": stride * rng.randrange(keys),
                      "room": f"r{rng.randrange(5)}",
                      "temp": rng.randint(0, 40)}
                     for _ in range(ROWS_PER_INSTANT)]})
        for t in range(INSTANTS)
    ]


@pytest.fixture(scope="module")
def engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    return engine


def serial_run(plan, catalog, batches):
    query = ContinuousQuery(plan, catalog)
    emissions = list(query.start())
    for t, arrivals in batches:
        emissions.extend(query.push_batch(t, arrivals))
    emissions.extend(query.finish())
    return query, emissions


def emission_set(emissions):
    return sorted((e.timestamp, repr(e.record)) for e in emissions)


def snapshot_list(relation):
    return [(t, sorted(bag, key=repr)) for t, bag in relation.snapshots()]


class TestParity:
    """Output equality comes before any performance claim."""

    @pytest.mark.parametrize("backend", ["inline", "process"])
    @pytest.mark.parametrize("stride", [1, 4])
    def test_partitioned_equals_serial(self, engine, backend, stride):
        if backend == "process" and not WorkerPool(2).backend == "process":
            pytest.skip("platform cannot fork")
        batches = keyed_batches(stride=stride)
        plan = engine.plan(QUERY)
        serial, expected = serial_run(plan, engine.catalog, batches)
        result = run_partitioned_recorded(plan, engine.catalog, batches,
                                          parallelism=4, backend=backend)
        assert emission_set(result.emissions) == emission_set(expected)
        assert result.state == serial.current()
        assert all(load > 0 for load in result.partition_loads), \
            f"starved partition (stride {stride}): {result.partition_loads}"

    def test_instant_by_instant_change_log(self, engine):
        from repro.cql import PartitionedQuery
        batches = keyed_batches(stride=4)
        plan = engine.plan(QUERY)
        serial, _ = serial_run(plan, engine.catalog, batches)
        parallel = PartitionedQuery(plan, engine.catalog, parallelism=4)
        parallel.start()
        for t, arrivals in batches:
            parallel.push_batch(t, arrivals)
        parallel.finish()
        assert snapshot_list(parallel.as_relation()) \
            == snapshot_list(serial.as_relation())


class TestThroughputScaling:
    def test_keyed_aggregation_scales(self, engine, tmp_path_factory):
        batches = keyed_batches()
        plan = engine.plan(QUERY)
        total_rows = INSTANTS * ROWS_PER_INSTANT

        rows = []
        for workers in WORKER_COUNTS:
            backend = "process" if workers > 1 \
                and WorkerPool(workers).backend == "process" else "inline"
            best_wall, best_crit, loads = float("inf"), float("inf"), []
            for _ in range(REPEATS):
                gc.collect()
                result, wall = timed(lambda: run_partitioned_recorded(
                    plan, engine.catalog, batches,
                    parallelism=workers, backend=backend))
                best_wall = min(best_wall, wall)
                best_crit = min(best_crit, result.critical_path_seconds)
                loads = result.partition_loads
            rows.append({
                "workers": workers,
                "backend": backend,
                "wall_seconds": round(best_wall, 4),
                "critical_path_seconds": round(best_crit, 4),
                "rows_per_critical_second": round(total_rows / best_crit),
                "partition_loads": loads,
                "skew": round(max(loads) * workers / total_rows, 3),
            })

        crit = {row["workers"]: row["critical_path_seconds"]
                for row in rows}
        speedup_2 = crit[1] / crit[2]
        speedup_4 = crit[1] / crit[4]
        cores = os.cpu_count() or 1

        payload = bench_result(
            "parallelism",
            query=QUERY,
            rows=total_rows,
            instants=INSTANTS,
            keys=KEYS,
            cores=cores,
            configurations=rows,
            critical_path_speedup_2w=round(speedup_2, 2),
            critical_path_speedup_4w=round(speedup_4, 2),
            wall_speedup_4w=round(rows[0]["wall_seconds"]
                                  / rows[-1]["wall_seconds"], 2),
            note=(
                "critical_path_seconds is per-partition CPU time (max over "
                "partitions): the work one core must do per run.  Wall "
                f"time is honest for this {cores}-core machine — with "
                "fewer cores than workers, forked workers time-share and "
                "wall time cannot drop; the critical path is the gated "
                "scaling claim."),
        )
        write_bench_json(payload)

        # Scaling must be real: each doubling of workers shortens the
        # critical path, and 4 workers beat 1 by the floor.
        assert speedup_2 > 1.3, f"2-worker critical path speedup {speedup_2}"
        assert speedup_4 >= SPEEDUP_FLOOR, \
            f"4-worker critical path speedup {speedup_4} < {SPEEDUP_FLOOR}"
        assert speedup_4 > speedup_2, (crit, rows)
