"""L2 — Listing 2: the paper's Flink-style functional DSL example.

``transactions.filter(t -> t.getAmount() > 100).map(...)`` is expressed in
our DSL verbatim and executed on the actor runtime with and without
operator chaining (fusion).  Expected shape: results identical, but the
fused job moves far fewer messages — the optimisation the survey's
Section 4.2 catalog calls *fusion*.
"""

import pytest

from repro.bench import ExperimentTable, timed, transactions
from repro.dsl import StreamEnvironment
from repro.runtime import JobRunner

ROWS = transactions(800)


def build_env(chaining):
    env = StreamEnvironment(parallelism=2, chaining=chaining)
    (env.from_collection(ROWS)
     .filter(lambda tx: tx["amount"] > 100)
     .map(lambda tx: f"TID:{tx['id']}, Amount:{tx['amount']}")
     .sink("out"))
    return env


def test_listing2_program_output():
    env = build_env(chaining=True)
    result = env.execute()
    lines = result.values("out")
    assert lines  # the heavy-tail workload keeps ~15%
    assert all(line.startswith("TID:") for line in lines)
    kept = [row for row, _ in ROWS if row["amount"] > 100]
    assert len(lines) == len(kept)


def test_listing2_fusion_reduces_messages():
    table = ExperimentTable(
        "Listing 2: operator chaining (800 events, parallelism 2)",
        ["mode", "vertices", "messages", "seconds"])
    stats = {}
    for chaining in (False, True):
        env = build_env(chaining)
        runner = JobRunner(env.graph, chaining=chaining)
        result, seconds = timed(runner.run)
        mode = "chained" if chaining else "unchained"
        stats[mode] = (len(runner.graph.vertices),
                       result.messages_processed,
                       sorted(result.values("out")))
        table.add_row(mode, len(runner.graph.vertices),
                      result.messages_processed, seconds)
    table.show()
    assert stats["chained"][2] == stats["unchained"][2]
    assert stats["chained"][0] < stats["unchained"][0]
    assert stats["chained"][1] < stats["unchained"][1]


@pytest.mark.benchmark(group="listing2")
@pytest.mark.parametrize("chaining", [False, True],
                         ids=["unchained", "chained"])
def test_bench_listing2(benchmark, chaining):
    def run():
        return build_env(chaining).execute().values("out")

    assert benchmark(run)
