"""C2 — Definition 3.2: snapshot reducibility as a machine-checked property.

Krämer & Seeger's timeslice bridge between streaming and temporal
databases: an operator is snapshot-reducible when its output's snapshot at
every instant equals its non-temporal counterpart applied to input
snapshots.  The experiment checks each operator in our temporal algebra
and reports the verdicts — including the deliberately order-dependent
``first-n`` operator, which must fail with a concrete counterexample.
"""

import random

import pytest

from repro.bench import ExperimentTable, timed
from repro.core import (
    Bag,
    LogicalStream,
    ValidityElement,
    check_snapshot_reducibility,
    logical_duplicate_elimination,
    logical_first_n,
    logical_join,
    logical_project,
    logical_select,
    logical_union,
    reducibility_counterexample,
    timeslice,
)


def sensor_logical_stream(n=60, seed=21):
    rng = random.Random(seed)
    elements = []
    t = 0
    for _ in range(n):
        t += rng.randint(1, 4)
        elements.append(ValidityElement(rng.randint(0, 20), t,
                                        t + rng.randint(2, 15)))
    return LogicalStream(elements)


LEFT = sensor_logical_stream()
RIGHT = sensor_logical_stream(n=25, seed=22)


def bag_join(lb, rb):
    out = Bag()
    for l in lb:
        for r in rb:
            if (l + r) % 2 == 0:
                out.add((l, r))
    return out


CHECKS = [
    ("selection", lambda: check_snapshot_reducibility(
        lambda s: logical_select(s, lambda v: v > 10),
        lambda b: b.filter(lambda v: v > 10), [LEFT]), True),
    ("projection", lambda: check_snapshot_reducibility(
        lambda s: logical_project(s, lambda v: v % 5),
        lambda b: b.map(lambda v: v % 5), [LEFT]), True),
    ("union", lambda: check_snapshot_reducibility(
        logical_union, Bag.union, [LEFT, RIGHT]), True),
    ("join", lambda: check_snapshot_reducibility(
        lambda a, b: logical_join(a, b, lambda l, r: (l + r) % 2 == 0),
        bag_join, [LEFT, RIGHT]), True),
    ("distinct", lambda: check_snapshot_reducibility(
        logical_duplicate_elimination, Bag.distinct, [LEFT]), True),
    ("first-10 (order-dependent)", lambda: check_snapshot_reducibility(
        lambda s: logical_first_n(s, 10),
        lambda b: Bag(sorted(b, key=repr)[:10]), [LEFT]), False),
]


def test_c2_reducibility_verdicts():
    table = ExperimentTable(
        "C2: snapshot reducibility per operator (Def. 3.2)",
        ["operator", "reducible", "check_seconds"])
    for name, check, expected in CHECKS:
        verdict, seconds = timed(check)
        table.add_row(name, verdict, seconds)
        assert verdict == expected, name
    table.show()


def test_c2_counterexample_is_concrete():
    witness = reducibility_counterexample(
        lambda s: logical_first_n(s, 10),
        lambda b: Bag(sorted(b, key=repr)[:10]), [LEFT])
    assert witness is not None
    t, lhs, rhs = witness
    assert lhs != rhs


def test_c2_timeslice_window_encoding():
    """A time-based window is the timeslice of a validity-interval stream
    — the operational bridge the paper describes."""
    stream = LogicalStream.from_windowed(
        [(i, 3 * i) for i in range(20)], lifetime=10)
    # At t=30 exactly the elements with 20 < 3i+10, 3i <= 30 are live.
    live = timeslice(stream, 30)
    assert live == Bag([7, 8, 9, 10])


@pytest.mark.benchmark(group="c2")
def test_bench_c2_full_property_check(benchmark):
    def run_all():
        return [check() for _, check, _ in CHECKS]

    verdicts = benchmark(run_all)
    assert verdicts == [True, True, True, True, True, False]
