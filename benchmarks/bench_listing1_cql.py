"""L1 — Listing 1: the paper's CQL example query.

``SELECT COUNT(P.ID) FROM Person P, RoomObservation O [Range 15 min]
WHERE P.id = O.id`` is parsed verbatim, planned, and executed both
incrementally and denotationally.  The experiment sweeps stream length:
the incremental executor's total work grows linearly while the reference
(recompute at every instant) grows quadratically.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    person_rows,
    room_observations,
    timed,
    OBSERVATION_SCHEMA,
    PERSON_SCHEMA,
)
from repro.core import Stream, minutes
from repro.cql import CQLEngine, parse_query

#: The query text exactly as printed in the paper (Listing 1).
LISTING_1 = ("Select count(P.ID) "
             "From Person P, RoomObservation O [Range 15 min] "
             "Where P.id = O.id")


def build_engine():
    engine = CQLEngine()
    engine.register_stream("RoomObservation", OBSERVATION_SCHEMA)
    engine.register_relation("Person", PERSON_SCHEMA, rows=person_rows())
    return engine


def listing1_rows(n):
    # Observation gaps around a minute so the 15-minute window holds a
    # meaningful fraction of the stream.
    return room_observations(n, mean_gap=minutes(1))


def test_listing1_parses_and_runs_verbatim():
    statement = parse_query(LISTING_1)
    assert statement.sources[1].window.range_ == minutes(15)
    engine = build_engine()
    query = engine.register_query(LISTING_1)
    query.start()
    for row, t in listing1_rows(30):
        query.push("RoomObservation", row, t)
    (answer,) = list(query.current())
    # The unaliased aggregate projects under its printed name.
    assert answer.schema.fields == ("count(p.id)",)
    assert answer[0] >= 0


def test_listing1_incremental_matches_reference():
    engine = build_engine()
    rows = listing1_rows(40)
    query = engine.register_query(LISTING_1)
    query.run_recorded(
        {"RoomObservation": Stream.of_records(OBSERVATION_SCHEMA, rows)})
    reference = engine.run_one_shot(
        LISTING_1,
        {"RoomObservation": Stream.of_records(OBSERVATION_SCHEMA, rows)})
    assert query.as_relation() == reference


def test_listing1_incremental_scales_linearly():
    table = ExperimentTable(
        "Listing 1: incremental vs recompute",
        ["events", "incremental_s", "recompute_s", "ratio"])
    ratios = []
    for n in (40, 80, 160):
        rows = listing1_rows(n)
        stream = Stream.of_records(OBSERVATION_SCHEMA, rows)

        def incremental():
            engine = build_engine()
            query = engine.register_query(LISTING_1)
            return query.run_recorded({"RoomObservation": stream})

        def recompute():
            engine = build_engine()
            return engine.run_one_shot(
                LISTING_1, {"RoomObservation": stream})

        _, inc_time = timed(incremental)
        _, ref_time = timed(recompute)
        table.add_row(n, inc_time, ref_time, ref_time / inc_time)
        ratios.append(ref_time / inc_time)
    table.show()
    # Shape: recompute falls further behind as the stream grows.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1


@pytest.mark.benchmark(group="listing1")
def test_bench_listing1_push(benchmark):
    rows = listing1_rows(100)
    stream = Stream.of_records(OBSERVATION_SCHEMA, rows)

    def run():
        engine = build_engine()
        query = engine.register_query(LISTING_1)
        query.run_recorded({"RoomObservation": stream})
        return query.current()

    assert len(benchmark(run)) == 1
