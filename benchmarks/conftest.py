"""Shared configuration for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Every experiment prints the table recorded in EXPERIMENTS.md (use ``-s``
to see them) and asserts its *shape* claims (who wins, trends); the
``benchmark`` fixture times one representative kernel per experiment.
"""
