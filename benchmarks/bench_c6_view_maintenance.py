"""C6 — Section 5.1: view-maintenance strategies across workload mixes.

Winter et al.'s "meet me halfway" claim, reproduced on our substrate:
eager maintenance wins read-heavy mixes, lazy/recompute win write-heavy
mixes, and split maintenance stays near the best of both.  A second
experiment reproduces the DBToaster-style result: higher-order delta
views maintain a join aggregate in O(1) per update versus O(|other side|)
for first-order deltas and O(|A|+|B|) for recomputation.
"""

import random

import pytest

from repro.bench import ExperimentTable
from repro.viewmaint import (
    EagerView,
    JoinAggregateView,
    LazyView,
    RecomputeView,
    SplitView,
)

STRATEGIES = {
    "recompute": RecomputeView,
    "eager": EagerView,
    "lazy": LazyView,
    "split": SplitView,
}


def run_mix(strategy_cls, inserts_per_query, total_ops=2000, seed=3):
    rng = random.Random(seed)
    view = strategy_cls(group_fn=lambda r: r["g"],
                        value_fn=lambda r: r["v"])
    since_query = 0
    for i in range(total_ops):
        view.insert({"g": f"g{rng.randrange(8)}", "v": rng.randrange(100)})
        since_query += 1
        if since_query >= inserts_per_query:
            view.query()
            since_query = 0
    view.query()
    return view.total_work


def test_c6_strategy_crossover():
    mixes = [("read-heavy (1:1)", 1), ("balanced (20:1)", 20),
             ("write-heavy (500:1)", 500)]
    table = ExperimentTable(
        "C6: total work (touched rows) per strategy and mix",
        ["mix"] + list(STRATEGIES))
    work: dict[str, dict[str, int]] = {}
    for mix_name, inserts_per_query in mixes:
        row = {name: run_mix(cls, inserts_per_query)
               for name, cls in STRATEGIES.items()}
        work[mix_name] = row
        table.add_row(mix_name, *[row[name] for name in STRATEGIES])
    table.show()

    # Read-heavy: recompute is the worst by far; eager is near-best.
    read_heavy = work["read-heavy (1:1)"]
    assert read_heavy["recompute"] > 10 * read_heavy["eager"]
    # Split maintenance stays within a small factor of the per-mix winner
    # on every mix — the "meet me halfway" property.
    for mix_name, row in work.items():
        best = min(row.values())
        assert row["split"] <= 5 * best, (mix_name, row)


def test_c6_higher_order_deltas_constant_work():
    sizes = (100, 400, 1600)
    table = ExperimentTable(
        "C6: per-update rows touched, join-aggregate view",
        ["|other side|", "higher-order", "first-order delta",
         "recompute"])
    first_order = []
    for n in sizes:
        rng = random.Random(n)
        lefts = [{"k": rng.randrange(50), "x": 1} for _ in range(n)]
        rights = [{"k": rng.randrange(50), "y": 1} for _ in range(n)]
        view = JoinAggregateView(
            left_key=lambda r: r["k"], right_key=lambda r: r["k"],
            left_value=lambda r: r["x"], right_value=lambda r: r["y"])
        for left in lefts:
            view.insert_left(left)
        for right in rights:
            view.insert_right(right)
        before = view.update_work
        view.insert_left({"k": 7, "x": 1})
        higher_order_touch = view.update_work - before
        _, first_order_touch = JoinAggregateView.naive_delta_insert_left(
            {"k": 7, "x": 1}, lefts, rights,
            lambda r: r["k"], lambda r: r["k"],
            lambda r: r["x"], lambda r: r["y"])
        _, recompute_touch = JoinAggregateView.recompute(
            lefts, rights, lambda r: r["k"], lambda r: r["k"],
            lambda r: r["x"], lambda r: r["y"])
        table.add_row(n, higher_order_touch, first_order_touch,
                      recompute_touch)
        first_order.append(first_order_touch)
        # Shape: higher-order cost is constant; the others scale with n.
        assert higher_order_touch == 2
        assert first_order_touch == n
        assert recompute_touch == 2 * n
    table.show()


@pytest.mark.benchmark(group="c6")
@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_bench_c6_balanced_mix(benchmark, strategy):
    work = benchmark(lambda: run_mix(STRATEGIES[strategy], 20,
                                     total_ops=500))
    assert work >= 0
