"""F4 — Figure 4: the streaming-system abstraction stack.

The figure layers SQL-like dialects and functional DSLs above the dataflow
model, which sits above the actor model.  This experiment expresses the
*same* continuous query — per-room count of hot readings over tumbling
windows — at all four levels, proves the answers identical, and reports
each level's cost: declarativeness is paid for in overhead, which is
exactly the trade-off the figure depicts.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    room_observations,
    timed,
    OBSERVATION_SCHEMA,
)
from repro.core import TumblingWindow
from repro.dataflow import FixedWindows, Pipeline
from repro.dsl import CountAggregate, StreamEnvironment
from repro.runtime import Actor, ActorSystem
from repro.sql import run_sql

ROWS = room_observations(200)
WINDOW = 100
HOT = 25


def expected_key(room, window_start, count):
    return (room, window_start, count)


# -- level 1: SQL-like dialect -------------------------------------------------


def run_sql_level(kernel=True):
    records = run_sql(
        f"SELECT room, window_start, COUNT(*) AS n FROM Obs "
        f"WHERE temp > {HOT} GROUP BY room, TUMBLE({WINDOW})",
        OBSERVATION_SCHEMA, "Obs", ROWS, kernel=kernel)
    return {expected_key(r["room"], r["window_start"], r["n"])
            for r in records}


# -- level 2: functional DSL ---------------------------------------------------


def run_dsl_level(kernel=True):
    env = StreamEnvironment(kernel=kernel)
    (env.from_collection(ROWS)
     .filter(lambda row: row["temp"] > HOT)
     .key_by(lambda row: row["room"])
     .window(TumblingWindow(WINDOW))
     .aggregate(CountAggregate())
     .sink("out"))
    result = env.execute()
    return {expected_key(key, window.start, count)
            for key, count, window in result.values("out")}


# -- level 3: dataflow model -----------------------------------------------------


def run_dataflow_level(kernel=True):
    p = Pipeline()
    (p.create([(row, t) for row, t in ROWS])
     .filter(lambda row: row["temp"] > HOT)
     .map(lambda row: (row["room"], 1))
     .window_into(FixedWindows(WINDOW))
     .combine_per_key(sum)
     .collect("out"))
    result = p.run(kernel=kernel)
    return {expected_key(wv.value[0], wv.windows[0].start, wv.value[1])
            for wv in result["out"]}


# -- level 4: raw actor model ------------------------------------------------------


class WindowCountActor(Actor):
    """Hand-rolled windowed counting — what Figure 4's bottom layer
    programs look like without any abstraction above messages."""

    def __init__(self):
        super().__init__()
        self.buckets = {}

    def receive(self, message, sender):
        row, t = message
        if row["temp"] > HOT:
            start = (t // WINDOW) * WINDOW
            key = (row["room"], start)
            self.buckets[key] = self.buckets.get(key, 0) + 1


def run_actor_level():
    system = ActorSystem()
    counter = WindowCountActor()
    ref = system.spawn("counter", counter)
    for row, t in ROWS:
        ref.tell((row, t))
    system.run_until_idle()
    return {expected_key(room, start, n)
            for (room, start), n in counter.buckets.items()}


LEVELS = [
    ("SQL dialect", run_sql_level),
    ("functional DSL", run_dsl_level),
    ("dataflow model", run_dataflow_level),
    ("actor model", run_actor_level),
]


def test_fig4_all_levels_compute_the_same_answer():
    results = {}
    table = ExperimentTable(
        "Figure 4: one query at each abstraction level (200 events)",
        ["level", "seconds", "result_rows"])
    for name, runner in LEVELS:
        result, seconds = timed(runner)
        results[name] = result
        table.add_row(name, seconds, len(result))
    table.show()
    baseline = results["actor model"]
    assert baseline, "workload produced no windows"
    for name, result in results.items():
        assert result == baseline, f"{name} diverges from the actor level"


def test_fig4_kernel_matches_legacy_at_every_togglable_level():
    # The abstraction stack now sits on the shared execution kernel
    # (``repro.exec``); each level that kept its legacy machinery for
    # comparison must produce the same answer either way.
    for name, runner in LEVELS[:-1]:  # the raw actor level has no toggle
        assert runner(kernel=True) == runner(kernel=False), name


def test_fig4_declarative_levels_cost_more_than_raw_actors():
    # Warm up, then compare: the raw actor program must be the cheapest —
    # abstraction has a price (the figure's vertical axis).
    run_actor_level()
    _, actor_time = timed(run_actor_level)
    _, sql_time = timed(run_sql_level)
    assert sql_time > actor_time


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("level", [name for name, _ in LEVELS])
def test_bench_fig4_level(benchmark, level):
    runner = dict(LEVELS)[level]
    result = benchmark(runner)
    assert result
