"""K1 — kernel unification: one push-based substrate under four layers.

The Figure 4 workload (per-room count of hot readings over tumbling
windows) runs at each API layer twice: through the layer's legacy
machinery and through the shared ``repro.exec`` kernel.  Results must be
identical pair-wise, and the kernel must be overhead-neutral — within 10%
of (or better than) each legacy path.  Timings and ratios land in
``BENCH_kernel_unification.json``.
"""

import gc

import pytest

from repro.bench import (
    ExperimentTable,
    OBSERVATION_SCHEMA,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.core import TumblingWindow
from repro.cql import CQLEngine
from repro.dataflow import FixedWindows, Pipeline
from repro.dsl import CountAggregate, StreamEnvironment
from repro.dsms import DSMSEngine

ROWS = room_observations(200)
WINDOW = 100
HOT = 25
HORIZON = max(t for _, t in ROWS) + WINDOW

CQL_QUERY = (f"SELECT room, COUNT(*) FROM Obs "
             f"[Range {WINDOW} Slide {WINDOW}] "
             f"WHERE temp > {HOT} GROUP BY room")

#: the overhead-neutrality criterion: kernel <= legacy * (1 + slack).
SLACK = 0.10
#: timing repetitions; the best run of each path is compared (the rest is
#: scheduler noise, which a laptop-scale bench cannot average away).
REPEATS = 5


def run_cql(kernel):
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    query = engine.register_query(CQL_QUERY, kernel=kernel)
    query.start()
    for row, t in ROWS:
        query.push("Obs", row, t)
    query.advance_to(HORIZON)
    return sorted(tuple(r.values) for r in query.current())


def run_dsms(kernel):
    dsms = DSMSEngine(kernel=kernel)
    dsms.register_stream("Obs", OBSERVATION_SCHEMA)
    handle = dsms.register_query("hot", CQL_QUERY)
    for row, t in ROWS:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()
    dsms.advance_time(HORIZON)
    return sorted(tuple(r.values) for r in handle.query.current())


def run_dataflow(kernel):
    p = Pipeline()
    (p.create([(row, t) for row, t in ROWS])
     .filter(lambda row: row["temp"] > HOT)
     .map(lambda row: (row["room"], 1))
     .window_into(FixedWindows(WINDOW))
     .combine_per_key(sum)
     .collect("out"))
    result = p.run(kernel=kernel)
    return sorted((wv.value[0], wv.windows[0].start, wv.value[1])
                  for wv in result["out"])


def run_runtime(kernel):
    env = StreamEnvironment(kernel=kernel)
    (env.from_collection(ROWS)
     .filter(lambda row: row["temp"] > HOT)
     .key_by(lambda row: row["room"])
     .window(TumblingWindow(WINDOW))
     .aggregate(CountAggregate())
     .sink("out"))
    result = env.execute()
    return sorted((key, window.start, count)
                  for key, count, window in result.values("out"))


LAYERS = [
    ("cql", run_cql),
    ("dsms", run_dsms),
    ("dataflow", run_dataflow),
    ("runtime", run_runtime),
]


def best_times(runner):
    """Best-of-REPEATS for both paths, interleaved so GC pressure and
    allocator drift hit legacy and kernel runs alike."""
    legacy_s = kernel_s = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        legacy_s = min(legacy_s, timed(lambda: runner(kernel=False))[1])
        kernel_s = min(kernel_s, timed(lambda: runner(kernel=True))[1])
    return legacy_s, kernel_s


def measure():
    table = ExperimentTable(
        "Kernel unification: Figure 4 workload, kernel vs legacy "
        "(200 events)",
        ["layer", "legacy_s", "kernel_s", "ratio", "identical"])
    for name, runner in LAYERS:
        legacy = runner(kernel=False)
        kernel = runner(kernel=True)
        legacy_s, kernel_s = best_times(runner)
        table.add_row(name, legacy_s, kernel_s, kernel_s / legacy_s,
                      kernel == legacy)
    return table


def test_kernel_results_identical_at_every_layer():
    for name, runner in LAYERS:
        assert runner(kernel=True) == runner(kernel=False), name
        assert runner(kernel=True), f"{name} produced no windows"


def test_bench_kernel_unification_writes_json():
    table = measure()
    table.show()
    assert all(table.column("identical"))
    payload = bench_result(
        "kernel_unification", table,
        window=WINDOW, events=len(ROWS), slack=SLACK,
        within_slack=all(r <= 1 + SLACK for r in table.column("ratio")))
    write_bench_json(payload)
    # Overhead-neutrality: the kernel stays within SLACK of every legacy
    # path (ratios land in the JSON for the record).
    for layer, ratio in zip(table.column("layer"), table.column("ratio")):
        assert ratio <= 1 + SLACK, (
            f"{layer}: kernel {ratio:.2f}x legacy exceeds "
            f"{1 + SLACK:.2f}x budget")


@pytest.mark.benchmark(group="kernel-unification")
@pytest.mark.parametrize("layer", [name for name, _ in LAYERS])
@pytest.mark.parametrize("kernel", [False, True],
                         ids=["legacy", "kernel"])
def test_bench_kernel_layer(benchmark, layer, kernel):
    runner = dict(LAYERS)[layer]
    assert benchmark(lambda: runner(kernel=kernel))
