"""C8 — Section 5.2: RSP-QL over RDF streams.

Dell'Aglio et al.'s unifying model exercised end to end: a semantic
sensor stream queried through windows with each report policy and each
R2S operator.  Expected shapes: report policies strictly order the number
of reports (periodic/window-close ≥ content-change ≥ non-empty on sparse
streams), and ISTREAM emission volume is bounded by RSTREAM's.
"""

import pytest

from repro.bench import ExperimentTable, rdf_sensor_triples, timed
from repro.core import R2SKind
from repro.rsp import (
    BasicGraphPattern,
    ContinuousRSPQuery,
    ReportPolicy,
    RSPEngine,
    StreamWindow,
    TriplePattern,
    iri,
    var,
)

TRIPLES = rdf_sensor_triples(150)
PATTERN = BasicGraphPattern([
    TriplePattern(var("sensor"), iri("sosa:hasSimpleResult"),
                  var("value"))])


def run_query(r2s=R2SKind.RSTREAM, report=ReportPolicy.WINDOW_CLOSE):
    engine = RSPEngine()
    engine.register_stream("sensors")
    query = engine.register_query("sensors", ContinuousRSPQuery(
        PATTERN, StreamWindow(width=20, slide=10), r2s=r2s, report=report))
    for triple, t in TRIPLES:
        engine.push("sensors", triple, t)
    horizon = TRIPLES[-1][1]
    engine.advance(horizon + 40)
    return query


def test_c8_report_policies_order_report_counts():
    table = ExperimentTable(
        "C8: RSP-QL report policies (150 triples, width 20 slide 10)",
        ["policy", "reports", "solutions_emitted"])
    counts = {}
    for policy in (ReportPolicy.WINDOW_CLOSE, ReportPolicy.CONTENT_CHANGE,
                   ReportPolicy.NON_EMPTY):
        query = run_query(report=policy)
        reports = len(query.results)
        solutions = sum(len(r.solutions) for r in query.results)
        counts[policy] = reports
        table.add_row(policy.value, reports, solutions)
    table.show()
    assert counts[ReportPolicy.WINDOW_CLOSE] >= \
        counts[ReportPolicy.CONTENT_CHANGE]
    assert counts[ReportPolicy.WINDOW_CLOSE] >= \
        counts[ReportPolicy.NON_EMPTY]


def test_c8_r2s_operators_over_solutions():
    table = ExperimentTable(
        "C8: R2S operators over solution mappings",
        ["operator", "solutions_emitted"])
    volumes = {}
    for r2s in (R2SKind.RSTREAM, R2SKind.ISTREAM, R2SKind.DSTREAM):
        query = run_query(r2s=r2s)
        volume = sum(len(r.solutions) for r in query.results)
        volumes[r2s] = volume
        table.add_row(r2s.value, volume)
    table.show()
    # RSTREAM re-emits everything; ISTREAM/DSTREAM emit only changes.
    assert volumes[R2SKind.ISTREAM] < volumes[R2SKind.RSTREAM]
    assert volumes[R2SKind.DSTREAM] < volumes[R2SKind.RSTREAM]
    # Over a full run every inserted solution eventually expires:
    # insertions and deletions balance.
    assert volumes[R2SKind.ISTREAM] == volumes[R2SKind.DSTREAM]


def test_c8_join_pattern_across_window():
    engine = RSPEngine()
    engine.register_stream("obs")
    bgp = BasicGraphPattern([
        TriplePattern(var("s"), iri("sosa:hasSimpleResult"), var("v")),
        TriplePattern(var("s"), iri("rdf:type"), iri("sosa:Sensor")),
    ])
    query = engine.register_query("obs", ContinuousRSPQuery(
        bgp, StreamWindow(width=50, slide=50)))
    from repro.rsp import Triple, lit
    engine.push("obs", Triple(iri("ex:s1"), iri("rdf:type"),
                              iri("sosa:Sensor")), 1)
    engine.push("obs", Triple(iri("ex:s1"), iri("sosa:hasSimpleResult"),
                              lit(20)), 2)
    engine.push("obs", Triple(iri("ex:s2"), iri("sosa:hasSimpleResult"),
                              lit(30)), 3)  # untyped sensor: no match
    results = engine.advance(50)
    (report,) = results
    (solution,) = report.solutions
    assert solution["s"] == iri("ex:s1")
    assert solution["v"].value == 20


@pytest.mark.benchmark(group="c8")
def test_bench_c8_rsp_pipeline(benchmark):
    def run():
        return len(run_query().results)

    assert benchmark(run) > 0
