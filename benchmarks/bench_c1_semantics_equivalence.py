"""C1 — Section 3.1: Babcock/Sellis union semantics vs CQL semantics.

Barbarà's result, executable: the cumulative-union formulation equals the
evaluate-at-every-instant formulation exactly when the query is monotonic.
The experiment runs a query family over one stream, reporting for each
query its empirical monotonicity and the number of *stale* tuples the
union semantics retains — zero iff monotonic.
"""

import pytest

from repro.bench import ExperimentTable
from repro.core import (
    Stream,
    babcock_sellis_evaluation,
    continuous_evaluation,
    count_query,
    distinct_query,
    divergence_profile,
    empirically_monotonic,
    filter_query,
    join_query,
    max_query,
    semantics_agree,
    window_filter_query,
)

STREAM = Stream.from_pairs(
    [(value, 2 * i) for i, value in enumerate(
        [5, 12, 3, 12, 30, 7, 21, 9, 14, 2, 28, 17])])

QUERY_FAMILY = [
    ("filter v>10", filter_query(lambda v: v > 10), True),
    ("self-join", join_query(lambda v: v % 2 == 0, lambda v: v % 3), True),
    ("distinct", distinct_query(), True),
    ("count(*)", count_query(), False),
    ("max", max_query(), False),
    ("windowed filter", window_filter_query(lambda v: True, range_=6),
     False),
]


def test_c1_equivalence_iff_monotonic():
    table = ExperimentTable(
        "C1: union semantics vs per-instant semantics",
        ["query", "monotonic", "semantics_agree", "stale_tuples"])
    for name, query, expected_monotonic in QUERY_FAMILY:
        monotonic = empirically_monotonic(query, STREAM)
        agrees = semantics_agree(query, STREAM)
        stale = sum(s for _, s in divergence_profile(query, STREAM))
        table.add_row(name, monotonic, agrees, stale)
        assert monotonic == expected_monotonic, name
        # Barbarà's equivalence: agreement exactly for monotonic queries.
        assert agrees == monotonic, name
        assert (stale == 0) == monotonic, name
    table.show()


def test_c1_divergence_grows_with_stream_length():
    """For non-monotonic queries the union's stale set keeps growing."""
    profile = divergence_profile(count_query(), STREAM)
    stale_counts = [s for _, s in profile]
    assert stale_counts == sorted(stale_counts)
    assert stale_counts[-1] == len(profile) - 1


@pytest.mark.benchmark(group="c1")
def test_bench_c1_reference_evaluations(benchmark):
    def evaluate_both():
        terry = continuous_evaluation(count_query(), STREAM)
        union = babcock_sellis_evaluation(count_query(), STREAM)
        return len(terry), len(union)

    assert benchmark(evaluate_both) == (len(STREAM), len(STREAM))
