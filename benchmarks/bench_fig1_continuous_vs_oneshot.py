"""F1 — Figure 1: a data system for continuous querying.

The paradigm shift the figure depicts: continuous queries are issued once
and produce results until stopped, versus re-running a one-shot query on
every change.  We register Listing 1's query as a standing query (the
incremental executor) and compare against re-executing the denotational
one-shot evaluation per arrival.  Expected shape: the standing query's
per-event cost stays flat while re-execution cost grows with history, so
cumulative work diverges super-linearly.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    assert_monotone,
    observation_stream,
    person_rows,
    room_observations,
    timed,
    OBSERVATION_SCHEMA,
    PERSON_SCHEMA,
)
from repro.cql import CQLEngine

QUERY = ("SELECT COUNT(P.id) AS n FROM Person P, "
         "RoomObservation O [Range 200] WHERE P.id = O.id")


def build_engine():
    engine = CQLEngine()
    engine.register_stream("RoomObservation", OBSERVATION_SCHEMA)
    engine.register_relation("Person", PERSON_SCHEMA, rows=person_rows())
    return engine


def run_continuous(rows):
    engine = build_engine()
    query = engine.register_query(QUERY)
    query.start()
    for row, t in rows:
        query.push("RoomObservation", row, t)
    return query


def run_oneshot_per_arrival(rows):
    """Figure 1's 'traditional' side: re-evaluate from scratch per event."""
    engine = build_engine()
    plan = engine.plan(QUERY)
    from repro.cql import reference_evaluate
    from repro.core import Stream
    results = []
    for i in range(1, len(rows) + 1):
        prefix = Stream.of_records(OBSERVATION_SCHEMA, rows[:i])
        results.append(reference_evaluate(
            plan, engine.catalog, {"RoomObservation": prefix}))
    return results


def test_fig1_continuous_beats_oneshot_reexecution():
    table = ExperimentTable(
        "Figure 1: standing query vs per-event re-execution",
        ["events", "continuous_s", "oneshot_s", "speedup"])
    speedups = []
    for n in (25, 50, 100):
        rows = room_observations(n)
        _, continuous_time = timed(lambda r=rows: run_continuous(r))
        _, oneshot_time = timed(lambda r=rows: run_oneshot_per_arrival(r))
        table.add_row(n, continuous_time, oneshot_time,
                      oneshot_time / max(continuous_time, 1e-9))
        speedups.append(oneshot_time / max(continuous_time, 1e-9))
    table.show()
    # Shape: the standing query wins, and wins more as history grows.
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]


def test_fig1_results_identical():
    """Both sides of Figure 1 compute the same answers."""
    rows = room_observations(40)
    query = run_continuous(rows)
    query.finish()
    engine = build_engine()
    reference = engine.run_one_shot(
        QUERY, {"RoomObservation": observation_stream(40)})
    assert query.as_relation() == reference


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_standing_query_push(benchmark):
    rows = room_observations(200)

    def push_all():
        return run_continuous(rows).current()

    result = benchmark(push_all)
    assert len(result) == 1
