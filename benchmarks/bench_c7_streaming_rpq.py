"""C7 — Section 5.2: streaming RPQ vs snapshot recompute; path semantics.

Pacaci et al.'s claim reproduced: maintaining RPQ answers incrementally in
the product graph sustains low per-edge cost, while re-running the
snapshot algorithm after every insertion grows with graph size.  A second
experiment contrasts arbitrary- and simple-path semantics, and a third
runs continuous subgraph (triangle) matching on the same stream.
"""

import pytest

from repro.bench import ExperimentTable, assert_monotone, social_edges, timed
from repro.graph import (
    ContinuousPatternQuery,
    IncrementalRPQ,
    PropertyGraph,
    evaluate_rpq,
    evaluate_rpq_simple,
)

QUERY = "follows+"


def edge_list(n, people=25):
    return list(social_edges(n, people=people))


def test_c7_incremental_vs_snapshot_recompute():
    table = ExperimentTable(
        "C7: streaming RPQ (follows+) — incremental vs per-edge recompute",
        ["edges", "incremental_s", "recompute_s", "speedup"])
    # Warm up interpreter caches so the first measured size isn't inflated.
    warmup = IncrementalRPQ(QUERY)
    for src, label, dst, _ in edge_list(20):
        warmup.insert(src, label, dst)
    speedups = []
    for n in (40, 80, 160):
        edges = edge_list(n)

        def incremental():
            engine = IncrementalRPQ(QUERY)
            for src, label, dst, _ in edges:
                engine.insert(src, label, dst)
            return engine.answers()

        def recompute_per_edge():
            graph = PropertyGraph()
            answers = None
            for i, (src, label, dst, _) in enumerate(edges):
                graph.add_edge(f"e{i}", src, dst, label)
                answers = evaluate_rpq(graph, QUERY)
            return answers

        incremental_answers, inc_time = timed(incremental)
        snapshot_answers, re_time = timed(recompute_per_edge)
        assert incremental_answers == snapshot_answers
        table.add_row(n, inc_time, re_time, re_time / inc_time)
        speedups.append(re_time / inc_time)
    table.show()
    assert speedups[-1] > 2
    assert speedups[-1] > speedups[0]


def test_c7_path_semantics_cost_and_answers():
    edges = edge_list(60, people=12)
    graph = PropertyGraph()
    for i, (src, label, dst, _) in enumerate(edges):
        graph.add_edge(f"e{i}", src, dst, label)
    arbitrary, t_arbitrary = timed(lambda: evaluate_rpq(graph, QUERY))
    simple, t_simple = timed(lambda: evaluate_rpq_simple(graph, QUERY))
    table = ExperimentTable(
        "C7: arbitrary vs simple path semantics (60 edges, 12 nodes)",
        ["semantics", "answers", "seconds"])
    table.add_row("arbitrary", len(arbitrary), t_arbitrary)
    table.add_row("simple", len(simple), t_simple)
    table.show()
    # Simple-path answers are a subset (same pairs reachable via simple
    # witnesses) and cost more to enumerate on a cyclic graph.
    assert simple <= arbitrary
    assert t_simple > t_arbitrary


def test_c7_continuous_triangles():
    query = ContinuousPatternQuery(
        "x -follows-> y, y -follows-> z, z -follows-> x")
    emitted = 0
    for src, label, dst, _ in edge_list(150, people=15):
        if label == "follows":
            emitted += len(query.insert(src, dst, label))
    assert emitted == len(query.matches())
    assert emitted > 0


@pytest.mark.benchmark(group="c7")
def test_bench_c7_incremental_insertions(benchmark):
    edges = edge_list(100)

    def run():
        engine = IncrementalRPQ(QUERY)
        for src, label, dst, _ in edges:
            engine.insert(src, label, dst)
        return len(engine.answers())

    assert benchmark(run) > 0
