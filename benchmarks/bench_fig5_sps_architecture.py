"""F5 — Figure 5: the abstract streaming-system architecture.

Distributed queue in, DAG of parallel operators, embedded key-value state,
streams out.  Three experiments: (i) an end-to-end job consuming from the
broker with keyed state, swept over partition parallelism; (ii) the state
backend comparison (heap dict vs the RocksDB-stand-in LSM store);
(iii) the broker's produce/consume/replay path with consumer groups.
"""

import pytest

from repro.bench import ExperimentTable, timed, transactions
from repro.core import TumblingWindow
from repro.dsl import DictBackend, LSMBackend, StreamEnvironment, SumAggregate
from repro.runtime import Broker, ConsumerGroup

ROWS = transactions(600)


def run_job(parallelism, backend=DictBackend):
    env = StreamEnvironment(parallelism=parallelism,
                            state_backend=backend)
    (env.from_collection(ROWS)
     .filter(lambda tx: tx["amount"] > 20)
     .key_by(lambda tx: tx["user"])
     .window(TumblingWindow(100))
     .aggregate(SumAggregate(lambda tx: tx["amount"]))
     .sink("sums"))
    result = env.execute()
    return {(k, w.start): v for k, v, w in result.values("sums")}


def test_fig5_parallelism_preserves_results():
    table = ExperimentTable(
        "Figure 5: job results and cost vs parallelism (600 events)",
        ["parallelism", "seconds", "result_rows"])
    outputs = []
    for parallelism in (1, 2, 4):
        result, seconds = timed(lambda p=parallelism: run_job(p))
        outputs.append(result)
        table.add_row(parallelism, seconds, len(result))
    table.show()
    assert outputs[0] == outputs[1] == outputs[2]


def test_fig5_state_backend_comparison():
    table = ExperimentTable(
        "Figure 5: keyed state backend (dict vs LSM)",
        ["backend", "seconds", "result_rows"])
    dict_result, dict_time = timed(lambda: run_job(2, DictBackend))
    lsm_result, lsm_time = timed(lambda: run_job(2, LSMBackend))
    table.add_row("dict (heap)", dict_time, len(dict_result))
    table.add_row("LSM (RocksDB stand-in)", lsm_time, len(lsm_result))
    table.show()
    assert dict_result == lsm_result
    # Shape: the log-structured backend pays a constant factor.
    assert lsm_time > dict_time * 0.3  # sanity: both ran for real


def test_fig5_broker_produce_consume_replay():
    broker = Broker()
    broker.create_topic("tx", partitions=4)
    n, produce_time = timed(lambda: broker.produce_all(
        "tx", ((row["user"], row, t) for row, t in ROWS)))
    assert n == len(ROWS)

    group = ConsumerGroup(broker, "jobs", ["tx"])
    group.join("w1")
    group.join("w2")
    consumed, consume_time = timed(
        lambda: group.poll("w1") + group.poll("w2"))
    assert len(consumed) == len(ROWS)
    # Per-key ordering survives partitioning: offsets increase per key.
    per_key_offsets = {}
    for record in consumed:
        last = per_key_offsets.get((record.partition, record.key), -1)
        assert record.offset > last
        per_key_offsets[(record.partition, record.key)] = record.offset

    table = ExperimentTable(
        "Figure 5: broker path (600 records, 4 partitions, 2 consumers)",
        ["stage", "seconds", "records"])
    table.add_row("produce", produce_time, n)
    table.add_row("consume", consume_time, len(consumed))
    table.show()


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_end_to_end_job(benchmark):
    result = benchmark(lambda: run_job(2))
    assert result


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_broker_roundtrip(benchmark):
    def roundtrip():
        broker = Broker()
        broker.create_topic("tx", partitions=4)
        broker.produce_all("tx", ((row["user"], row, t)
                                  for row, t in ROWS))
        group = ConsumerGroup(broker, "g", ["tx"])
        group.join("w")
        return len(group.poll("w"))

    assert benchmark(roundtrip) == len(ROWS)
