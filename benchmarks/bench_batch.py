"""B1 — vectorized micro-batch execution: columnar batches vs elements.

The headline leg pushes the same rows through a fused
filter→project→aggregate kernel chain twice — once per element, once as
:class:`RecordBatch` micro-batches — and demands a >=5x tuples/s speedup
after an exact-parity gate (identical group table either way).  A second
leg measures the DSMS end to end (queue drain-to-batch, one instant
evaluation and one Store write per batch) for the record; a batch-size
sweep shows where the columnar win saturates.  Results land in
``BENCH_batch.json``.
"""

import gc

import pytest

from repro.bench import (
    ExperimentTable,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.core import Schema
from repro.dsms import DSMSEngine
from repro.exec import (
    Plan,
    RecordBatch,
    VectorFilter,
    VectorProject,
    keyed_count,
)

N_ROWS = 50_000
BATCH_SIZE = 1024
#: the vectorization criterion: batched >= SPEEDUP_FLOOR * per-element.
SPEEDUP_FLOOR = 5.0
#: timing repetitions; best run of each path is compared.
REPEATS = 5

ROWS = [{"k": f"room{i % 7}", "v": i % 40, "t": i} for i in range(N_ROWS)]
BATCHES = [RecordBatch.from_records(ROWS[i:i + BATCH_SIZE])
           for i in range(0, N_ROWS, BATCH_SIZE)]

# Coarsened timestamps: ~20 tuples share each instant, so the queue's
# drain-to-batch actually forms multi-tuple batches (with all-distinct
# timestamps a batch can never cross an instant and batching is a noop).
DSMS_ROWS = [(row, t // 200) for row, t in room_observations(4_000)]
DSMS_QUERY = "SELECT room, temp FROM Obs [Range 50] WHERE temp > 25"


def chain_plan():
    """The fused hot path: filter -> project -> keyed count."""
    plan = Plan()
    plan.add_source("s")
    agg = keyed_count("k")
    plan.add_operator("filter", VectorFilter(
        lambda r: r["v"] > 10, column="v", compare=lambda v: v > 10), ["s"])
    plan.add_operator("project", VectorProject(["k"]), ["filter"])
    plan.add_operator("agg", agg, ["project"])
    fusions = plan.fuse()
    assert fusions > 0, "chain must fuse — that is the leg being measured"
    return plan, agg


def run_elements():
    plan, agg = chain_plan()
    plan.open()
    push = plan.push
    for row in ROWS:
        push("s", row)
    return agg.groups()


def run_batches(batches=BATCHES):
    plan, agg = chain_plan()
    plan.open()
    push_batch = plan.push_batch
    for batch in batches:
        push_batch("s", batch)
    return agg.groups()


def run_dsms(batch_size):
    dsms = DSMSEngine(queue_capacity=len(DSMS_ROWS) + 1,
                      batch_size=batch_size)
    dsms.register_stream("Obs", Schema(["id", "room", "temp"]))
    handle = dsms.register_query("q", DSMS_QUERY)
    for row, t in DSMS_ROWS:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()
    return sorted(tuple(r.values) for r in handle.store_state())


def best_of(fn):
    best = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        best = min(best, timed(fn)[1])
    return best


def measure():
    table = ExperimentTable(
        f"Vectorized micro-batches: fused filter->project->aggregate "
        f"({N_ROWS} rows, batch={BATCH_SIZE})",
        ["leg", "element_s", "batch_s", "speedup", "identical"])
    identical = run_elements() == run_batches()
    element_s, batch_s = float("inf"), float("inf")
    for _ in range(REPEATS):
        gc.collect()
        element_s = min(element_s, timed(run_elements)[1])
        batch_s = min(batch_s, timed(run_batches)[1])
    table.add_row("fused-chain", element_s, batch_s,
                  element_s / batch_s, identical)
    dsms_identical = run_dsms(1) == run_dsms(64)
    dsms_element = best_of(lambda: run_dsms(1))
    dsms_batch = best_of(lambda: run_dsms(64))
    table.add_row("dsms-end-to-end", dsms_element, dsms_batch,
                  dsms_element / dsms_batch, dsms_identical)
    return table


def sweep():
    """tuples/s of the fused chain as the batch size grows."""
    points = []
    for size in (8, 64, 512, 4096):
        batches = [RecordBatch.from_records(ROWS[i:i + size])
                   for i in range(0, N_ROWS, size)]
        seconds = best_of(lambda: run_batches(batches))
        points.append({"batch_size": size,
                       "tuples_per_s": N_ROWS / seconds})
    return points


@pytest.mark.batch
def test_batched_chain_is_exact():
    # Parity gates the speedup claim: a fast wrong answer is worthless.
    groups = run_elements()
    assert groups == run_batches()
    assert groups and sum(groups.values()) == \
        sum(1 for row in ROWS if row["v"] > 10)


@pytest.mark.batch
def test_dsms_batched_store_is_exact():
    assert run_dsms(1) == run_dsms(64)


@pytest.mark.batch
def test_bench_batch_writes_json():
    table = measure()
    table.show()
    assert all(table.column("identical"))
    speedup = table.column("speedup")[0]
    points = sweep()
    payload = bench_result(
        "batch", table,
        rows=N_ROWS, batch_size=BATCH_SIZE, floor=SPEEDUP_FLOOR,
        sweep=points,
        tuples_per_s_element=N_ROWS / table.column("element_s")[0],
        tuples_per_s_batch=N_ROWS / table.column("batch_s")[0])
    write_bench_json(payload)
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused chain: batched only {speedup:.1f}x per-element, "
        f"needs >= {SPEEDUP_FLOOR:.0f}x")


@pytest.mark.batch
@pytest.mark.benchmark(group="batch")
@pytest.mark.parametrize("mode", ["element", "batch"])
def test_bench_batch_chain(benchmark, mode):
    runner = run_elements if mode == "element" else run_batches
    assert benchmark(runner)
