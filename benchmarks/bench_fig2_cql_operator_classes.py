"""F2 — Figure 2: CQL's S2R / R2R / R2S operator triangle.

The figure shows the two data types (streams, time-varying relations) and
the three conversion classes between them.  This experiment exercises all
conversion paths on the Listing 1 workload and reports the cost of each
class, plus the identity that closes the triangle:
``ISTREAM([Range Unbounded] S) == S``.
"""

import pytest

from repro.bench import ExperimentTable, observation_stream, timed
from repro.core import (
    AggregateKind,
    AggregateSpec,
    RangeWindow,
    UnboundedWindow,
    aggregate,
    dstream,
    istream,
    rstream,
    select,
    stream_to_relation,
)

STREAM = observation_stream(300)


def test_fig2_all_conversion_paths():
    table = ExperimentTable(
        "Figure 2: operator class costs (300-element stream)",
        ["operator", "class", "seconds", "output_size"])

    relation, t_s2r = timed(
        lambda: stream_to_relation(STREAM, RangeWindow(range_=100)))
    table.add_row("[Range 100]", "S2R", t_s2r, len(relation))

    filtered, t_r2r = timed(
        lambda: select(relation, lambda r: r["temp"] > 25))
    table.add_row("select(temp>25)", "R2R", t_r2r, len(filtered))

    counted, t_agg = timed(lambda: aggregate(
        relation, ["room"],
        [AggregateSpec(AggregateKind.COUNT, None, "n")]))
    table.add_row("aggregate by room", "R2R", t_agg, len(counted))

    inserted, t_i = timed(lambda: istream(relation))
    table.add_row("ISTREAM", "R2S", t_i, len(inserted))
    deleted, t_d = timed(lambda: dstream(relation))
    table.add_row("DSTREAM", "R2S", t_d, len(deleted))
    everything, t_r = timed(lambda: rstream(relation))
    table.add_row("RSTREAM", "R2S", t_r, len(everything))
    table.show()

    # Shape claims: a range window both inserts and (eventually) expires
    # every element, and RSTREAM re-emits full states so dwarfs ISTREAM.
    assert len(inserted) == len(STREAM)
    assert len(deleted) == len(STREAM)
    assert len(everything) > len(inserted)


def test_fig2_triangle_identity():
    """ISTREAM of an unbounded window recovers the stream exactly."""
    relation = stream_to_relation(STREAM, UnboundedWindow())
    recovered = istream(relation)
    assert recovered.values() == STREAM.values()
    assert recovered.timestamps() == STREAM.timestamps()


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_s2r_window(benchmark):
    result = benchmark(
        lambda: stream_to_relation(STREAM, RangeWindow(range_=100)))
    assert len(result) > 0


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_r2s_istream(benchmark):
    relation = stream_to_relation(STREAM, RangeWindow(range_=100))
    result = benchmark(lambda: istream(relation))
    assert len(result) == len(STREAM)
