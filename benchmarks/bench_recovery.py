"""R1 — crash recovery: latency and replay volume vs checkpoint interval.

The classic fault-tolerance trade-off (survey §4.2): frequent checkpoints
cost snapshot work up front but bound the replay after a crash; sparse
checkpoints are cheap until the failure, when everything since the last
barrier must be reprocessed.  A grouped-aggregate kernel query is driven
over the standard room-observation workload with one injected operator
crash mid-stream, once per checkpoint interval.  The sweep must show the
trend both ways — replay volume grows with the interval, checkpoints
taken shrink — and every recovered run must equal the fault-free one.
Results land in ``BENCH_recovery.json``.
"""

from repro.bench import (
    ExperimentTable,
    OBSERVATION_SCHEMA,
    bench_result,
    room_observations,
    timed,
    write_bench_json,
)
from repro.chaos import CrashFuse, RecoveryManager, install_crash, \
    run_query_with_recovery
from repro.core import Stream
from repro.cql import CQLEngine

ROWS = room_observations(400)
STREAM = Stream.of_records(OBSERVATION_SCHEMA, ROWS)
QUERY = ("SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 50] "
         "WHERE temp > 12 GROUP BY room")
INTERVALS = (1, 4, 16)
CRASH_POSITION = 1
#: Fire deep into the stream so every interval has checkpoints behind it.
CRASH_AT = 600


def fresh_query():
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    return engine.register_query(QUERY, kernel=True)


def outputs(query):
    stream = query.emitted_stream()
    return (stream.timestamps(), stream.values())


def crashed_run(interval):
    query = fresh_query()
    fuse = CrashFuse(at=CRASH_AT)
    install_crash(query, CRASH_POSITION, fuse)
    manager = RecoveryManager(query, interval=interval,
                              sleep=lambda _d: None, backoff_base=0.0)
    _, elapsed = timed(
        lambda: run_query_with_recovery(query, {"Obs": STREAM}, manager))
    assert fuse.fired == 1, "the crash must actually fire"
    return query, manager, elapsed


def test_bench_recovery_writes_json():
    clean = fresh_query()
    clean.run_recorded({"Obs": STREAM})
    expected = outputs(clean)

    table = ExperimentTable(
        f"Recovery cost vs checkpoint interval ({len(ROWS)} events, one "
        f"injected crash)",
        ["interval_instants", "checkpoints_taken", "checkpoint_bytes",
         "replayed_records", "recovery_seconds", "run_seconds"])
    measured = {}
    for interval in INTERVALS:
        query, manager, elapsed = crashed_run(interval)
        assert outputs(query) == expected, \
            f"interval {interval}: recovered run diverged"
        taken = manager.checkpoints[-1].checkpoint_id
        table.add_row(interval, taken, manager.checkpoint_bytes,
                      manager.replayed_records, manager.recovery_seconds,
                      elapsed)
        measured[interval] = (taken, manager.replayed_records)
    table.show()

    # The trade-off must point both ways across the sweep.
    takens = [measured[i][0] for i in INTERVALS]
    replays = [measured[i][1] for i in INTERVALS]
    assert takens == sorted(takens, reverse=True), \
        f"checkpoints taken should shrink with the interval: {takens}"
    assert replays == sorted(replays), \
        f"replay volume should grow with the interval: {replays}"
    assert replays[0] < replays[-1], \
        f"sweep shows no replay trend: {replays}"

    payload = bench_result(
        "recovery", table,
        events=len(ROWS), query=QUERY, intervals=list(INTERVALS),
        crash_position=CRASH_POSITION, crash_at=CRASH_AT)
    write_bench_json(payload)
