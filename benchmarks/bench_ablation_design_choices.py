"""Ablations over the design knobs DESIGN.md calls out.

Three tunables whose trade-offs the literature describes, swept on our
substrate: the split view's merge threshold (insert cost vs query cost),
the LSM store's memtable budget (write vs read amplification), and the
checkpoint interval (steady-state overhead vs work lost at recovery).
"""

import random

import pytest

from repro.bench import ExperimentTable, assert_monotone, zipfian_keys
from repro.runtime import (
    CollectSinkOperator,
    FailOnceOperator,
    ForwardPartitioner,
    HashPartitioner,
    JobGraph,
    JobRunner,
    KeyByOperator,
    LSMStore,
)
from repro.viewmaint import SplitView


def test_ablation_split_view_merge_threshold():
    """Low thresholds behave eagerly (query cheap, inserts pay);
    high thresholds behave lazily (inserts free, queries pay)."""
    table = ExperimentTable(
        "Ablation: SplitView merge threshold (3000 inserts, 30 queries)",
        ["threshold", "merges", "update_work", "query_work"])
    rng_rows = [{"g": f"g{k}", "v": k}
                for k in zipfian_keys(3000, keys=6)]
    update_series, query_series = [], []
    for threshold in (8, 64, 512, 4096):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"],
                         merge_threshold=threshold)
        for i, row in enumerate(rng_rows):
            view.insert(row)
            if i % 100 == 99:
                view.query()
        table.add_row(threshold, view.merges, view.update_work,
                      view.query_work)
        update_series.append(view.update_work)
        query_series.append(view.query_work)
    table.show()
    # Shape: raising the threshold moves work from updates to queries.
    assert_monotone(update_series, increasing=False)
    assert_monotone(query_series, increasing=True)


def test_ablation_lsm_memtable_budget():
    """Small memtables flush often (write amplification) but a larger
    run count raises read probes (read amplification)."""
    operations = [(k, v) for k, v in
                  zip(zipfian_keys(4000, keys=300, seed=5),
                      range(4000))]
    table = ExperimentTable(
        "Ablation: LSM memtable budget (4000 writes + 4000 reads)",
        ["memtable_limit", "flushes", "compactions", "run_probes"])
    flush_series = []
    for limit in (16, 64, 256, 1024):
        store = LSMStore(memtable_limit=limit, max_runs=4)
        for key, value in operations:
            store.put(key, value)
        rng = random.Random(1)
        for _ in range(4000):
            store.get(rng.randrange(300))
        table.add_row(limit, store.flushes, store.compactions,
                      store.run_probes)
        flush_series.append(store.flushes)
    table.show()
    assert_monotone(flush_series, increasing=False)
    assert flush_series[0] > 4 * flush_series[-1]


def wordcount_graph(fuse, interval_rows=2000):
    graph = JobGraph("ablate")
    words = [f"w{k}" for k in zipfian_keys(600, keys=12, seed=9)]
    feeds = [[(w, None, i) for i, w in enumerate(words[0::2])],
             [(w, None, i) for i, w in enumerate(words[1::2])]]
    graph.add_source("src", feeds)
    graph.add_operator("key", lambda: KeyByOperator(lambda v: v), 2)
    graph.add_operator("chaos", lambda: FailOnceOperator(250, fuse), 2)
    graph.add_operator("sink", CollectSinkOperator, 1)
    graph.connect("src", "key", ForwardPartitioner)
    graph.connect("key", "chaos", ForwardPartitioner)
    graph.connect("chaos", "sink", HashPartitioner)
    graph.mark_sink("sink")
    return graph


def test_ablation_checkpoint_interval():
    """Frequent barriers cost messages in steady state but bound the
    replay work after a crash."""
    table = ExperimentTable(
        "Ablation: checkpoint interval (600 records, crash at 250)",
        ["interval", "steady_messages", "recovery_messages",
         "checkpoints"])
    steady_series, recovery_series = [], []
    for interval in (10, 50, 250):
        steady = JobRunner(wordcount_graph([True]),
                           checkpoint_interval=interval).run()
        crashed = JobRunner(wordcount_graph([False]),
                            checkpoint_interval=interval).run()
        assert crashed.recoveries == 1
        assert sorted(map(repr, crashed.values("sink"))) == \
            sorted(map(repr, steady.values("sink")))
        table.add_row(interval, steady.messages_processed,
                      crashed.messages_processed,
                      len(steady.completed_checkpoints))
        steady_series.append(steady.messages_processed)
        recovery_series.append(crashed.messages_processed)
    table.show()
    # Shape: longer intervals are cheaper in steady state (fewer barrier
    # broadcasts)…
    assert_monotone(steady_series, increasing=False)
    # …and every crash costs real extra work (the wasted attempt plus
    # replay from the last complete checkpoint).
    overheads = [r - s for r, s in zip(recovery_series, steady_series)]
    assert all(overhead > 0 for overhead in overheads)
    # Exactly-once held at every interval (asserted above per run).


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("limit", [16, 256])
def test_bench_ablation_lsm(benchmark, limit):
    keys = zipfian_keys(2000, keys=200, seed=5)

    def run():
        store = LSMStore(memtable_limit=limit, max_runs=4)
        for i, key in enumerate(keys):
            store.put(key, i)
        return store.flushes

    assert benchmark(run) >= 0
