"""C10 — Sections 2 / 4.1.3: the window-operator landscape.

Verwiebe et al.'s window taxonomy on one workload: every window type the
library implements run over the same stream (contents validated against
first principles), plus the aggregation-strategy comparison the Scotty
line of work makes: incremental per-window accumulators versus
re-aggregating window contents from the buffer at every report.
"""

import pytest

from repro.bench import (
    ExperimentTable,
    observation_stream,
    room_observations,
    timed,
)
from repro.core import (
    Bag,
    CountWindow,
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
    merge_sessions,
    stream_to_relation,
)
from repro.core.operators import AggregateKind, AggregateSpec, aggregate

STREAM = observation_stream(200)

WINDOW_TYPES = [
    ("tumbling(100)", TumblingWindow(100)),
    ("sliding(100,50)", SlidingWindow(100, 50)),
    ("range(100)", RangeWindow(100)),
    ("stepped(100,50)", SteppedRangeWindow(100, 50)),
    ("now", NowWindow()),
    ("unbounded", UnboundedWindow()),
    ("landmark(500)", LandmarkWindow(500)),
    ("rows(25)", CountWindow(25)),
    ("partitioned(room,5)",
     PartitionedWindow(lambda r: r["room"], 5, key_names=("room",))),
]


def test_c10_window_landscape():
    table = ExperimentTable(
        "C10: window types over one 200-element stream",
        ["window", "change_points", "final_size", "seconds"])
    horizon = STREAM.max_timestamp
    for name, window in WINDOW_TYPES:
        relation, seconds = timed(
            lambda w=window: stream_to_relation(STREAM, w))
        table.add_row(name, len(relation),
                      len(relation.at(horizon)), seconds)
    table.show()


def test_c10_window_content_invariants():
    horizon = STREAM.max_timestamp
    unbounded = stream_to_relation(STREAM, UnboundedWindow())
    assert len(unbounded.at(horizon)) == len(STREAM)
    rows25 = stream_to_relation(STREAM, CountWindow(25))
    assert len(rows25.at(horizon)) == 25
    now = stream_to_relation(STREAM, NowWindow())
    assert len(now.at(horizon)) == len(STREAM.at(horizon))
    ranged = stream_to_relation(STREAM, RangeWindow(100))
    expected = Bag(e.value for e in STREAM
                   if e.timestamp > horizon - 100)
    assert ranged.at(horizon) == expected
    # Every range-window state is a subset of the unbounded state.
    for t in ranged.change_points():
        assert ranged.at(t) <= unbounded.at(t)


def test_c10_session_coverage():
    gaps = [e.timestamp for e in STREAM]
    sessions = merge_sessions(
        [SessionWindow(gap=30).assign(t)[0] for t in gaps])
    # Sessions partition the elements: every element in exactly one.
    for t in gaps:
        containing = [s for s in sessions if t in s]
        assert len(containing) == 1
    # And consecutive sessions are separated by more than the gap.
    for a, b in zip(sessions, sessions[1:]):
        assert b.start - a.end >= 0


def test_c10_incremental_vs_recompute_aggregation():
    """Scotty's point: per-window accumulators beat re-aggregating the
    buffer at every report, increasingly so for finer slides."""
    from repro.cql import CQLEngine
    from repro.core import Stream
    from repro.bench import OBSERVATION_SCHEMA
    rows = room_observations(300)
    stream = Stream.of_records(OBSERVATION_SCHEMA, rows)
    table = ExperimentTable(
        "C10: windowed aggregation — incremental vs recompute",
        ["range", "incremental_s", "recompute_s", "speedup"])
    speedups = []
    for window_range in (50, 200, 800):
        query_text = (f"SELECT COUNT(*) AS n, AVG(temp) AS a FROM Obs "
                      f"[Range {window_range}]")

        def incremental():
            engine = CQLEngine()
            engine.register_stream("Obs", OBSERVATION_SCHEMA)
            query = engine.register_query(query_text)
            query.run_recorded({"Obs": stream})
            return query.as_relation()

        def recompute():
            relation = stream_to_relation(
                stream, RangeWindow(window_range))
            return aggregate(relation, [], [
                AggregateSpec(AggregateKind.COUNT, None, "n"),
                AggregateSpec(AggregateKind.AVG, "temp", "a")])

        incremental_result, inc_time = timed(incremental)
        recompute_result, rec_time = timed(recompute)
        assert incremental_result == recompute_result
        table.add_row(window_range, inc_time, rec_time,
                      rec_time / inc_time)
        speedups.append(rec_time / inc_time)
    table.show()
    # Shape: bigger windows hold more state, so recompute falls behind.
    assert speedups[-1] > speedups[0]


@pytest.mark.benchmark(group="c10")
@pytest.mark.parametrize("name,window", WINDOW_TYPES[:4],
                         ids=[n for n, _ in WINDOW_TYPES[:4]])
def test_bench_c10_window(benchmark, name, window):
    result = benchmark(lambda: stream_to_relation(STREAM, window))
    assert len(result) > 0
