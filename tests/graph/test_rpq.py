"""Tests for RPQ evaluation: snapshot, incremental, simple-path (C7)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    IncrementalRPQ,
    PropertyGraph,
    WindowedRPQ,
    compile_regex,
    evaluate_rpq,
    evaluate_rpq_simple,
)


def chain_graph(labels):
    """v0 -l0-> v1 -l1-> v2 ..."""
    g = PropertyGraph()
    for i, label in enumerate(labels):
        g.add_edge(f"e{i}", f"v{i}", f"v{i+1}", label)
    return g


class TestSnapshotRPQ:
    def test_single_edge(self):
        g = chain_graph(["knows"])
        assert evaluate_rpq(g, "knows") == {("v0", "v1")}

    def test_concatenation(self):
        g = chain_graph(["a", "b"])
        assert evaluate_rpq(g, "a b") == {("v0", "v2")}

    def test_kleene_star_transitive_closure(self):
        g = chain_graph(["knows", "knows", "knows"])
        answers = evaluate_rpq(g, "knows+")
        assert ("v0", "v3") in answers
        assert ("v1", "v3") in answers
        assert len(answers) == 6

    def test_star_includes_empty_path(self):
        g = chain_graph(["a"])
        answers = evaluate_rpq(g, "a*")
        assert ("v0", "v0") in answers  # empty path
        assert ("v0", "v1") in answers

    def test_alternation(self):
        g = PropertyGraph()
        g.add_edge("e1", "x", "y", "mail")
        g.add_edge("e2", "x", "z", "call")
        assert evaluate_rpq(g, "mail | call") == {("x", "y"), ("x", "z")}

    def test_sources_restriction(self):
        g = chain_graph(["a", "a"])
        assert evaluate_rpq(g, "a", sources=["v1"]) == {("v1", "v2")}

    def test_cycle_terminates(self):
        g = PropertyGraph()
        g.add_edge("e1", "a", "b", "x")
        g.add_edge("e2", "b", "a", "x")
        answers = evaluate_rpq(g, "x+")
        assert ("a", "a") in answers
        assert ("a", "b") in answers


class TestSimplePathSemantics:
    def test_agrees_on_acyclic_graphs(self):
        g = chain_graph(["a", "a", "a"])
        assert evaluate_rpq_simple(g, "a+") == evaluate_rpq(g, "a+")

    def test_differs_on_cycles(self):
        # With a cycle, (a, a) via x x is an arbitrary path but visits a
        # twice, so simple-path semantics rejects the longer witnesses.
        g = PropertyGraph()
        g.add_edge("e1", "a", "b", "x")
        g.add_edge("e2", "b", "a", "x")
        arbitrary = evaluate_rpq(g, "x x x")
        simple = evaluate_rpq_simple(g, "x x x")
        assert ("a", "b") in arbitrary
        assert simple == set()


class TestIncrementalRPQ:
    def test_incremental_matches_snapshot(self):
        random.seed(7)
        engine = IncrementalRPQ("knows+ likes")
        g = PropertyGraph()
        for i in range(60):
            src = f"v{random.randrange(12)}"
            dst = f"v{random.randrange(12)}"
            label = random.choice(["knows", "likes"])
            engine.insert(src, label, dst)
            g.add_edge(f"e{i}", src, dst, label)
        assert engine.answers() == evaluate_rpq(g, "knows+ likes")

    def test_insert_returns_only_new_answers(self):
        engine = IncrementalRPQ("a b")
        assert engine.insert("x", "a", "y") == set()
        assert engine.insert("y", "b", "z") == {("x", "z")}
        # Re-inserting a parallel edge produces nothing new.
        assert engine.insert("y", "b", "z") == set()

    def test_new_edge_extends_existing_paths_both_ways(self):
        engine = IncrementalRPQ("a+")
        engine.insert("m", "a", "n")
        engine.insert("o", "a", "p")
        # Bridging edge connects both fragments.
        new = engine.insert("n", "a", "o")
        assert ("m", "p") in new
        assert ("n", "o") in new

    def test_state_grows_monotonically(self):
        engine = IncrementalRPQ("a*")
        before = engine.state_size
        engine.insert("x", "a", "y")
        assert engine.state_size > before


class TestWindowedRPQ:
    def test_answers_reflect_window(self):
        engine = WindowedRPQ("a b", window=10)
        engine.insert("x", "a", "y", timestamp=0)
        engine.insert("y", "b", "z", timestamp=5)
        assert engine.answers() == {("x", "z")}
        # Advancing past the first edge's lifetime drops the answer.
        engine.advance(11)
        assert engine.answers() == set()
        assert engine.rebuilds == 1
        assert engine.live_edges == 1

    def test_insert_advances_time(self):
        engine = WindowedRPQ("a", window=5)
        engine.insert("x", "a", "y", timestamp=0)
        engine.insert("p", "a", "q", timestamp=20)
        assert engine.answers() == {("p", "q")}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRPQ("a", window=0)


# ---------------------------------------------------------------------------
# Property: incremental == snapshot on random graphs and queries
# ---------------------------------------------------------------------------

QUERIES = ["a", "a b", "a+", "a* b", "(a | b)+", "a (b | c)* a"]

edges = st.lists(st.tuples(
    st.integers(min_value=0, max_value=7),
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=7)), max_size=40)


@settings(max_examples=40, deadline=None)
@given(edge_list=edges, query_index=st.integers(0, len(QUERIES) - 1))
def test_property_incremental_equals_snapshot(edge_list, query_index):
    query = QUERIES[query_index]
    engine = IncrementalRPQ(query)
    graph = PropertyGraph()
    for i, (src, label, dst) in enumerate(edge_list):
        engine.insert(f"v{src}", label, f"v{dst}")
        graph.add_edge(f"e{i}", f"v{src}", f"v{dst}", label)
    assert engine.answers() == evaluate_rpq(graph, query)
