"""Tests for the property graph model and graph streams."""

import pytest

from repro.core import GraphError, TimeError
from repro.graph import GraphStream, PropertyGraph, WindowedGraphView


@pytest.fixture
def graph():
    g = PropertyGraph()
    g.add_node("alice", labels=["Person"], age=30)
    g.add_node("bob", labels=["Person"])
    g.add_node("post1", labels=["Post"])
    g.add_edge("e1", "alice", "bob", "knows", since=2020)
    g.add_edge("e2", "alice", "post1", "wrote")
    g.add_edge("e3", "bob", "post1", "liked")
    return g


class TestNodesAndEdges:
    def test_node_properties_and_labels(self, graph):
        alice = graph.node("alice")
        assert alice.properties["age"] == 30
        assert "Person" in alice.labels

    def test_add_node_idempotent_merges(self, graph):
        graph.add_node("alice", labels=["Admin"], city="lyon")
        alice = graph.node("alice")
        assert alice.labels == frozenset({"Person", "Admin"})
        assert alice.properties["city"] == "lyon"

    def test_edge_properties(self, graph):
        assert graph.edge("e1").properties["since"] == 2020

    def test_add_edge_creates_endpoints(self):
        g = PropertyGraph()
        g.add_edge("e", "x", "y", "r")
        assert g.has_node("x") and g.has_node("y")

    def test_duplicate_edge_id_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_edge("e1", "bob", "alice", "knows")

    def test_unknown_lookups(self, graph):
        with pytest.raises(GraphError):
            graph.node("ghost")
        with pytest.raises(GraphError):
            graph.edge("e99")

    def test_counts(self, graph):
        assert graph.node_count == 3
        assert graph.edge_count == 3

    def test_nodes_with_label(self, graph):
        assert {n.id for n in graph.nodes_with_label("Person")} == \
            {"alice", "bob"}

    def test_labels(self, graph):
        assert graph.labels() == {"knows", "wrote", "liked"}


class TestTraversal:
    def test_out_edges_by_label(self, graph):
        assert [e.dst for e in graph.out_edges("alice", "knows")] == ["bob"]
        assert len(graph.out_edges("alice")) == 2

    def test_in_edges(self, graph):
        assert {e.src for e in graph.in_edges("post1")} == {"alice", "bob"}

    def test_successors_predecessors(self, graph):
        assert set(graph.successors("alice")) == {"bob", "post1"}
        assert graph.predecessors("post1", "liked") == ["bob"]

    def test_missing_node_traversal_is_empty(self, graph):
        assert graph.out_edges("ghost") == []


class TestRemoval:
    def test_remove_edge(self, graph):
        graph.remove_edge("e1")
        assert not graph.has_edge("e1")
        assert graph.successors("alice", "knows") == []

    def test_remove_node_cascades(self, graph):
        graph.remove_node("post1")
        assert graph.edge_count == 1
        assert not graph.has_edge("e2")
        assert not graph.has_edge("e3")

    def test_remove_then_readd_edge_id(self, graph):
        graph.remove_edge("e1")
        graph.add_edge("e1", "bob", "alice", "knows")
        assert graph.edge("e1").src == "bob"


class TestGraphStream:
    def test_snapshot_applies_events(self):
        stream = GraphStream()
        stream.insert("e1", "a", "b", "knows", 1)
        stream.insert("e2", "b", "c", "knows", 2)
        stream.delete("e1", "a", "b", "knows", 3)
        at2 = stream.snapshot_at(2)
        assert at2.edge_count == 2
        at3 = stream.snapshot_at(3)
        assert at3.edge_count == 1
        assert not at3.has_edge("e1")

    def test_time_order_enforced(self):
        stream = GraphStream()
        stream.insert("e1", "a", "b", "x", 5)
        with pytest.raises(TimeError):
            stream.insert("e2", "a", "b", "x", 4)

    def test_delete_unknown_edge_detected_at_snapshot(self):
        stream = GraphStream()
        stream.delete("ghost", "a", "b", "x", 1)
        with pytest.raises(GraphError):
            stream.snapshot_at(1)


class TestWindowedGraphView:
    def test_expiry_removes_edges(self):
        view = WindowedGraphView(window=10)
        assert view.observe("e1", "a", "b", "knows", 0) == []
        assert view.observe("e2", "b", "c", "knows", 5) == []
        expired = view.observe("e3", "c", "d", "knows", 11)
        assert expired == ["e1"]
        assert view.graph.edge_count == 2
        assert view.live_edge_count == 2

    def test_advance_without_data(self):
        view = WindowedGraphView(window=5)
        view.observe("e1", "a", "b", "x", 0)
        assert view.advance(100) == ["e1"]
        assert view.graph.edge_count == 0

    def test_time_regression_rejected(self):
        view = WindowedGraphView(window=5)
        view.observe("e1", "a", "b", "x", 10)
        with pytest.raises(TimeError):
            view.observe("e2", "a", "b", "x", 9)

    def test_invalid_window(self):
        with pytest.raises(GraphError):
            WindowedGraphView(window=0)
