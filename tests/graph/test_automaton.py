"""Tests for regex → NFA → DFA compilation."""

import pytest

from repro.core import ParseError
from repro.graph import compile_regex, parse_regex
from repro.graph.automaton import Alternate, Concat, Label, Plus, Star


class TestParsing:
    def test_single_label(self):
        assert parse_regex("knows") == Label("knows")

    def test_concatenation(self):
        node = parse_regex("knows likes")
        assert isinstance(node, Concat)
        assert node.parts == (Label("knows"), Label("likes"))

    def test_alternation_precedence(self):
        node = parse_regex("a b | c")
        assert isinstance(node, Alternate)
        assert isinstance(node.options[0], Concat)

    def test_star_and_plus(self):
        assert parse_regex("a*") == Star(Label("a"))
        assert parse_regex("a+") == Plus(Label("a"))

    def test_parentheses(self):
        node = parse_regex("(a | b)*")
        assert isinstance(node, Star)
        assert isinstance(node.inner, Alternate)

    def test_errors(self):
        for bad in ["", "a |", "(a", "*", "a; b"]:
            with pytest.raises(ParseError):
                parse_regex(bad)


class TestDFA:
    @pytest.mark.parametrize("regex,word,expected", [
        ("a", ["a"], True),
        ("a", ["b"], False),
        ("a", [], False),
        ("a b", ["a", "b"], True),
        ("a b", ["a"], False),
        ("a | b", ["b"], True),
        ("a*", [], True),
        ("a*", ["a", "a", "a"], True),
        ("a*", ["a", "b"], False),
        ("a+", [], False),
        ("a+", ["a"], True),
        ("a?", [], True),
        ("a?", ["a", "a"], False),
        ("(a b)+", ["a", "b", "a", "b"], True),
        ("(a b)+", ["a", "b", "a"], False),
        ("a (b | c)* d", ["a", "d"], True),
        ("a (b | c)* d", ["a", "c", "b", "d"], True),
        ("a (b | c)* d", ["a", "c", "b"], False),
        ("knows+ likes", ["knows", "knows", "likes"], True),
    ])
    def test_accepts(self, regex, word, expected):
        assert compile_regex(regex).accepts(word) is expected

    def test_start_state_is_zero(self):
        dfa = compile_regex("a b")
        assert dfa.start == 0

    def test_dead_transition_is_none(self):
        dfa = compile_regex("a")
        assert dfa.step(dfa.start, "z") is None

    def test_alphabet(self):
        assert compile_regex("a b | c*").alphabet == {"a", "b", "c"}

    def test_accepting_start_for_star(self):
        dfa = compile_regex("a*")
        assert dfa.is_accepting(dfa.start)
