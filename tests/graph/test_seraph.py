"""Tests for continuous Cypher (Seraph-style; paper Section 5.2)."""

import pytest

from repro.core import ParseError
from repro.graph.seraph import (
    ContinuousCypher,
    CypherQuery,
    parse_cypher,
)


class TestParsing:
    def test_single_relationship(self):
        query = parse_cypher("MATCH (a)-[:knows]->(b) RETURN a, b")
        assert len(query.pattern) == 1
        assert query.returns == ("a", "b")

    def test_multi_edge_pattern(self):
        query = parse_cypher(
            "MATCH (a)-[:follows]->(b), (b)-[:follows]->(c) RETURN a, c")
        assert len(query.pattern) == 2
        assert query.pattern.variables == ["a", "b", "c"]

    def test_where_conditions(self):
        query = parse_cypher(
            "MATCH (a)-[:knows]->(b) "
            "WHERE a.city = 'lyon' AND b.age > 30 RETURN b")
        assert len(query.conditions) == 2
        assert query.conditions[0].value == "lyon"
        assert query.conditions[1].op == ">"
        assert query.conditions[1].value == 30

    def test_float_literal(self):
        query = parse_cypher(
            "MATCH (a)-[:r]->(b) WHERE a.score >= 0.5 RETURN a")
        assert query.conditions[0].value == 0.5

    def test_missing_return_rejected(self):
        with pytest.raises(ParseError, match="RETURN"):
            parse_cypher("MATCH (a)-[:r]->(b)")

    def test_unbound_return_variable(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_cypher("MATCH (a)-[:r]->(b) RETURN z")

    def test_unbound_where_variable(self):
        with pytest.raises(ParseError, match="unbound"):
            parse_cypher("MATCH (a)-[:r]->(b) WHERE z.x = 1 RETURN a")

    def test_unsupported_where_shape(self):
        with pytest.raises(ParseError, match="unsupported"):
            parse_cypher("MATCH (a)-[:r]->(b) WHERE a.x = b.y RETURN a")

    def test_empty_match(self):
        with pytest.raises(ParseError):
            parse_cypher("MATCH nothing RETURN a")


class TestContinuousExecution:
    def test_structural_match_emitted_once(self):
        query = ContinuousCypher(
            "MATCH (a)-[:knows]->(b), (b)-[:knows]->(c) RETURN a, c")
        assert query.insert(1, 2, "knows") == []
        assert query.insert(2, 3, "knows") == [{"a": 1, "c": 3}]
        assert query.insert(2, 3, "knows") == []  # no duplicate emission

    def test_label_filtering(self):
        query = ContinuousCypher("MATCH (a)-[:follows]->(b) RETURN a, b")
        assert query.insert(1, 2, "blocks") == []
        assert query.insert(1, 2, "follows") == [{"a": 1, "b": 2}]

    def test_where_blocks_until_property_arrives(self):
        query = ContinuousCypher(
            "MATCH (a)-[:knows]->(b) WHERE b.age > 30 RETURN a, b")
        assert query.insert("x", "y", "knows") == []
        assert query.pending_count == 1
        # The property update unblocks the structurally complete match.
        unblocked = query.set_node("y", age=44)
        assert unblocked == [{"a": "x", "b": "y"}]
        assert query.pending_count == 0

    def test_where_evaluated_on_insert_when_properties_known(self):
        query = ContinuousCypher(
            "MATCH (a)-[:knows]->(b) WHERE b.city = 'lyon' RETURN a")
        query.set_node("y", city="lyon")
        assert query.insert("x", "y", "knows") == [{"a": "x"}]

    def test_failing_condition_never_emits(self):
        query = ContinuousCypher(
            "MATCH (a)-[:knows]->(b) WHERE b.age > 30 RETURN a")
        query.set_node("y", age=20)
        assert query.insert("x", "y", "knows") == []
        query.set_node("y", age=25)  # still too young
        assert query.refresh_pending() == []
        assert query.results_emitted == 0

    def test_projection_restricts_returned_variables(self):
        query = ContinuousCypher(
            "MATCH (a)-[:r]->(b), (b)-[:r]->(c) RETURN c")
        query.insert(1, 2, "r")
        (result,) = query.insert(2, 3, "r")
        assert result == {"c": 3}

    def test_triangle_alert_scenario(self):
        query = ContinuousCypher(
            "MATCH (a)-[:tx]->(b), (b)-[:tx]->(c), (c)-[:tx]->(a) "
            "WHERE a.flagged = 1 RETURN a, b, c")
        query.set_node(10, flagged=1)
        query.insert(10, 20, "tx")
        query.insert(20, 30, "tx")
        results = query.insert(30, 10, "tx")
        # Only the rotation anchored at the flagged account qualifies.
        assert results == [{"a": 10, "b": 20, "c": 30}]
        assert query.pending_count == 2  # the other rotations wait
