"""Tests for continuous subgraph pattern matching."""

import pytest

from repro.core import GraphError
from repro.graph import (
    ContinuousPatternQuery,
    Pattern,
    PatternEdge,
    PropertyGraph,
    find_matches,
)


class TestPatternParsing:
    def test_parse_single_edge(self):
        pattern = Pattern.parse("a -knows-> b")
        assert pattern.edges == [PatternEdge("a", "b", "knows")]
        assert pattern.variables == ["a", "b"]

    def test_parse_multi_edge(self):
        pattern = Pattern.parse("a -knows-> b, b -knows-> c")
        assert len(pattern) == 2

    def test_bad_syntax(self):
        with pytest.raises(GraphError):
            Pattern.parse("a knows b")

    def test_empty_pattern_rejected(self):
        with pytest.raises(GraphError):
            Pattern([])


class TestFindMatches:
    @pytest.fixture
    def triangle(self):
        g = PropertyGraph()
        g.add_edge("e1", 1, 2, "r")
        g.add_edge("e2", 2, 3, "r")
        g.add_edge("e3", 3, 1, "r")
        g.add_edge("e4", 1, 4, "r")  # a dangling edge
        return g

    def test_single_edge_pattern(self, triangle):
        matches = find_matches(triangle, Pattern.parse("x -r-> y"))
        assert len(matches) == 4

    def test_path_pattern(self, triangle):
        matches = find_matches(triangle,
                               Pattern.parse("x -r-> y, y -r-> z"))
        found = {(m["x"], m["y"], m["z"]) for m in matches}
        assert (1, 2, 3) in found
        assert (3, 1, 4) in found

    def test_triangle_pattern(self, triangle):
        matches = find_matches(
            triangle, Pattern.parse("x -r-> y, y -r-> z, z -r-> x"))
        found = {(m["x"], m["y"], m["z"]) for m in matches}
        # The triangle in each rotation.
        assert found == {(1, 2, 3), (2, 3, 1), (3, 1, 2)}

    def test_injectivity(self):
        g = PropertyGraph()
        g.add_edge("e1", 1, 2, "r")
        g.add_edge("e2", 2, 1, "r")
        matches = find_matches(g, Pattern.parse("x -r-> y, y -r-> z"))
        # z == x would be 1->2->1; injectivity forbids it.
        assert matches == []

    def test_label_mismatch(self, triangle):
        assert find_matches(triangle, Pattern.parse("x -other-> y")) == []


class TestContinuousPatternQuery:
    def test_match_emitted_when_completed(self):
        query = ContinuousPatternQuery("x -r-> y, y -r-> z")
        assert query.insert(1, 2, "r") == []
        new = query.insert(2, 3, "r")
        assert new == [{"x": 1, "y": 2, "z": 3}]

    def test_each_match_reported_once(self):
        query = ContinuousPatternQuery("x -r-> y, y -r-> z")
        query.insert(1, 2, "r")
        query.insert(2, 3, "r")
        # A second parallel edge creates no *new* variable binding.
        assert query.insert(2, 3, "r") == []
        assert len(query.matches()) == 1

    def test_new_edge_can_complete_many_matches(self):
        query = ContinuousPatternQuery("x -r-> y, y -r-> z")
        query.insert(1, 10, "r")
        query.insert(2, 10, "r")
        new = query.insert(10, 99, "r")
        assert len(new) == 2

    def test_triangle_closure(self):
        query = ContinuousPatternQuery("x -r-> y, y -r-> z, z -r-> x")
        query.insert(1, 2, "r")
        query.insert(2, 3, "r")
        new = query.insert(3, 1, "r")
        assert {(m["x"], m["y"], m["z"]) for m in new} == \
            {(1, 2, 3), (2, 3, 1), (3, 1, 2)}

    def test_self_loop_rejected_by_injectivity(self):
        query = ContinuousPatternQuery("x -r-> y")
        assert query.insert(1, 1, "r") == []

    def test_self_loop_pattern(self):
        query = ContinuousPatternQuery(
            Pattern([PatternEdge("x", "x", "self")]))
        assert query.insert(5, 5, "self") == [{"x": 5}]
        assert query.insert(5, 6, "self") == []

    def test_label_filtering(self):
        query = ContinuousPatternQuery("x -follows-> y")
        assert query.insert(1, 2, "blocks") == []
        assert query.insert(1, 2, "follows") == [{"x": 1, "y": 2}]

    def test_continuous_equals_batch(self):
        edges = [(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (4, 1)]
        query = ContinuousPatternQuery("x -r-> y, y -r-> z")
        emitted = []
        graph = PropertyGraph()
        for i, (src, dst) in enumerate(edges):
            emitted.extend(query.insert(src, dst, "r"))
            graph.add_edge(f"e{i}", src, dst, "r")
        batch = find_matches(graph, Pattern.parse("x -r-> y, y -r-> z"))
        as_tuples = lambda ms: sorted(  # noqa: E731
            (m["x"], m["y"], m["z"]) for m in ms)
        assert as_tuples(emitted) == as_tuples(batch)
