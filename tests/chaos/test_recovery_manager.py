"""Tests for RecoveryManager and the restore-and-replay drivers."""

import pytest

import repro.obs as obs
from repro.chaos import Checkpoint, CrashFuse, InjectedCrash, \
    RecoveryManager, run_with_recovery
from repro.core.errors import StateError


class Register:
    """The smallest snapshot-capable target: one accumulating list."""

    def __init__(self):
        self.items = []

    def apply(self, item):
        self.items.append(item)

    def snapshot(self):
        return list(self.items)

    def restore(self, state):
        self.items = list(state)


class TestCheckpointing:
    def test_interval_and_keep_must_be_positive(self):
        with pytest.raises(StateError):
            RecoveryManager(Register(), interval=0)
        with pytest.raises(StateError):
            RecoveryManager(Register(), keep=0)

    def test_start_takes_the_baseline_once(self):
        manager = RecoveryManager(Register(), interval=2)
        first = manager.start()
        assert (first.checkpoint_id, first.offset) == (1, 0)
        assert manager.start() is first

    def test_committed_checkpoints_on_the_interval(self):
        manager = RecoveryManager(Register(), interval=3)
        manager.start()
        assert manager.committed(1) is None
        assert manager.committed(2) is None
        taken = manager.committed(3)
        assert isinstance(taken, Checkpoint) and taken.offset == 3
        assert manager.committed(4) is None

    def test_pruning_keeps_the_newest(self):
        manager = RecoveryManager(Register(), interval=1, keep=2)
        for offset in range(5):
            manager.checkpoint(offset)
        assert [c.offset for c in manager.checkpoints] == [3, 4]
        assert manager.latest().offset == 4

    def test_snapshot_is_isolated_from_later_mutation(self):
        target = Register()
        manager = RecoveryManager(target, interval=1)
        target.apply("a")
        manager.checkpoint(1)
        target.apply("b")
        manager.recover()
        assert target.items == ["a"]


class TestRecovery:
    def test_recover_without_checkpoint_raises(self):
        with pytest.raises(StateError):
            RecoveryManager(Register()).recover()

    def test_backoff_schedule_is_exponential_and_capped(self):
        naps = []
        manager = RecoveryManager(Register(), backoff_base=0.1,
                                  backoff_cap=0.5, sleep=naps.append)
        for failure in (1, 2, 3, 4):
            manager.backoff(failure)
        assert manager.backoffs == [0.1, 0.2, 0.4, 0.5]
        assert naps == manager.backoffs

    def test_zero_base_skips_sleeping(self):
        manager = RecoveryManager(
            Register(), backoff_base=0.0,
            sleep=lambda _d: pytest.fail("slept on zero backoff"))
        assert manager.backoff(3) == 0.0


class TestRunWithRecovery:
    def driver(self, fuse, **kwargs):
        target = Register()

        def apply(unit, _index):
            target.apply(unit)
            if fuse.record():
                raise InjectedCrash(f"boom at {unit}")

        manager = RecoveryManager(target, sleep=lambda _d: None,
                                  backoff_base=0.0, **kwargs)
        return target, apply, manager

    def test_replays_to_the_same_result(self):
        fuse = CrashFuse(at=4)
        target, apply, manager = self.driver(fuse, interval=2)
        run_with_recovery(list("abcdef"), apply, manager)
        assert target.items == list("abcdef")
        assert fuse.fired == 1
        assert manager.attempts == 1
        # Crashed applying "d" (index 3); newest checkpoint covered 2
        # units, so "c" and the torn "d" were replayed.
        assert manager.replayed_records == 1

    def test_retry_bound_reraises(self):
        fuse = CrashFuse(at=2, times=10)    # refires forever
        _target, apply, manager = self.driver(fuse, interval=1,
                                              max_retries=3)
        with pytest.raises(InjectedCrash):
            run_with_recovery(list("abc"), apply, manager)
        assert manager.attempts == 3        # retried, then gave up
        assert len(manager.backoffs) == 3   # backed off before each retry

    def test_unknown_errors_propagate_without_recovery(self):
        target = Register()

        def apply(unit, _index):
            raise RuntimeError("not injected")

        manager = RecoveryManager(target, interval=1)
        with pytest.raises(RuntimeError):
            run_with_recovery(["a"], apply, manager)
        assert manager.attempts == 0

    def test_unit_size_weights_replay_volume(self):
        fuse = CrashFuse(at=3)
        target, apply, manager = self.driver(fuse, interval=10)
        run_with_recovery([2, 3, 4], apply, manager,
                          unit_size=lambda unit: unit)
        assert target.items == [2, 3, 4]
        assert manager.replayed_records == 5   # units 2 and 3 re-applied


class TestObsIntegration:
    def test_counters_and_span_published_when_enabled(self):
        obs.reset()
        obs.enable()
        try:
            fuse = CrashFuse(at=3)
            target = Register()

            def apply(unit, _index):
                target.apply(unit)
                if fuse.record():
                    raise InjectedCrash("boom")

            manager = RecoveryManager(target, interval=2,
                                      sleep=lambda _d: None,
                                      backoff_base=0.0, label="test")
            run_with_recovery(list("abcd"), apply, manager)
            registry = obs.get_registry()
            assert registry.counter("recovery.attempts",
                                    target="test").value == 1
            assert registry.counter("checkpoint.taken",
                                    target="test").value > 0
            assert registry.counter("checkpoint.bytes",
                                    target="test").value > 0
            assert registry.counter("recovery.replayed_records",
                                    target="test").value == \
                manager.replayed_records
        finally:
            obs.reset()
            obs.disable()

    def test_silent_when_disabled(self):
        manager = RecoveryManager(Register(), interval=1)
        manager.checkpoint(0)
        manager.recover()   # must not touch the registry
        assert manager.attempts == 1
