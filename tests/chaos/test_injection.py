"""Tests for the fault-injection primitives (repro.chaos.injection)."""

import pytest

from repro.chaos import ChaosBroker, CrashFuse, InjectedCrash, SourceStall, \
    install_crash
from repro.difftest.generators import OBS_SCHEMA, build_engine
from repro.core import Stream
from repro.runtime import Broker, ConsumerGroup


class TestCrashFuse:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashFuse(at=0)

    def test_fires_once_at_threshold(self):
        fuse = CrashFuse(at=3)
        assert not fuse.record()
        assert not fuse.record()
        assert fuse.record()          # count reaches 3
        assert fuse.fired == 1
        assert not fuse.record()      # spent: keeps counting, never refires
        assert fuse.count == 4

    def test_bulk_progress_counts(self):
        fuse = CrashFuse(at=5)
        assert not fuse.record(4)
        assert fuse.record(4)         # jumps past the threshold

    def test_times_allows_repeat_firing(self):
        fuse = CrashFuse(at=2, times=2)
        assert fuse.record(2)
        assert fuse.record(1)
        assert not fuse.record(1)
        assert fuse.fired == 2


OBS_ROWS = [({"id": i, "room": "ab"[i % 2], "temp": i % 5}, i)
            for i in range(8)]


class TestInstallCrash:
    def make_query(self):
        engine = build_engine()
        return engine.register_query(
            "SELECT id, temp FROM Obs [Range 3]", kernel=True)

    def test_crash_fires_after_state_mutation(self):
        query = self.make_query()
        query.start()
        fuse = CrashFuse(at=1)
        label = install_crash(query, 0, fuse)
        with pytest.raises(InjectedCrash) as excinfo:
            query.push_batch(0, {"Obs": [OBS_ROWS[0][0]]})
        assert label in str(excinfo.value)
        assert fuse.fired == 1
        # Torn state: the operator absorbed the batch before crashing.
        _, crashed = query.operators()[0]
        assert crashed.received > 0

    def test_position_selects_the_operator(self):
        query = self.make_query()
        ops = query.operators()
        fuse = CrashFuse(at=10_000)   # never fires
        label = install_crash(query, len(ops) - 1, fuse)
        assert label == ops[-1][0]

    def test_spent_fuse_leaves_the_query_working(self):
        stream = Stream.of_records(OBS_SCHEMA, OBS_ROWS)
        clean = self.make_query()
        clean.run_recorded({"Obs": stream})
        query = self.make_query()
        fuse = CrashFuse(at=10_000)   # armed but past the stream's end
        install_crash(query, 0, fuse)
        query.run_recorded({"Obs": stream})
        assert fuse.fired == 0
        assert query.as_relation() == clean.as_relation()


class TestChaosBroker:
    def filled_broker(self, n=20):
        broker = Broker()
        broker.create_topic("t", partitions=1)
        for i in range(n):
            broker.produce("t", i, key="k")
        return broker

    def test_faults_are_tallied_and_seeded(self):
        broker = self.filled_broker()
        chaos = ChaosBroker(broker, seed=3, drop=0.3, duplicate=0.3,
                            reorder=1.0)
        first = [r.offset for r in chaos.fetch("t", 0, 0)]
        assert chaos.faults["dropped"] > 0
        assert chaos.faults["duplicated"] > 0
        assert chaos.faults["reordered"] > 0
        again = [r.offset
                 for r in ChaosBroker(broker, seed=3, drop=0.3,
                                      duplicate=0.3,
                                      reorder=1.0).fetch("t", 0, 0)]
        assert first == again  # same seed, same chaos

    def test_zero_rates_are_transparent(self):
        broker = self.filled_broker(5)
        chaos = ChaosBroker(broker, seed=0)
        assert [r.value for r in chaos.fetch("t", 0, 0)] == list(range(5))
        assert not chaos.faults

    def test_delegates_everything_else(self):
        chaos = ChaosBroker(self.filled_broker(4), seed=0)
        assert chaos.topic("t").partition_count == 1
        chaos.produce("t", 99, key="k")  # durable: goes to the real log
        assert [r.value for r in chaos.fetch("t", 0, 4)] == [99]


class TestPollUnderChaos:
    """The consumer group must see each offset exactly once, in order,
    whatever the transport does (the cumulative-ack discipline)."""

    def run_chaos(self, seed, n=30):
        broker = Broker()
        broker.create_topic("t", partitions=2)
        produced = []
        for i in range(n):
            record = broker.produce("t", i, key=str(i % 4))
            produced.append((record.partition, record.offset, i))
        chaos = ChaosBroker(broker, seed=seed, drop=0.25, duplicate=0.25,
                            reorder=0.5)
        group = ConsumerGroup(chaos, "g", ["t"])
        group.join("m")
        consumed = []
        for _ in range(500):
            batch = group.poll("m")
            consumed.extend((r.partition, r.offset, r.value) for r in batch)
            if len(consumed) >= n:
                break
        return produced, consumed, chaos

    def test_exactly_once_in_order_despite_faults(self):
        produced, consumed, chaos = self.run_chaos(seed=1)
        assert sorted(consumed) == sorted(produced)
        for partition in (0, 1):
            offsets = [o for p, o, _ in consumed if p == partition]
            assert offsets == sorted(offsets)  # in order
            assert len(offsets) == len(set(offsets))  # no duplicates
        assert sum(chaos.faults.values()) > 0  # the chaos actually happened


class TestSourceStall:
    def test_holds_only_the_target_source_in_the_window(self):
        stall = SourceStall("quiet", after=1, duration=2)
        assert stall.admit("quiet", "a")       # step 0: before the window
        assert stall.admit("live", "b")        # step 1: wrong source
        assert stall.stalling
        assert not stall.admit("quiet", "c")   # step 2: stalled
        assert stall.admit("quiet", "d")       # step 3: window over
        assert stall.release() == ["c"]
        assert stall.release() == []

    def test_stall_trips_idle_timeout_then_recovers(self):
        from tests.exec.test_idle_sources import stalled_plan

        plan, sink = stalled_plan(idle_timeout=2)
        plan.open()
        plan.advance_watermark("live", 10)
        stall = SourceStall("quiet", after=0, duration=10)
        for value in range(4):
            for source in ("live", "quiet"):
                if stall.admit(source, value):
                    plan.push(source, value)
        assert sink.marks == [10]   # the stalled source tripped the timeout
        for value in stall.release():
            plan.push("quiet", value)   # late delivery reactivates it
        plan.advance_watermark("live", 20)
        assert sink.marks == [10]   # holding again
        plan.advance_watermark("quiet", 30)
        assert sink.marks == [10, 20]
