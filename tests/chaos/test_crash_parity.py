"""Crash-recovery parity: a recovered run is indistinguishable from a
fault-free one.

The satellite suite behind the kernel-crashed oracle leg: for each
scenario (windows, equijoin, grouped aggregate, R2S sampling,
partitioned rows) every operator position of the kernel plan is crashed
exactly once mid-stream, recovered through :class:`RecoveryManager`, and
the final emissions and change-log are compared against the fault-free
run.  A second family drives the whole :class:`DSMSEngine` through the
same protocol, and a bounded seeded chaos-fuzz keeps the broker's
cumulative-ack consumption honest under drop/dup/reorder.
"""

import random

import pytest

from repro.chaos import ChaosBroker, CrashFuse, InjectedCrash, \
    RecoveryManager, install_crash, run_query_with_recovery
from repro.core import PlanError, Stream
from repro.difftest.generators import (
    ALERTS_SCHEMA,
    OBS_SCHEMA,
    build_engine,
)
from repro.dsms import DSMSEngine
from repro.dsms.shedding import NoShedding
from repro.runtime import Broker, ConsumerGroup

OBS_ROWS = [({"id": i, "room": "ab"[i % 2], "temp": (i * 3) % 7}, i)
            for i in range(10)]
ALERTS_ROWS = [({"id": i, "level": i % 3}, i + 1) for i in range(0, 10, 2)]

SCENARIOS = {
    "range-window": "SELECT id, temp FROM Obs [Range 4] WHERE temp > 2",
    "sliding-window": "SELECT id, room FROM Obs [Range 6 Slide 2]",
    "equijoin": ("SELECT O.id, A.level FROM Obs O [Range 3], "
                 "Alerts A [Range 4] WHERE O.id = A.id"),
    "relation-join": ("SELECT O.id, R.floor FROM Obs O [Rows 4], "
                      "Rooms R WHERE O.room = R.room"),
    "aggregate": ("SELECT ISTREAM room, MAX(temp) FROM Obs [Range 4] "
                  "GROUP BY room"),
    "r2s-istream": "SELECT ISTREAM id, temp FROM Obs [Rows 3]",
    "partitioned": "SELECT id, temp FROM Obs [Partition By room Rows 2]",
}


def scenario_streams():
    return {"Obs": Stream.of_records(OBS_SCHEMA, OBS_ROWS),
            "Alerts": Stream.of_records(ALERTS_SCHEMA, ALERTS_ROWS)}


def fresh_query(text):
    query = build_engine().register_query(text, kernel=True)
    streams = {name: stream for name, stream in scenario_streams().items()
               if name in query._stream_sources}
    return query, streams


def outputs(query):
    stream = query.emitted_stream()
    return (list(zip(stream.timestamps(), stream.values())),
            [(t, sorted(bag, key=repr))
             for t, bag in query.as_relation().snapshots()])


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_crash_each_operator_once(scenario):
    text = SCENARIOS[scenario]
    clean, streams = fresh_query(text)
    clean.run_recorded(streams)
    expected = outputs(clean)
    positions = len(clean.operators())
    assert positions >= 2   # every scenario exercises a real tree

    for position in range(positions):
        query, streams = fresh_query(text)
        fuse = CrashFuse(at=4)   # mid-stream: every op sees >= 10 instants
        label = install_crash(query, position, fuse)
        manager = RecoveryManager(query, interval=2,
                                  sleep=lambda _d: None, backoff_base=0.0)
        run_query_with_recovery(query, streams, manager)
        where = f"{scenario}: crashed {label} at position {position}"
        assert fuse.fired == 1, where
        assert manager.attempts == fuse.fired, where
        assert outputs(query) == expected, where


def test_recovery_survives_repeated_crashes_in_one_run():
    text = SCENARIOS["aggregate"]
    clean, streams = fresh_query(text)
    clean.run_recorded(streams)
    query, streams = fresh_query(text)
    fuse = CrashFuse(at=6, times=3)   # refires after every recovery
    install_crash(query, 1, fuse)
    manager = RecoveryManager(query, interval=1, sleep=lambda _d: None,
                              backoff_base=0.0, max_retries=5)
    run_query_with_recovery(query, streams, manager)
    assert fuse.fired == 3
    assert manager.attempts == 3
    assert outputs(query) == outputs(clean)


def test_unrecoverable_crash_reraises_after_retry_budget():
    query, streams = fresh_query(SCENARIOS["range-window"])
    fuse = CrashFuse(at=4, times=1000)   # fires on every attempt
    install_crash(query, 0, fuse)
    manager = RecoveryManager(query, interval=2, sleep=lambda _d: None,
                              backoff_base=0.0, max_retries=2)
    with pytest.raises(InjectedCrash):
        run_query_with_recovery(query, streams, manager)
    assert manager.attempts == 2


class TestDSMSRecovery:
    QUERY = "SELECT ISTREAM id FROM Obs [Range 4] WHERE temp > 2"

    def build(self, recovery_interval=None):
        engine = DSMSEngine(recovery_interval=recovery_interval)
        engine.register_stream("Obs", OBS_SCHEMA)
        handle = engine.register_query("q", self.QUERY,
                                       shedder=NoShedding())
        return engine, handle

    def drive(self, engine):
        for record, t in OBS_ROWS:
            engine.ingest("Obs", record, t)
            engine.run_until_idle()
        engine.advance_time(20)

    def test_engine_wide_crash_recovery_matches_fault_free(self):
        clean_engine, clean = self.build()
        self.drive(clean_engine)
        engine, handle = self.build(recovery_interval=2)
        fuse = CrashFuse(at=8)
        install_crash(handle.query, 1, fuse)
        self.drive(engine)
        assert fuse.fired == 1
        assert engine.recovery.attempts == 1
        assert engine.recovery.replayed_records > 0
        assert handle.emissions() == clean.emissions()
        assert handle.query.as_relation() == clean.query.as_relation()

    def test_without_recovery_the_crash_propagates(self):
        engine, handle = self.build()
        install_crash(handle.query, 1, CrashFuse(at=8))
        with pytest.raises(InjectedCrash):
            self.drive(engine)

    def test_restart_budget_is_bounded(self):
        engine = DSMSEngine(recovery_interval=2, max_restarts=2)
        engine.register_stream("Obs", OBS_SCHEMA)
        handle = engine.register_query("q", self.QUERY,
                                       shedder=NoShedding())
        install_crash(handle.query, 1, CrashFuse(at=8, times=1000))
        with pytest.raises(InjectedCrash):
            self.drive(engine)
        assert engine.recovery.attempts == 2

    def test_recovery_is_incompatible_with_sharing(self):
        with pytest.raises(PlanError):
            DSMSEngine(sharing=True, recovery_interval=2)


@pytest.mark.difftest
def test_seeded_broker_chaos_fuzz():
    """Bounded chaos-fuzz: for many seeds and fault mixes the consumer
    group must deliver every offset exactly once, in order."""
    total_faults = 0
    for seed in range(25):
        rng = random.Random(seed)
        broker = Broker()
        broker.create_topic("t", partitions=rng.randint(1, 3))
        n = rng.randint(10, 50)
        produced = []
        for i in range(n):
            record = broker.produce("t", i, key=str(i % 5))
            produced.append((record.partition, record.offset, i))
        chaos = ChaosBroker(broker, seed=seed,
                            drop=rng.uniform(0.0, 0.4),
                            duplicate=rng.uniform(0.0, 0.4),
                            reorder=rng.uniform(0.0, 0.8))
        group = ConsumerGroup(chaos, "g", ["t"])
        group.join("m")
        consumed = []
        for _ in range(2000):
            consumed.extend((r.partition, r.offset, r.value)
                            for r in group.poll("m"))
            if len(consumed) >= n:
                break
        assert sorted(consumed) == sorted(produced), f"seed {seed}"
        per_partition = {}
        for partition, offset, _value in consumed:
            per_partition.setdefault(partition, []).append(offset)
        for partition, offsets in per_partition.items():
            assert offsets == sorted(set(offsets)), \
                f"seed {seed} partition {partition}"
        total_faults += sum(chaos.faults.values())
    assert total_faults > 0   # the sweep injected real faults
