"""Tests for UNION / EXCEPT / INTERSECT over continuous queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParseError, PlanError, R2SKind, Schema, Stream
from repro.cql import (
    CQLEngine,
    SetStatement,
    parse_query,
    reference_evaluate,
)

A = Schema(["x", "tag"])
B = Schema(["y", "tag"])


def build_engine():
    engine = CQLEngine()
    engine.register_stream("A", A)
    engine.register_stream("B", B)
    return engine


def fixed_streams():
    return {
        "A": Stream.of_records(A, [
            ({"x": 1, "tag": "p"}, 1), ({"x": 2, "tag": "q"}, 3),
            ({"x": 1, "tag": "p"}, 5), ({"x": 3, "tag": "p"}, 9)]),
        "B": Stream.of_records(B, [
            ({"y": 1, "tag": "p"}, 2), ({"y": 4, "tag": "q"}, 4),
            ({"y": 2, "tag": "q"}, 8)]),
    }


class TestParsing:
    def test_union_all(self):
        stmt = parse_query("SELECT x FROM A UNION ALL SELECT y FROM B")
        assert isinstance(stmt, SetStatement)
        assert stmt.kind == "union"
        assert not stmt.distinct

    def test_plain_union_is_distinct(self):
        stmt = parse_query("SELECT x FROM A UNION SELECT y FROM B")
        assert stmt.distinct

    def test_except_and_intersect(self):
        assert parse_query(
            "SELECT x FROM A EXCEPT ALL SELECT y FROM B").kind == \
            "difference"
        assert parse_query(
            "SELECT x FROM A INTERSECT SELECT y FROM B").kind == \
            "intersection"

    def test_left_associative_chain(self):
        stmt = parse_query("SELECT x FROM A UNION ALL SELECT y FROM B "
                           "EXCEPT ALL SELECT x FROM A")
        assert stmt.kind == "difference"
        assert stmt.left.kind == "union"

    def test_r2s_wraps_whole_expression(self):
        stmt = parse_query(
            "ISTREAM (SELECT x FROM A UNION ALL SELECT y FROM B)")
        assert isinstance(stmt, SetStatement)
        assert stmt.r2s is R2SKind.ISTREAM
        assert stmt.left.r2s is None

    def test_r2s_on_operand_rejected(self):
        with pytest.raises(ParseError, match="whole"):
            parse_query("SELECT ISTREAM x FROM A UNION SELECT y FROM B")


class TestPlanning:
    def test_arity_mismatch_rejected(self):
        engine = build_engine()
        with pytest.raises(PlanError, match="arity"):
            engine.plan("SELECT x, tag FROM A UNION ALL SELECT y FROM B")

    def test_left_operand_names_output(self):
        engine = build_engine()
        plan = engine.plan("SELECT x AS v FROM A UNION ALL "
                           "SELECT y FROM B")
        assert plan.schema.fields == ("v",)


QUERIES = [
    "SELECT x FROM A [Range 6] UNION ALL SELECT y FROM B [Range 6]",
    "SELECT x FROM A [Range 6] UNION SELECT y FROM B [Range 6]",
    "SELECT x FROM A [Range 10] EXCEPT ALL SELECT y FROM B [Range 10]",
    "SELECT x FROM A [Range 10] INTERSECT ALL SELECT y FROM B [Range 10]",
    "SELECT x, tag FROM A [Rows 2] UNION ALL "
    "SELECT y, tag FROM B [Rows 2]",
    "ISTREAM (SELECT x FROM A [Range 5] UNION ALL "
    "SELECT y FROM B [Range 5])",
    "DSTREAM (SELECT x FROM A [Range 5] EXCEPT ALL "
    "SELECT y FROM B [Range 5])",
]


@pytest.mark.parametrize("query_text", QUERIES)
def test_executor_matches_reference(query_text):
    engine = build_engine()
    streams = fixed_streams()
    plan = engine.plan(query_text)
    query = engine.register_query(query_text)
    query.run_recorded(streams)
    reference = reference_evaluate(plan, engine.catalog, streams)
    if plan.op_name in ("istream", "dstream", "rstream"):
        produced = query.emitted_stream()
        assert produced.values() == reference.values()
        assert produced.timestamps() == reference.timestamps()
    else:
        assert query.as_relation() == reference


row_a = st.fixed_dictionaries({
    "x": st.integers(min_value=0, max_value=3),
    "tag": st.sampled_from(["p", "q"])})
row_b = st.fixed_dictionaries({
    "y": st.integers(min_value=0, max_value=3),
    "tag": st.sampled_from(["p", "q"])})


@st.composite
def set_workloads(draw):
    def make(schema, rows_strategy):
        n = draw(st.integers(min_value=0, max_value=8))
        rows = draw(st.lists(rows_strategy, min_size=n, max_size=n))
        gaps = draw(st.lists(st.integers(min_value=0, max_value=4),
                             min_size=n, max_size=n))
        t = 0
        pairs = []
        for row, gap in zip(rows, gaps):
            t += gap
            pairs.append((row, t))
        return Stream.of_records(schema, pairs)

    return {"A": make(A, row_a), "B": make(B, row_b)}


@settings(max_examples=25, deadline=None)
@given(streams=set_workloads(),
       query_index=st.integers(0, len(QUERIES) - 1))
def test_property_set_operations(streams, query_index):
    engine = build_engine()
    query_text = QUERIES[query_index]
    plan = engine.plan(query_text)
    query = engine.register_query(query_text)
    query.run_recorded(streams)
    reference = reference_evaluate(plan, engine.catalog, streams)
    if plan.op_name in ("istream", "dstream", "rstream"):
        produced = query.emitted_stream()
        assert produced.values() == reference.values()
        assert produced.timestamps() == reference.timestamps()
    else:
        assert query.as_relation() == reference
