"""Tests for the CQL/SQL tokenizer."""

import pytest

from repro.core import ParseError
from repro.cql import Token, TokenCursor, TokenType, tokenize


def kinds(text):
    return [(t.type, t.text) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("RoomObservation") == [
            (TokenType.IDENT, "RoomObservation")]

    def test_numbers(self):
        assert kinds("15 3.14") == [
            (TokenType.NUMBER, "15"), (TokenType.NUMBER, "3.14")]

    def test_malformed_number(self):
        with pytest.raises(ParseError):
            tokenize("1.2.3")

    def test_strings_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_multichar_symbols_greedy(self):
        assert kinds("<= <> >=") == [
            (TokenType.SYMBOL, "<="), (TokenType.SYMBOL, "<>"),
            (TokenType.SYMBOL, ">=")]

    def test_window_brackets(self):
        tokens = kinds("[Range 15 MIN]")
        assert tokens[0] == (TokenType.SYMBOL, "[")
        assert tokens[1] == (TokenType.KEYWORD, "RANGE")
        assert tokens[-1] == (TokenType.SYMBOL, "]")

    def test_line_comment_skipped(self):
        assert kinds("select -- a comment\n x") == [
            (TokenType.KEYWORD, "SELECT"), (TokenType.IDENT, "x")]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("select @")

    def test_eof_token_present(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_position_reported(self):
        tokens = tokenize("select foo")
        assert tokens[1].position == 7


class TestCursor:
    def test_match_and_expect(self):
        cursor = TokenCursor(tokenize("SELECT x"))
        assert cursor.match_keyword("SELECT")
        assert cursor.expect_ident().text == "x"
        assert cursor.at_end()

    def test_expect_failure_mentions_expected(self):
        cursor = TokenCursor(tokenize("x"))
        with pytest.raises(ParseError, match="SELECT"):
            cursor.expect_keyword("SELECT")

    def test_peek_ahead(self):
        cursor = TokenCursor(tokenize("a b"))
        assert cursor.peek(1).text == "b"
        assert cursor.peek(99).type is TokenType.EOF

    def test_semicolon_terminates(self):
        cursor = TokenCursor(tokenize("x ;"))
        cursor.advance()
        assert cursor.at_end()
