"""Tests for the incremental executor's operator behaviour."""

import pytest

from repro.core import Bag, PlanError, Schema, StateError, Stream
from repro.cql import CQLEngine


OBS = Schema(["id", "room", "temp"])


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    engine.register_relation(
        "Person", Schema(["id", "name"]),
        rows=[{"id": 1, "name": "ada"}, {"id": 2, "name": "bob"}])
    return engine


def rows(bag):
    return sorted(tuple(r.values) for r in bag)


class TestWindows:
    def test_now_window_expires_next_instant(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Now]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 20}, 10)
        assert rows(q.current()) == [(1,)]
        q.advance_to(11)
        assert rows(q.current()) == []

    def test_range_window_expiry_without_arrivals(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Range 5]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 20}, 10)
        q.advance_to(14)
        assert rows(q.current()) == [(1,)]
        q.advance_to(15)
        assert rows(q.current()) == []

    def test_rows_window_evicts_oldest(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Rows 2]")
        for i, t in [(1, 0), (2, 1), (3, 2)]:
            q.push("Obs", {"id": i, "room": "a", "temp": 0}, t)
        assert rows(q.current()) == [(2,), (3,)]

    def test_partitioned_window_per_key(self, engine):
        q = engine.register_query(
            "SELECT id, room FROM Obs [Partition By room Rows 1]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        q.push("Obs", {"id": 2, "room": "b", "temp": 0}, 1)
        q.push("Obs", {"id": 3, "room": "a", "temp": 0}, 2)
        assert rows(q.current()) == [(2, "b"), (3, "a")]

    def test_stepped_range_freezes_between_boundaries(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Range 10 Slide 5]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 3)
        # Not yet visible: next boundary is 5.
        assert rows(q.current()) == []
        q.advance_to(5)
        assert rows(q.current()) == [(1,)]
        # Expires at the first boundary >= 3 + 10 = 15.
        q.advance_to(14)
        assert rows(q.current()) == [(1,)]
        q.advance_to(15)
        assert rows(q.current()) == []

    def test_unbounded_never_expires(self, engine):
        q = engine.register_query("SELECT id FROM Obs")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        q.advance_to(10_000)
        assert rows(q.current()) == [(1,)]


class TestAggregates:
    def test_grouped_avg_updates_incrementally(self, engine):
        q = engine.register_query(
            "SELECT room, AVG(temp) AS a FROM Obs [Range 100] GROUP BY room")
        q.push("Obs", {"id": 1, "room": "a", "temp": 10}, 0)
        q.push("Obs", {"id": 2, "room": "a", "temp": 20}, 1)
        assert rows(q.current()) == [("a", 15)]

    def test_group_disappears_when_empty(self, engine):
        q = engine.register_query(
            "SELECT room, COUNT(*) AS n FROM Obs [Range 5] GROUP BY room")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        assert rows(q.current()) == [("a", 1)]
        q.advance_to(5)
        assert rows(q.current()) == []

    def test_global_count_reports_zero_after_expiry(self, engine):
        q = engine.register_query("SELECT COUNT(*) AS n FROM Obs [Range 5]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        q.advance_to(100)
        assert rows(q.current()) == [(0,)]

    def test_min_max_with_retraction(self, engine):
        q = engine.register_query(
            "SELECT MIN(temp) lo, MAX(temp) hi FROM Obs [Range 10]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 30}, 0)
        q.push("Obs", {"id": 2, "room": "a", "temp": 10}, 5)
        assert rows(q.current()) == [(10, 30)]
        q.advance_to(10)  # temp=30 expires
        assert rows(q.current()) == [(10, 10)]

    def test_sum_of_nulls_is_null(self, engine):
        q = engine.register_query("SELECT SUM(temp) s FROM Obs [Range 10]")
        q.push("Obs", {"id": 1, "room": "a", "temp": None}, 0)
        assert rows(q.current()) == [(None,)]

    def test_having_filters_groups(self, engine):
        q = engine.register_query(
            "SELECT room FROM Obs [Range 100] GROUP BY room "
            "HAVING COUNT(*) >= 2")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        assert rows(q.current()) == []
        q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 1)
        assert rows(q.current()) == [("a",)]


class TestJoinsAndRelations:
    def test_stream_relation_join(self, engine):
        q = engine.register_query(
            "SELECT P.name FROM Obs O [Range 100], Person P "
            "WHERE O.id = P.id")
        q.start()
        q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 1)
        assert rows(q.current()) == [("bob",)]

    def test_relation_update_propagates(self, engine):
        q = engine.register_query(
            "SELECT P.name FROM Obs O [Range 100], Person P "
            "WHERE O.id = P.id")
        q.start()
        q.push("Obs", {"id": 9, "room": "a", "temp": 0}, 1)
        assert rows(q.current()) == []
        q.update_relation("Person", {"id": 9, "name": "eve"}, +1, 2)
        assert rows(q.current()) == [("eve",)]
        q.update_relation("Person", {"id": 9, "name": "eve"}, -1, 3)
        assert rows(q.current()) == []

    def test_stream_stream_join(self, engine):
        engine.register_stream("Alerts", Schema(["id", "level"]))
        q = engine.register_query(
            "SELECT O.room, A.level FROM Obs O [Range 10], "
            "Alerts A [Range 10] WHERE O.id = A.id")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        q.push("Alerts", {"id": 1, "level": 3}, 2)
        assert rows(q.current()) == [("a", 3)]
        q.advance_to(10)  # the Obs tuple expires; join result retracts
        assert rows(q.current()) == []

    def test_theta_join_residual(self, engine):
        engine.register_stream("Alerts", Schema(["id", "level"]))
        q = engine.register_query(
            "SELECT O.id FROM Obs O [Range 100], Alerts A [Range 100] "
            "WHERE O.temp > A.level")
        q.push("Obs", {"id": 1, "room": "a", "temp": 5}, 0)
        q.push("Alerts", {"id": 9, "level": 3}, 1)
        q.push("Alerts", {"id": 9, "level": 7}, 2)
        assert rows(q.current()) == [(1,)]


class TestR2SOutputs:
    def test_istream_emissions(self, engine):
        q = engine.register_query("SELECT ISTREAM id FROM Obs [Range 5]")
        emitted = q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        assert [(e.record["id"], e.timestamp) for e in emitted] == [(1, 0)]
        # Expiry produces no ISTREAM output.
        assert q.advance_to(100) == []

    def test_dstream_emissions(self, engine):
        q = engine.register_query("SELECT DSTREAM id FROM Obs [Range 5]")
        assert q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0) == []
        emitted = q.advance_to(5)
        assert [(e.record["id"], e.timestamp) for e in emitted] == [(1, 5)]

    def test_rstream_emits_full_state(self, engine):
        q = engine.register_query("SELECT RSTREAM id FROM Obs [Range 100]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        emitted = q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 1)
        assert sorted(e.record["id"] for e in emitted) == [1, 2]

    def test_distinct_transitions(self, engine):
        q = engine.register_query(
            "SELECT ISTREAM DISTINCT room FROM Obs [Range 100]")
        first = q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        second = q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 1)
        assert len(first) == 1
        assert second == []  # duplicate room produces no new distinct row


class TestDriverContract:
    def test_out_of_order_push_rejected(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Now]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 10)
        with pytest.raises(StateError, match="order"):
            q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 5)

    def test_push_unknown_stream_rejected(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Now]")
        with pytest.raises(PlanError):
            q.push("Nope", {"id": 1}, 0)

    def test_same_timestamp_batches_allowed(self, engine):
        q = engine.register_query("SELECT COUNT(*) n FROM Obs [Range 10]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 5)
        q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 5)
        assert rows(q.current()) == [(2,)]

    def test_emitted_stream_is_ordered(self, engine):
        q = engine.register_query("SELECT ISTREAM id FROM Obs [Range 3]")
        q.push("Obs", {"id": 2, "room": "a", "temp": 0}, 0)
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 4)
        stream = q.emitted_stream()
        assert stream.timestamps() == [0, 4]

    def test_finish_drains_agenda(self, engine):
        q = engine.register_query("SELECT DSTREAM id FROM Obs [Range 50]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        emitted = q.finish()
        assert [e.timestamp for e in emitted] == [50]

    def test_deltas_processed_counter(self, engine):
        q = engine.register_query("SELECT id FROM Obs [Range 5]")
        q.push("Obs", {"id": 1, "room": "a", "temp": 0}, 0)
        before = q.deltas_processed
        q.finish()
        assert q.deltas_processed > before
