"""Regression tests for ``ContinuousQuery.as_relation`` change-log export.

A DSMS services one tuple per scheduling quantum, so several states are
appended to the executor's log at a single instant.  ``as_relation`` must
collapse those to the last state per instant *without* corrupting earlier
instants — the historical bug popped the relation's tail after ``set_at``
had already coalesced a no-op state, silently deleting an earlier change
point.
"""

from repro.core import Schema, Stream
from repro.cql import CQLEngine, reference_evaluate
from repro.dsms import DSMSEngine

OBS = Schema(["id", "room", "temp"])
ALERTS = Schema(["id", "level"])


def test_per_tuple_pushes_collapse_to_last_state_per_instant():
    """Same-instant pushes whose intermediate state returns to the prior
    instant's value must not erase that prior instant."""
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    query = engine.register_query(
        "SELECT COUNT(*) AS n FROM Obs [Rows 1]")
    query.start()
    query.push("Obs", {"id": 0, "room": "a", "temp": 1}, 1)
    # Two pushes at t=7: each replaces the [Rows 1] content, so the state
    # oscillates n=1 -> n=1 (coalesced no-op) within the instant.
    query.push("Obs", {"id": 1, "room": "a", "temp": 2}, 7)
    query.push("Obs", {"id": 2, "room": "a", "temp": 3}, 7)
    query.finish()
    relation = query.as_relation()
    # The change point at t=1 must survive.
    assert len(relation.at(1)) == 1
    assert [t for t, _ in relation.snapshots()] == sorted(
        {t for t, _ in relation.snapshots()})


def test_dsms_per_tuple_state_matches_reference():
    """The shrunk fuzz counterexample that exposed the corruption: a
    windowed equijoin driven tuple-at-a-time through the DSMS."""
    query_text = ("SELECT O.id, A.level FROM Obs O [Rows 2], "
                  "Alerts A [Rows 1] WHERE O.id = A.id")
    obs_rows = [({"id": 1, "room": "a", "temp": None}, 1),
                ({"id": 1, "room": "a", "temp": 0}, 2),
                ({"id": 0, "room": "a", "temp": None}, 2),
                ({"id": 0, "room": "a", "temp": 0}, 2)]
    alert_rows = [({"id": 1, "level": 0}, 1)]

    dsms = DSMSEngine(queue_capacity=1000)
    dsms.register_stream("Obs", OBS)
    dsms.register_stream("Alerts", ALERTS)
    handle = dsms.register_query("q", query_text)
    arrivals = sorted(
        [(t, "Obs", row) for row, t in obs_rows]
        + [(t, "Alerts", row) for row, t in alert_rows],
        key=lambda item: item[0])
    for t, name, row in arrivals:
        dsms.ingest(name, row, t)
        dsms.run_until_idle()
    handle.query.finish()

    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    engine.register_stream("Alerts", ALERTS)
    reference = reference_evaluate(
        engine.plan(query_text), engine.catalog,
        {"Obs": Stream.of_records(OBS, obs_rows),
         "Alerts": Stream.of_records(ALERTS, alert_rows)})
    got = handle.query.as_relation()
    assert got == reference
    # The join result at t=1 (id=1 matches) used to vanish from the log.
    assert len(got.at(1)) == 1
    assert len(got.at(2)) == 0
