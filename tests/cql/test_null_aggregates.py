"""Empty-group / NULL aggregate semantics, pinned across both evaluators.

The chosen semantics (documented in DESIGN.md) is standard SQL:

* ``COUNT(*)`` counts rows, NULL-bearing or not.
* ``COUNT(expr)`` counts only rows where ``expr`` is non-NULL.
* ``SUM/AVG/MIN/MAX`` over an empty or all-NULL value set return NULL.
* A keyed group whose rows all expire disappears; the global group keeps
  reporting its zero row (``COUNT = 0``, other aggregates NULL).
* A NULL join key never matches anything (``NULL = NULL`` is unknown) —
  including through the optimiser's hash equijoin.

Every test asserts the reference evaluator and the incremental executor
produce identical instant-by-instant results on NULL-bearing streams.
"""

from repro.core import Schema, Stream
from repro.cql import CQLEngine, reference_evaluate

OBS = Schema(["id", "room", "temp"])
ALERTS = Schema(["id", "level"])


def _engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    engine.register_stream("Alerts", ALERTS)
    return engine


def _both(query, streams):
    """(reference relation, executor relation) for a relation query."""
    engine = _engine()
    plan = engine.plan(query)
    reference = reference_evaluate(plan, engine.catalog, streams)
    query_exec = _engine().register_query(query)
    query_exec.run_recorded(
        {name: s for name, s in streams.items()
         if name in query_exec._stream_sources})
    return reference, query_exec


def _rows_at(relation, t):
    return sorted(
        (tuple(record) for record in relation.at(t)), key=repr)


class TestAllNullGroups:
    def test_sum_over_all_null_group_is_null_in_both(self):
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "a", "temp": None}, 1),
            ({"id": 1, "room": "a", "temp": None}, 1),
        ])}
        reference, executor = _both(
            "SELECT room, SUM(temp) AS s FROM Obs [Range 5] "
            "GROUP BY room", streams)
        assert _rows_at(reference, 1) == [("a", None)]
        assert executor.as_relation() == reference

    def test_count_star_vs_count_column_on_nulls(self):
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "a", "temp": None}, 0),
            ({"id": 1, "room": "a", "temp": 3}, 0),
            ({"id": 2, "room": "a", "temp": None}, 2),
        ])}
        reference, executor = _both(
            "SELECT COUNT(*) AS rows_, COUNT(temp) AS vals "
            "FROM Obs [Range 10]", streams)
        assert _rows_at(reference, 2) == [(3, 1)]
        assert executor.as_relation() == reference

    def test_avg_min_max_all_null_group(self):
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "b", "temp": None}, 0),
        ])}
        reference, executor = _both(
            "SELECT AVG(temp) AS a, MIN(temp) AS lo, MAX(temp) AS hi "
            "FROM Obs [Range 3]", streams)
        assert _rows_at(reference, 0) == [(None, None, None)]
        assert executor.as_relation() == reference

    def test_global_group_survives_expiry_keyed_group_disappears(self):
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "a", "temp": 4}, 0),
        ])}
        # Global: after the row expires at t=2, COUNT drops to 0 and SUM
        # to NULL — the zero row persists.
        reference, executor = _both(
            "SELECT COUNT(temp) AS n, SUM(temp) AS s FROM Obs [Range 2]",
            streams)
        assert _rows_at(reference, 0) == [(1, 4)]
        assert _rows_at(reference, 2) == [(0, None)]
        assert executor.as_relation() == reference
        # Keyed: the 'a' group vanishes entirely at t=2.
        reference, executor = _both(
            "SELECT room, COUNT(*) AS n FROM Obs [Range 2] GROUP BY room",
            streams)
        assert _rows_at(reference, 0) == [("a", 1)]
        assert _rows_at(reference, 2) == []
        assert executor.as_relation() == reference

    def test_transition_from_values_to_all_null_window(self):
        """As non-NULL rows expire and NULL rows remain, SUM must fall
        back to NULL (not 0) in both evaluators."""
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "a", "temp": 7}, 0),
            ({"id": 1, "room": "a", "temp": None}, 1),
        ])}
        reference, executor = _both(
            "SELECT SUM(temp) AS s, COUNT(*) AS n FROM Obs [Range 2]",
            streams)
        assert _rows_at(reference, 1) == [(7, 2)]
        assert _rows_at(reference, 2) == [(None, 1)]  # only the NULL row
        assert executor.as_relation() == reference

    def test_having_on_null_aggregate_filters_group(self):
        streams = {"Obs": Stream.of_records(OBS, [
            ({"id": 0, "room": "a", "temp": None}, 0),
            ({"id": 1, "room": "b", "temp": 5}, 0),
        ])}
        reference, executor = _both(
            "SELECT room, SUM(temp) AS s FROM Obs [Range 4] "
            "GROUP BY room HAVING SUM(temp) > 1", streams)
        # SUM over the all-NULL group is NULL; NULL > 1 is unknown, so
        # the 'a' group is filtered out — in both evaluators.
        assert _rows_at(reference, 0) == [("b", 5)]
        assert executor.as_relation() == reference


class TestNullJoinKeys:
    STREAMS = {
        "Obs": [({"id": None, "room": "a", "temp": 1}, 1),
                ({"id": 2, "room": "b", "temp": 3}, 1)],
        "Alerts": [({"id": None, "level": 9}, 1),
                   ({"id": 2, "level": 4}, 1)],
    }
    QUERY = ("SELECT O.room, A.level FROM Obs O [Range 10], "
             "Alerts A [Range 10] WHERE O.id = A.id")

    def _streams(self):
        return {"Obs": Stream.of_records(OBS, self.STREAMS["Obs"]),
                "Alerts": Stream.of_records(ALERTS, self.STREAMS["Alerts"])}

    def test_reference_naive_and_optimized_agree(self):
        """Regression: the optimiser's hash equijoin used to match NULL
        keys by tuple equality while the naive filtered cross product
        correctly rejected them."""
        engine = _engine()
        streams = self._streams()
        naive = reference_evaluate(
            engine.plan(self.QUERY, optimize=False), engine.catalog,
            streams)
        optimized = reference_evaluate(
            engine.plan(self.QUERY, optimize=True), engine.catalog,
            streams)
        assert naive == optimized
        assert _rows_at(naive, 1) == [("b", 4)]  # only the non-NULL match

    def test_executor_rejects_null_keys(self):
        reference, executor = _both(self.QUERY, self._streams())
        assert _rows_at(reference, 1) == [("b", 4)]
        assert executor.as_relation() == reference
