"""Differential tests: incremental executor vs reference evaluator.

The executor's contract (module docstring of :mod:`repro.cql.executor`)
says: with per-instant batching, the maintained state at every instant
equals the reference denotational semantics, and ISTREAM/DSTREAM outputs
equal the reference R2S streams.  These tests enforce that contract across
the whole query surface, including property-based random workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Schema, Stream
from repro.cql import CQLEngine, reference_evaluate

OBS = Schema(["id", "room", "temp"])
ALERT = Schema(["id", "level"])

#: Query texts covering every operator family the executor implements.
QUERIES = [
    # windows
    "SELECT id FROM Obs [Now]",
    "SELECT id, temp FROM Obs [Range 7]",
    "SELECT id FROM Obs [Range 12 Slide 5]",
    "SELECT id FROM Obs [Rows 3]",
    "SELECT id, room FROM Obs [Partition By room Rows 2]",
    "SELECT id FROM Obs",
    # selection / projection / computed columns
    "SELECT id FROM Obs [Range 9] WHERE temp > 15",
    "SELECT temp * 2 + 1 AS scaled FROM Obs [Range 6]",
    "SELECT DISTINCT room FROM Obs [Range 10]",
    # aggregation
    "SELECT COUNT(*) AS n FROM Obs [Range 8]",
    "SELECT room, COUNT(*) AS n, SUM(temp) AS s FROM Obs [Range 8] "
    "GROUP BY room",
    "SELECT room, AVG(temp) AS a FROM Obs [Range 10] GROUP BY room "
    "HAVING COUNT(*) >= 2",
    "SELECT MIN(temp) lo, MAX(temp) hi FROM Obs [Range 11]",
    "SELECT room, COUNT(temp) c FROM Obs [Rows 4] GROUP BY room",
    # joins
    "SELECT O.id, P.name FROM Obs O [Range 10], People P "
    "WHERE O.id = P.id",
    "SELECT O.id, A.level FROM Obs O [Range 9], Alerts A [Range 5] "
    "WHERE O.id = A.id",
    "SELECT O.id FROM Obs O [Range 10], Alerts A [Range 10] "
    "WHERE O.temp > A.level AND O.id = A.id",
    "SELECT A.id, B.id FROM Obs A [Rows 2], Obs B [Now] "
    "WHERE A.room = B.room",
    # aggregate over join
    "SELECT COUNT(P.id) AS n FROM People P, Obs O [Range 15] "
    "WHERE P.id = O.id",
    # grouped aggregate over a stream-stream join
    "SELECT O.room, COUNT(*) AS n FROM Obs O [Range 12], "
    "Alerts A [Range 12] WHERE O.id = A.id GROUP BY O.room",
    # scalar function + arithmetic in WHERE and SELECT
    "SELECT id, temp * 2 + 1 AS scaled FROM Obs [Range 10] "
    "WHERE ABS(temp - 20) < 15",
    # DISTINCT over a count-based window
    "SELECT DISTINCT room FROM Obs [Rows 3]",
    # MIN/MAX over a partitioned window
    "SELECT MIN(temp) lo, MAX(temp) hi FROM Obs "
    "[Partition By room Rows 2]",
    # HAVING over grouped join
    "SELECT A.id FROM Obs O [Range 20], Alerts A [Range 20] "
    "WHERE O.id = A.id GROUP BY A.id HAVING COUNT(*) >= 2",
]

R2S_QUERIES = [
    "SELECT ISTREAM id FROM Obs [Range 7]",
    "SELECT DSTREAM id FROM Obs [Range 7]",
    "SELECT RSTREAM id, temp FROM Obs [Rows 2]",
    "SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 6] GROUP BY room",
    "ISTREAM (SELECT O.id FROM Obs O [Range 8], Alerts A [Range 8] "
    "WHERE O.id = A.id)",
    "SELECT DSTREAM COUNT(*) AS n FROM Obs [Range 5]",
]


def build_engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    engine.register_stream("Alerts", ALERT)
    engine.register_relation(
        "People", Schema(["id", "name"]),
        rows=[{"id": 0, "name": "ada"}, {"id": 1, "name": "bob"},
              {"id": 2, "name": "cyn"}])
    return engine


def fixed_streams():
    obs = Stream.of_records(OBS, [
        ({"id": 0, "room": "a", "temp": 10}, 1),
        ({"id": 1, "room": "b", "temp": 20}, 3),
        ({"id": 2, "room": "a", "temp": 30}, 3),
        ({"id": 0, "room": "b", "temp": 25}, 8),
        ({"id": 3, "room": "a", "temp": 5}, 12),
        ({"id": 1, "room": "a", "temp": 17}, 15),
    ])
    alerts = Stream.of_records(ALERT, [
        ({"id": 0, "level": 2}, 2),
        ({"id": 2, "level": 7}, 5),
        ({"id": 1, "level": 1}, 12),
    ])
    return {"Obs": obs, "Alerts": alerts}


def assert_executor_matches_reference(query_text, streams):
    engine = build_engine()
    plan = engine.plan(query_text)
    query = engine.register_query(query_text)
    query.run_recorded({name: s for name, s in streams.items()
                        if name in query._stream_sources})
    reference = reference_evaluate(plan, engine.catalog, streams)
    if plan.op_name in ("istream", "dstream", "rstream"):
        produced = query.emitted_stream()
        assert produced.timestamps() == reference.timestamps(), \
            f"timestamps differ for {query_text!r}"
        assert produced.values() == reference.values(), \
            f"values differ for {query_text!r}"
    else:
        assert query.as_relation() == reference, \
            f"relation differs for {query_text!r}"


@pytest.mark.parametrize("query_text", QUERIES)
def test_relation_queries_match_reference(query_text):
    assert_executor_matches_reference(query_text, fixed_streams())


@pytest.mark.parametrize("query_text", R2S_QUERIES)
def test_r2s_queries_match_reference(query_text):
    assert_executor_matches_reference(query_text, fixed_streams())


@pytest.mark.parametrize("query_text", QUERIES[:8])
def test_unoptimized_plans_also_match(query_text):
    """The naive (cross join + filter) plans compute the same thing."""
    engine = build_engine()
    streams = fixed_streams()
    plan = engine.plan(query_text, optimize=False)
    query = engine.register_query(query_text, optimize=False)
    query.run_recorded({name: s for name, s in streams.items()
                        if name in query._stream_sources})
    reference = reference_evaluate(plan, engine.catalog, streams)
    assert query.as_relation() == reference


# ---------------------------------------------------------------------------
# Property-based: random streams, the whole query battery
# ---------------------------------------------------------------------------

observation = st.fixed_dictionaries({
    "id": st.integers(min_value=0, max_value=3),
    "room": st.sampled_from(["a", "b"]),
    "temp": st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
})

alert = st.fixed_dictionaries({
    "id": st.integers(min_value=0, max_value=3),
    "level": st.integers(min_value=0, max_value=9),
})


def make_stream(schema, rows, gaps):
    t = 0
    pairs = []
    for row, gap in zip(rows, gaps):
        t += gap
        pairs.append((row, t))
    return Stream.of_records(schema, pairs)


@st.composite
def workloads(draw):
    n_obs = draw(st.integers(min_value=0, max_value=12))
    n_alerts = draw(st.integers(min_value=0, max_value=6))
    obs_rows = draw(st.lists(observation, min_size=n_obs, max_size=n_obs))
    alert_rows = draw(st.lists(alert, min_size=n_alerts, max_size=n_alerts))
    obs_gaps = draw(st.lists(st.integers(min_value=0, max_value=6),
                             min_size=n_obs, max_size=n_obs))
    alert_gaps = draw(st.lists(st.integers(min_value=0, max_value=9),
                               min_size=n_alerts, max_size=n_alerts))
    return {
        "Obs": make_stream(OBS, obs_rows, obs_gaps),
        "Alerts": make_stream(ALERT, alert_rows, alert_gaps),
    }


@settings(max_examples=25, deadline=None)
@given(streams=workloads(), query_index=st.integers(0, len(QUERIES) - 1))
def test_property_relation_queries(streams, query_index):
    assert_executor_matches_reference(QUERIES[query_index], streams)


@settings(max_examples=25, deadline=None)
@given(streams=workloads(),
       query_index=st.integers(0, len(R2S_QUERIES) - 1))
def test_property_r2s_queries(streams, query_index):
    assert_executor_matches_reference(R2S_QUERIES[query_index], streams)
