"""Tests for expression compilation and SQL three-valued logic."""

import pytest

from repro.core import PlanError, Record, Schema
from repro.cql import compile_expr, compile_predicate, equality_columns
from repro.cql.parser import parse_query


SCHEMA = Schema(["S.a", "S.b", "S.name"])


def compiled(expr_text, schema=SCHEMA):
    stmt = parse_query(f"SELECT {expr_text} AS v FROM X")
    return compile_expr(stmt.items[0].expr, schema)


def record(a, b, name="x"):
    return Record(SCHEMA, (a, b, name), validate=False)


class TestCompilation:
    def test_column_by_suffix(self):
        assert compiled("a")(record(1, 2)) == 1

    def test_column_qualified(self):
        assert compiled("S.b")(record(1, 2)) == 2

    def test_literal(self):
        assert compiled("42")(record(0, 0)) == 42

    def test_arithmetic(self):
        assert compiled("a * 2 + b")(record(3, 4)) == 10

    def test_division(self):
        assert compiled("a / b")(record(6, 3)) == 2

    def test_division_by_zero_is_null(self):
        assert compiled("a / b")(record(6, 0)) is None

    def test_modulo(self):
        assert compiled("a % b")(record(7, 3)) == 1

    def test_unary_minus(self):
        assert compiled("-a")(record(5, 0)) == -5

    def test_comparison(self):
        assert compiled("a < b")(record(1, 2)) is True
        assert compiled("a >= b")(record(1, 2)) is False

    def test_scalar_functions(self):
        assert compiled("ABS(a)")(record(-3, 0)) == 3
        assert compiled("UPPER(name)")(record(0, 0, "hi")) == "HI"
        assert compiled("LENGTH(name)")(record(0, 0, "hi")) == 2

    def test_coalesce(self):
        assert compiled("COALESCE(a, b)")(record(None, 7)) == 7

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError, match="unknown function"):
            compiled("FROB(a)")

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(PlanError, match="[Aa]ggregate"):
            compiled("SUM(a)")

    def test_unknown_column_rejected(self):
        with pytest.raises(Exception):
            compiled("zzz")


class TestNullPropagation:
    def test_arithmetic_with_null(self):
        assert compiled("a + b")(record(None, 2)) is None

    def test_comparison_with_null(self):
        assert compiled("a = b")(record(None, 2)) is None

    def test_scalar_function_with_null(self):
        assert compiled("ABS(a)")(record(None, 0)) is None

    def test_not_null_is_null(self):
        assert compiled("NOT a = b")(record(None, 1)) is None


class TestThreeValuedLogic:
    def test_false_and_null_is_false(self):
        assert compiled("a = 1 AND b = 1")(record(2, None)) is False

    def test_true_and_null_is_null(self):
        assert compiled("a = 1 AND b = 1")(record(1, None)) is None

    def test_true_or_null_is_true(self):
        assert compiled("a = 1 OR b = 1")(record(1, None)) is True

    def test_false_or_null_is_null(self):
        assert compiled("a = 1 OR b = 1")(record(2, None)) is None


class TestPredicate:
    def test_null_counts_as_false(self):
        stmt = parse_query("SELECT * FROM X WHERE a = b")
        predicate = compile_predicate(stmt.where, SCHEMA)
        assert predicate(record(None, 2)) is False
        assert predicate(record(2, 2)) is True


class TestEqualityColumns:
    def test_recognised(self):
        stmt = parse_query("SELECT * FROM X WHERE P.id = O.id")
        assert equality_columns(stmt.where) == ("P.id", "O.id")

    def test_not_an_equality(self):
        stmt = parse_query("SELECT * FROM X WHERE P.id < O.id")
        assert equality_columns(stmt.where) is None

    def test_literal_comparand_not_extracted(self):
        stmt = parse_query("SELECT * FROM X WHERE P.id = 3")
        assert equality_columns(stmt.where) is None
