"""Tests for the rule-based logical optimizer (paper Section 4.2)."""

import pytest

from repro.core import Schema
from repro.cql import (
    Catalog,
    Filter,
    Join,
    Project,
    parse_query,
    plan_statement,
)
from repro.plan.rules import (
    extract_equijoin_keys,
    fuse_filters,
    optimize,
    push_filter_through_join,
    remove_trivial_filter,
)
from repro.plan.signature import plan_signature


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register_stream("Orders", Schema(["oid", "user", "amount"]))
    catalog.register_stream("Clicks", Schema(["user", "page"]))
    catalog.register_relation("Users", Schema(["user", "city"]))
    return catalog


def naive(text, catalog):
    return plan_statement(parse_query(text), catalog)


class TestRules:
    def test_trivial_filter_removed(self, catalog):
        plan = naive("SELECT * FROM Orders WHERE TRUE", catalog)
        assert isinstance(plan, Filter)
        assert remove_trivial_filter(plan) is plan.child

    def test_fuse_filters(self, catalog):
        inner = naive("SELECT * FROM Orders WHERE amount > 1", catalog)
        stacked = Filter(inner, parse_query(
            "SELECT * FROM X WHERE amount > 2").where)
        fused = fuse_filters(stacked)
        assert isinstance(fused, Filter)
        assert not isinstance(fused.child, Filter)

    def test_push_filter_through_join_sides(self, catalog):
        plan = naive(
            "SELECT * FROM Orders O, Users U "
            "WHERE O.amount > 10 AND U.city = 'lyon' AND O.user = U.user",
            catalog)
        rewritten = push_filter_through_join(plan)
        assert isinstance(rewritten, Join)
        # One conjunct went to each side, the equality became join keys.
        assert isinstance(rewritten.left, Filter)
        assert isinstance(rewritten.right, Filter)
        assert rewritten.left_keys == ("O.user",)
        assert rewritten.right_keys == ("U.user",)
        assert rewritten.residual is None

    def test_equality_reversed_orientation(self, catalog):
        plan = naive(
            "SELECT * FROM Orders O, Users U WHERE U.user = O.user", catalog)
        rewritten = push_filter_through_join(plan)
        assert rewritten.left_keys == ("O.user",)
        assert rewritten.right_keys == ("U.user",)

    def test_non_equi_condition_stays_residual(self, catalog):
        plan = naive(
            "SELECT * FROM Orders O, Clicks C WHERE O.amount > C.user",
            catalog)
        rewritten = push_filter_through_join(plan)
        assert rewritten.residual is not None
        assert rewritten.left_keys == ()

    def test_extract_equijoin_from_residual(self, catalog):
        plan = naive(
            "SELECT * FROM Orders O, Clicks C "
            "WHERE O.user = C.user AND O.amount > 5", catalog)
        joined = push_filter_through_join(plan)
        # amount > 5 went left; equality became keys already.
        assert joined.left_keys == ("O.user",)
        # And extract_equijoin_keys is idempotent on an already-clean join.
        assert extract_equijoin_keys(joined) is None


class TestOptimizeFixpoint:
    def test_three_way_join_fully_keyed(self, catalog):
        plan = optimize(naive(
            "SELECT O.oid FROM Orders O, Clicks C, Users U "
            "WHERE O.user = C.user AND C.user = U.user AND O.amount > 100",
            catalog))
        signature = plan_signature(plan)
        assert "cross" not in signature
        assert signature.count("equijoin") == 2
        # The selective filter sits below the joins.
        assert isinstance(plan, Project)

    def test_optimization_preserves_schema(self, catalog):
        text = ("SELECT O.oid, U.city FROM Orders O, Users U "
                "WHERE O.user = U.user")
        naive_plan = naive(text, catalog)
        optimized = optimize(naive_plan)
        assert optimized.schema == naive_plan.schema

    def test_no_rules_fire_is_identity(self, catalog):
        plan = naive("SELECT * FROM Orders [Now]", catalog)
        assert optimize(plan) is plan

    def test_signature_format(self, catalog):
        plan = naive("SELECT ISTREAM * FROM Orders [Now]", catalog)
        assert plan_signature(plan) == "istream(window(stream_scan))"
