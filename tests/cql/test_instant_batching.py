"""Batched agenda drains: ``QueryKernel.run_instants`` and its driver.

When ``advance_to``/``finish`` owe the agenda several expiry instants,
the kernel executor ticks each source ONCE with the whole instant list
(`push_batch`) instead of once per instant.  These tests pin the
contract: the batched drive is indistinguishable from stepping the
instants one at a time, on the legacy evaluator, and under multi-input
plans whose adapters pair batches positionally.
"""

import pytest

import repro.obs as obs
from repro.core import Schema
from repro.cql import CQLEngine
from repro.cql.kernel import QueryKernel

OBS = Schema(["id", "room", "temp"])

PUSHES = [({"id": i, "room": f"r{i % 2}", "temp": 20 + i * 4}, t)
          for i, t in enumerate([0, 1, 2, 3, 4, 7, 9])]


def make_engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    engine.register_relation(
        "Person", Schema(["id", "name"]),
        rows=[{"id": 1, "name": "ada"}, {"id": 2, "name": "bob"}])
    return engine


def drive(text, kernel=True, step_instants=False, drain_at=100):
    """Push the fixture, then drain pending expiries one way or another."""
    q = make_engine().register_query(text, kernel=kernel)
    emitted = []
    for record, t in PUSHES:
        emitted.extend(q.push("Obs", record, t))
    if step_instants:
        # One instant per call: the len==1 path, never run_instants.
        for t in range(PUSHES[-1][1] + 1, drain_at + 1):
            emitted.extend(q.advance_to(t))
    else:
        emitted.extend(q.advance_to(drain_at))
    return ([(tuple(e.record.values), e.timestamp) for e in emitted],
            sorted(tuple(r.values) for r in q.current()))


QUERIES = [
    "SELECT ISTREAM id FROM Obs [Range 10] WHERE temp > 25",
    "SELECT DSTREAM id FROM Obs [Range 10]",
    "SELECT ISTREAM COUNT(*) AS n FROM Obs [Range 5]",
    "SELECT RSTREAM id, temp FROM Obs [Rows 3]",
    ("SELECT ISTREAM Obs.id, Person.name FROM Obs [Range 6], Person "
     "WHERE Obs.id = Person.id"),
]


class TestBatchedDrainParity:
    @pytest.mark.parametrize("text", QUERIES)
    def test_batched_drain_equals_stepped_drain(self, text):
        assert drive(text) == drive(text, step_instants=True)

    @pytest.mark.parametrize("text", QUERIES)
    def test_batched_kernel_equals_legacy(self, text):
        assert drive(text, kernel=True) == drive(text, kernel=False)

    @pytest.mark.parametrize("text", QUERIES)
    def test_finish_drains_batched(self, text):
        q = make_engine().register_query(text)
        emitted = []
        for record, t in PUSHES:
            emitted.extend(q.push("Obs", record, t))
        emitted.extend(q.finish())
        stepped, _ = drive(text, step_instants=True)
        assert [(tuple(e.record.values), e.timestamp)
                for e in emitted] == stepped


class TestDriverDispatch:
    def test_multi_instant_drain_uses_run_instants(self, monkeypatch):
        calls = []
        original = QueryKernel.run_instants

        def spy(self, ts):
            calls.append(list(ts))
            return original(self, ts)

        monkeypatch.setattr(QueryKernel, "run_instants", spy)
        drive(QUERIES[0])
        assert any(len(ts) > 1 for ts in calls)

    def test_observability_falls_back_to_per_instant(self, monkeypatch):
        def boom(self, ts):  # pragma: no cover - must never run
            raise AssertionError("batched drive under observability")

        monkeypatch.setattr(QueryKernel, "run_instants", boom)
        obs.enable()
        try:
            batched = drive(QUERIES[0])
        finally:
            obs.disable()
        assert batched == drive(QUERIES[0], step_instants=True)


class TestRunInstantsContract:
    def test_empty_instant_list_is_a_noop(self):
        q = make_engine().register_query(QUERIES[0])
        q.push("Obs", {"id": 1, "room": "a", "temp": 30}, 0)
        assert q._kernel.run_instants([]) == []

    def test_reset_transients_clears_pending_fifos(self):
        q = make_engine().register_query(QUERIES[4])  # join: multi-input
        q.push("Obs", {"id": 1, "room": "a", "temp": 30}, 0)
        q._kernel.reset_transients()
        # A clean kernel keeps evaluating after the reset.
        q.push("Obs", {"id": 2, "room": "b", "temp": 31}, 1)
        assert q.current() is not None
