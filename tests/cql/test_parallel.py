"""Tests for fissioned CQL execution (repro.cql.parallel)."""

import pytest

from repro.core import PlanError, Schema, StateError
from repro.cql import ContinuousQuery, CQLEngine, PartitionedQuery


GROUPED = ("SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
           "GROUP BY room")
GROUPED_ISTREAM = ("SELECT ISTREAM room, MAX(temp) AS m FROM Obs [Range 5] "
                   "GROUP BY room")
JOINED = ("SELECT O.room, R.floor FROM Obs O [Range 5], Rooms R "
          "WHERE O.room = R.room")


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("Obs", Schema(["id", "room", "temp"]))
    engine.register_stream("Metered", Schema(["meter", "watts"]))
    engine.register_relation(
        "Rooms", Schema(["room", "floor"]),
        [{"room": "kitchen", "floor": 1}, {"room": "lab", "floor": 2}])
    return engine


def pair(engine, text, parallelism=3):
    """The same query compiled serial and fissioned."""
    plan = engine.plan(text)
    serial = ContinuousQuery(plan, engine.catalog)
    parallel = PartitionedQuery(plan, engine.catalog,
                                parallelism=parallelism)
    return serial, parallel


def feed_both(serial, parallel, batches):
    for t, arrivals in batches:
        serial.push_batch(t, arrivals)
        parallel.push_batch(t, arrivals)


OBS_BATCHES = [
    (0, {"Obs": [{"id": 1, "room": "kitchen", "temp": 20},
                 {"id": 2, "room": "lab", "temp": 31}]}),
    (1, {"Obs": [{"id": 3, "room": "kitchen", "temp": 22}]}),
    (3, {"Obs": [{"id": 4, "room": "hall", "temp": 19},
                 {"id": 5, "room": "lab", "temp": 33}]}),
    (7, {"Obs": [{"id": 6, "room": "kitchen", "temp": 25}]}),
]


class TestParity:
    def test_grouped_aggregate_state_matches(self, engine):
        serial, parallel = pair(engine, GROUPED)
        feed_both(serial, parallel, OBS_BATCHES)
        assert parallel.current() == serial.current()
        assert parallel.as_relation() == serial.as_relation()

    def test_istream_emissions_match(self, engine):
        serial, parallel = pair(engine, GROUPED_ISTREAM)
        feed_both(serial, parallel, OBS_BATCHES)
        serial.finish()
        parallel.finish()
        assert [(e.value, e.timestamp) for e in parallel.emitted_stream()] \
            == [(e.value, e.timestamp) for e in serial.emitted_stream()]

    def test_window_expirations_fire_instant_by_instant(self, engine):
        # Advancing far past the window must retract expired rows on
        # every replica at the same instants the serial query does.
        serial, parallel = pair(engine, GROUPED)
        feed_both(serial, parallel, OBS_BATCHES)
        serial.advance_to(30)
        parallel.advance_to(30)
        assert parallel.as_relation() == serial.as_relation()
        assert len(parallel.current()) == 0

    def test_strided_int_keys_spread_and_match(self, engine):
        # Keys 0, 4, 8, … with parallelism 4: the pre-fix hash would send
        # every key to replica 0.
        text = ("SELECT meter, COUNT(*) AS n FROM Metered [Range 100] "
                "GROUP BY meter")
        serial, parallel = pair(engine, text, parallelism=4)
        batches = [(t, {"Metered": [{"meter": 4 * i, "watts": 10}
                                    for i in range(12)]})
                   for t in range(3)]
        feed_both(serial, parallel, batches)
        assert parallel.current() == serial.current()
        loads = [len(replica.current()) for replica in parallel.replicas()]
        assert all(load > 0 for load in loads), f"starved replica: {loads}"

    def test_relation_updates_broadcast(self, engine):
        serial, parallel = pair(engine, JOINED)
        serial.start()
        parallel.start()
        feed_both(serial, parallel, OBS_BATCHES[:2])
        serial.update_relation("Rooms", {"room": "hall", "floor": 3}, 1, 2)
        parallel.update_relation("Rooms", {"room": "hall", "floor": 3}, 1, 2)
        feed_both(serial, parallel, OBS_BATCHES[2:])
        assert parallel.current() == serial.current()
        assert parallel.as_relation() == serial.as_relation()


class TestRouting:
    def test_unread_stream_rejected(self, engine):
        _, parallel = pair(engine, GROUPED)
        with pytest.raises(PlanError):
            parallel.push_batch(0, {"Metered": [{"meter": 1, "watts": 2}]})

    def test_unpartitionable_plan_rejected(self, engine):
        plan = engine.plan("SELECT COUNT(*) AS n FROM Obs [Range 5]")
        with pytest.raises(PlanError):
            PartitionedQuery(plan, engine.catalog, parallelism=2)

    def test_replicas_hold_disjoint_groups(self, engine):
        _, parallel = pair(engine, GROUPED)
        for t, arrivals in OBS_BATCHES:
            parallel.push_batch(t, arrivals)
        seen = {}
        for index, replica in enumerate(parallel.replicas()):
            for record in replica.current():
                room = record["room"]
                assert seen.setdefault(room, index) == index
        assert len(parallel.physical_roots()) == 3


class TestCheckpointing:
    def test_snapshot_restore_resumes_identically(self, engine):
        serial, parallel = pair(engine, GROUPED)
        feed_both(serial, parallel, OBS_BATCHES[:2])
        checkpoint = parallel.snapshot()
        _, recovered = pair(engine, GROUPED)
        recovered.restore(checkpoint)
        feed_both(serial, parallel, OBS_BATCHES[2:])
        for t, arrivals in OBS_BATCHES[2:]:
            recovered.push_batch(t, arrivals)
        assert recovered.current() == parallel.current() == serial.current()

    def test_restore_rejects_different_parallelism(self, engine):
        _, parallel = pair(engine, GROUPED, parallelism=2)
        _, wider = pair(engine, GROUPED, parallelism=3)
        with pytest.raises(StateError):
            wider.restore(parallel.snapshot())


class TestEngineIntegration:
    def test_register_query_with_parallelism(self, engine):
        query = engine.register_query(GROUPED, parallelism=3)
        assert isinstance(query, PartitionedQuery)
        assert query.parallelism == 3

    def test_unpartitionable_request_clamps_to_serial(self, engine):
        query = engine.register_query(
            "SELECT COUNT(*) AS n FROM Obs [Range 5]", parallelism=4)
        assert isinstance(query, ContinuousQuery)

    def test_shared_group_rejects_parallelism(self, engine):
        group = engine.shared_group()
        with pytest.raises(PlanError):
            engine.register_query(GROUPED, shared=group, parallelism=2)

    def test_engine_fan_out_reaches_partitioned_queries(self, engine):
        query = engine.register_query(GROUPED_ISTREAM, parallelism=2)
        emissions = engine.push(
            "Obs", {"id": 1, "room": "kitchen", "temp": 20}, 0)
        assert list(emissions) == [0]
        assert len(query.emissions()) == 1
