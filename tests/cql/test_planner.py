"""Tests for the naive planner and plan analysis."""

import pytest

from repro.core import (
    MonotonicityClass,
    PlanError,
    R2SKind,
    Schema,
    classify_plan,
)
from repro.cql import (
    Aggregate,
    Catalog,
    Distinct,
    Filter,
    Join,
    Project,
    RelationScan,
    RelToStream,
    StreamScan,
    WindowOp,
    WindowSpecKind,
    parse_query,
    plan_statement,
    scans_of,
)


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register_stream("Obs", Schema(["id", "room", "temp"]))
    catalog.register_stream("Alerts", Schema(["id", "level"]))
    catalog.register_relation("Person", Schema(["id", "name"]))
    return catalog


def plan_of(text, catalog):
    return plan_statement(parse_query(text), catalog)


class TestSources:
    def test_stream_gets_window(self, catalog):
        plan = plan_of("SELECT * FROM Obs [Now]", catalog)
        assert isinstance(plan, WindowOp)
        assert plan.spec.kind is WindowSpecKind.NOW
        assert isinstance(plan.child, StreamScan)

    def test_stream_default_window_is_unbounded(self, catalog):
        plan = plan_of("SELECT * FROM Obs", catalog)
        assert isinstance(plan, WindowOp)
        assert plan.spec.kind is WindowSpecKind.UNBOUNDED

    def test_schema_is_alias_qualified(self, catalog):
        plan = plan_of("SELECT * FROM Obs X", catalog)
        assert plan.schema.fields == ("X.id", "X.room", "X.temp")

    def test_alias_defaults_to_name(self, catalog):
        plan = plan_of("SELECT * FROM Obs", catalog)
        assert plan.schema.fields[0] == "Obs.id"

    def test_relation_scan(self, catalog):
        plan = plan_of("SELECT * FROM Person", catalog)
        assert isinstance(plan, RelationScan)

    def test_window_on_relation_rejected(self, catalog):
        with pytest.raises(PlanError, match="window"):
            plan_of("SELECT * FROM Person [Rows 3]", catalog)

    def test_unknown_source(self, catalog):
        with pytest.raises(PlanError, match="unknown"):
            plan_of("SELECT * FROM Mystery", catalog)

    def test_duplicate_binding_rejected(self, catalog):
        with pytest.raises(PlanError, match="duplicate"):
            plan_of("SELECT * FROM Obs X, Alerts X", catalog)

    def test_self_join_with_distinct_aliases(self, catalog):
        plan = plan_of("SELECT * FROM Obs A, Obs B", catalog)
        scans = scans_of(plan)
        assert [s.alias for s in scans] == ["A", "B"]

    def test_multiple_sources_fold_left_deep(self, catalog):
        plan = plan_of("SELECT * FROM Obs, Alerts, Person", catalog)
        assert isinstance(plan, Join)
        assert isinstance(plan.left, Join)


class TestProjection:
    def test_star_has_no_project(self, catalog):
        plan = plan_of("SELECT * FROM Obs [Now]", catalog)
        assert not isinstance(plan, Project)

    def test_explicit_items_project(self, catalog):
        plan = plan_of("SELECT room, temp FROM Obs [Now]", catalog)
        assert isinstance(plan, Project)
        assert plan.schema.fields == ("room", "temp")

    def test_duplicate_output_names_rejected(self, catalog):
        with pytest.raises(PlanError, match="duplicate"):
            plan_of("SELECT room, temp AS room FROM Obs", catalog)

    def test_where_becomes_filter(self, catalog):
        plan = plan_of("SELECT room FROM Obs [Now] WHERE temp > 20", catalog)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Filter)

    def test_distinct_on_top(self, catalog):
        plan = plan_of("SELECT DISTINCT room FROM Obs", catalog)
        assert isinstance(plan, Distinct)

    def test_r2s_is_root(self, catalog):
        plan = plan_of("SELECT ISTREAM room FROM Obs [Now]", catalog)
        assert isinstance(plan, RelToStream)
        assert plan.kind is R2SKind.ISTREAM


class TestAggregation:
    def test_aggregate_node_extracted(self, catalog):
        plan = plan_of(
            "SELECT room, AVG(temp) AS a FROM Obs [Range 10] GROUP BY room",
            catalog)
        assert isinstance(plan, Project)
        agg = plan.child
        assert isinstance(agg, Aggregate)
        assert agg.group_by == ("room",)
        assert agg.aggregates[0].name == "a"
        assert plan.schema.fields == ("room", "a")

    def test_having_becomes_filter_above_aggregate(self, catalog):
        plan = plan_of(
            "SELECT room FROM Obs GROUP BY room HAVING COUNT(*) > 2",
            catalog)
        assert isinstance(plan, Project)
        having = plan.child
        assert isinstance(having, Filter)
        assert isinstance(having.child, Aggregate)

    def test_shared_aggregate_registered_once(self, catalog):
        plan = plan_of(
            "SELECT AVG(temp) AS a, AVG(temp) * 2 AS b FROM Obs", catalog)
        agg = plan.child
        assert len(agg.aggregates) == 1

    def test_select_star_with_group_by_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_of("SELECT * FROM Obs GROUP BY room", catalog)

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(PlanError, match="GROUP BY"):
            plan_of("SELECT temp, COUNT(*) c FROM Obs GROUP BY room",
                    catalog)

    def test_having_without_aggregation_rejected(self, catalog):
        with pytest.raises(PlanError, match="HAVING"):
            plan_of("SELECT room FROM Obs HAVING room > 1", catalog)

    def test_count_star(self, catalog):
        plan = plan_of("SELECT COUNT(*) AS n FROM Obs", catalog)
        agg = plan.child
        assert agg.aggregates[0].arg is None

    def test_sum_star_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_of("SELECT SUM(*) AS s FROM Obs", catalog)

    def test_expression_over_aggregate(self, catalog):
        plan = plan_of("SELECT COUNT(*) * 2 AS double FROM Obs", catalog)
        assert plan.schema.fields == ("double",)


class TestMonotonicityIntegration:
    """Plans satisfy the PlanNode protocol of core.monotonicity."""

    def test_unbounded_spj_is_monotonic(self, catalog):
        plan = plan_of(
            "SELECT O.room FROM Obs O, Person P WHERE O.id = P.id", catalog)
        assert classify_plan(plan) is MonotonicityClass.MONOTONIC

    def test_windowed_query_is_non_monotonic(self, catalog):
        plan = plan_of("SELECT room FROM Obs [Range 10]", catalog)
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC

    def test_aggregate_is_non_monotonic(self, catalog):
        plan = plan_of("SELECT COUNT(*) n FROM Obs", catalog)
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC


class TestExplain:
    def test_explain_shows_tree(self, catalog):
        plan = plan_of(
            "SELECT room FROM Obs [Range 10] WHERE temp > 20", catalog)
        text = plan.explain()
        assert "Project" in text
        assert "Filter" in text
        assert "Window[Range 10]" in text
        assert "StreamScan(Obs AS Obs)" in text
