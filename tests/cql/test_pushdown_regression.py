"""Regression guard: the unified optimizer fires on the CQL engine path.

The paper's Listing 1 query (join of a relation with a windowed stream)
plus a selective stream predicate must come out of ``CQLEngine.plan``
with the filter pushed below the window and the equality promoted to
hash-join keys — and the optimised plan must produce exactly the results
of the naive one.
"""

import pytest

from repro.core import Schema
from repro.cql import CQLEngine
from repro.plan.signature import plan_signature

LISTING1 = ("SELECT COUNT(P.id) AS n "
            "FROM Person P, RoomObservation O [Range 15] "
            "WHERE P.id = O.id AND O.temp > 20")


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("RoomObservation",
                           Schema(["id", "room", "temp"]))
    engine.register_relation(
        "Person", Schema(["id", "name"]),
        rows=[{"id": 1, "name": "ada"}, {"id": 2, "name": "bob"}])
    return engine


def test_pushdown_and_key_extraction_fire(engine):
    naive = plan_signature(engine.plan(LISTING1, optimize=False))
    optimized = plan_signature(engine.plan(LISTING1, optimize=True))
    # Naive: filter above the window, join unkeyed (cross product).
    assert "select(window" in naive or "cross" in naive
    # Optimised: the filter sits below the window, and the join is keyed.
    assert "window(select(stream_scan))" in optimized
    assert "equijoin" in optimized
    assert "cross" not in optimized


@pytest.mark.parametrize("kernel", [True, False])
def test_optimised_results_match_naive(engine, kernel):
    rows = [
        ({"id": 1, "room": 7, "temp": 25}, 1),
        ({"id": 2, "room": 7, "temp": 15}, 2),   # filtered out
        ({"id": 1, "room": 8, "temp": 31}, 5),
        ({"id": 9, "room": 8, "temp": 40}, 6),   # no matching person
    ]
    states = []
    for optimize in (False, True):
        query = engine.register_query(LISTING1, optimize=optimize,
                                      kernel=kernel)
        query.start()
        for row, t in rows:
            query.push("RoomObservation", row, t)
        query.advance_to(40)  # expire the window entirely
        query.finish()
        states.append(query.as_relation())
    naive_state, optimized_state = states
    assert naive_state == optimized_state
