"""Tests for the CQL parser (paper Listing 1 grammar)."""

import pytest

from repro.core import ParseError, R2SKind, minutes, seconds
from repro.cql import (
    Binary,
    BinOp,
    Column,
    FuncCall,
    Literal,
    Star,
    Unary,
    WindowSpecKind,
    parse_query,
)


class TestListing1:
    """The paper's Listing 1 must parse exactly."""

    QUERY = ("Select count(P.ID) "
             "From Person P, RoomObservation O [Range 15 min] "
             "Where P.id = O.id")

    def test_parses(self):
        stmt = parse_query(self.QUERY)
        assert len(stmt.items) == 1
        call = stmt.items[0].expr
        assert isinstance(call, FuncCall)
        assert call.name == "COUNT"
        assert call.args == (Column("P.ID"),)

    def test_sources(self):
        stmt = parse_query(self.QUERY)
        person, obs = stmt.sources
        assert (person.name, person.alias, person.window) == \
            ("Person", "P", None)
        assert obs.name == "RoomObservation"
        assert obs.alias == "O"
        assert obs.window.kind is WindowSpecKind.RANGE
        assert obs.window.range_ == minutes(15)

    def test_where(self):
        stmt = parse_query(self.QUERY)
        assert stmt.where == Binary(BinOp.EQ, Column("P.id"), Column("O.id"))


class TestWindows:
    def test_now(self):
        stmt = parse_query("SELECT * FROM S [Now]")
        assert stmt.sources[0].window.kind is WindowSpecKind.NOW

    def test_unbounded(self):
        stmt = parse_query("SELECT * FROM S [Range Unbounded]")
        assert stmt.sources[0].window.kind is WindowSpecKind.UNBOUNDED

    def test_bare_unbounded(self):
        stmt = parse_query("SELECT * FROM S [Unbounded]")
        assert stmt.sources[0].window.kind is WindowSpecKind.UNBOUNDED

    def test_range_with_slide(self):
        stmt = parse_query("SELECT * FROM S [Range 30 SEC Slide 10 SEC]")
        window = stmt.sources[0].window
        assert window.range_ == seconds(30)
        assert window.slide == seconds(10)

    def test_range_default_unit_is_ticks(self):
        stmt = parse_query("SELECT * FROM S [Range 500]")
        assert stmt.sources[0].window.range_ == 500

    def test_rows(self):
        stmt = parse_query("SELECT * FROM S [Rows 10]")
        window = stmt.sources[0].window
        assert window.kind is WindowSpecKind.ROWS
        assert window.rows == 10

    def test_partitioned(self):
        stmt = parse_query("SELECT * FROM S [Partition By room, id Rows 5]")
        window = stmt.sources[0].window
        assert window.kind is WindowSpecKind.PARTITIONED
        assert window.partition_by == ("room", "id")
        assert window.rows == 5

    def test_no_window(self):
        stmt = parse_query("SELECT * FROM R")
        assert stmt.sources[0].window is None

    def test_zero_range_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM S [Range 0]")

    def test_fractional_rows_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM S [Rows 1.5]")

    def test_bad_window_keyword(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM S [Frobnicate 3]")


class TestR2S:
    def test_prefix_form(self):
        stmt = parse_query("SELECT ISTREAM * FROM S [Now]")
        assert stmt.r2s is R2SKind.ISTREAM

    def test_wrapping_form(self):
        stmt = parse_query("RSTREAM (SELECT * FROM S [Now])")
        assert stmt.r2s is R2SKind.RSTREAM

    def test_wrapping_without_parens(self):
        stmt = parse_query("DSTREAM SELECT * FROM S [Range 10]")
        assert stmt.r2s is R2SKind.DSTREAM

    def test_duplicate_r2s_rejected(self):
        with pytest.raises(ParseError):
            parse_query("ISTREAM (SELECT RSTREAM * FROM S [Now])")

    def test_default_is_relation_output(self):
        assert parse_query("SELECT * FROM S [Now]").r2s is None


class TestSelectList:
    def test_star(self):
        assert parse_query("SELECT * FROM S").is_star

    def test_aliases(self):
        stmt = parse_query("SELECT a AS x, b y FROM S")
        assert [i.output_name() for i in stmt.items] == ["x", "y"]

    def test_expression_items(self):
        stmt = parse_query("SELECT temp * 2 + 1 AS scaled FROM S")
        expr = stmt.items[0].expr
        assert isinstance(expr, Binary)
        assert expr.op is BinOp.ADD

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM S").distinct

    def test_count_star(self):
        stmt = parse_query("SELECT COUNT(*) AS n FROM S")
        assert stmt.items[0].expr == FuncCall("COUNT", (Star(),))

    def test_min_keyword_as_function(self):
        # MIN is also the minutes unit keyword; as a call it is an aggregate.
        stmt = parse_query("SELECT MIN(temp) AS lo FROM S")
        assert stmt.items[0].expr == FuncCall("MIN", (Column("temp"),))


class TestClauses:
    def test_group_by_and_having(self):
        stmt = parse_query(
            "SELECT room, AVG(temp) a FROM S [Range 10] "
            "GROUP BY room HAVING AVG(temp) > 20")
        assert stmt.group_by == (Column("room"),)
        assert isinstance(stmt.having, Binary)

    def test_group_by_qualified(self):
        stmt = parse_query("SELECT S.room FROM S GROUP BY S.room")
        assert stmt.group_by == (Column("S.room"),)

    def test_where_precedence(self):
        stmt = parse_query("SELECT * FROM S WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert stmt.where.op is BinOp.OR

    def test_not(self):
        stmt = parse_query("SELECT * FROM S WHERE NOT a = 1")
        assert isinstance(stmt.where, Unary)
        assert stmt.where.op == "NOT"

    def test_literals(self):
        stmt = parse_query(
            "SELECT * FROM S WHERE a = 'x' AND b = TRUE AND c = NULL")
        conjuncts = []
        from repro.cql import split_conjuncts
        conjuncts = split_conjuncts(stmt.where)
        assert conjuncts[0].right == Literal("x")
        assert conjuncts[1].right == Literal(True)
        assert conjuncts[2].right == Literal(None)

    def test_arithmetic_precedence(self):
        stmt = parse_query("SELECT 1 + 2 * 3 AS v FROM S")
        expr = stmt.items[0].expr
        assert expr.op is BinOp.ADD
        assert expr.right.op is BinOp.MUL

    def test_parenthesised(self):
        stmt = parse_query("SELECT (1 + 2) * 3 AS v FROM S")
        assert stmt.items[0].expr.op is BinOp.MUL

    def test_unary_minus(self):
        stmt = parse_query("SELECT -x AS v FROM S")
        assert stmt.items[0].expr == Unary("-", Column("x"))


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_query("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("SELECT * FROM S nonsense extra")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("")
