"""Tests for the CQLEngine facade (multi-query fan-out, explain)."""

import pytest

from repro.core import PlanError, Schema
from repro.cql import CQLEngine


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("Obs", Schema(["id", "temp"]))
    engine.register_stream("Other", Schema(["x"]))
    return engine


class TestEngineFanOut:
    def test_push_reaches_only_readers(self, engine):
        q_obs = engine.register_query("SELECT ISTREAM id FROM Obs [Now]")
        q_other = engine.register_query("SELECT ISTREAM x FROM Other [Now]")
        emissions = engine.push("Obs", {"id": 1, "temp": 20}, 0)
        assert list(emissions) == [0]          # only the first query
        assert len(emissions[0]) == 1
        assert q_other.emissions() == []

    def test_push_fans_out_to_all_readers(self, engine):
        engine.register_query("SELECT ISTREAM id FROM Obs [Now]")
        engine.register_query("SELECT ISTREAM temp FROM Obs [Now]")
        emissions = engine.push("Obs", {"id": 1, "temp": 20}, 0)
        assert sorted(emissions) == [0, 1]

    def test_queries_listing(self, engine):
        engine.register_query("SELECT id FROM Obs [Now]")
        assert len(engine.queries) == 1

    def test_explain_unoptimized(self, engine):
        text = engine.explain("SELECT id FROM Obs [Now] WHERE temp > 1")
        assert "Filter" in text

    def test_duplicate_source_registration_rejected(self, engine):
        with pytest.raises(PlanError, match="already"):
            engine.register_stream("Obs", Schema(["z"]))
        with pytest.raises(PlanError, match="already"):
            engine.register_relation("Obs", Schema(["z"]))

    def test_relation_rows_validated(self, engine):
        with pytest.raises(Exception):
            engine.register_relation("Bad", Schema(["a"]),
                                     rows=[{"wrong": 1}])
