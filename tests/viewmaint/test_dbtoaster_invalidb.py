"""Tests for higher-order delta views and the InvaliDB-style push layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StateError
from repro.viewmaint import (
    ChangeEvent,
    EventKind,
    GroupedJoinAggregateView,
    JoinAggregateView,
    LiveQuery,
    RealTimeDatabase,
)


def fresh_view():
    return JoinAggregateView(
        left_key=lambda r: r["k"], right_key=lambda r: r["k"],
        left_value=lambda r: r["x"], right_value=lambda r: r["y"])


class TestJoinAggregateView:
    def test_maintains_sum_over_join(self):
        view = fresh_view()
        view.insert_left({"k": 1, "x": 2})
        assert view.result == 0  # no matching right rows yet
        view.insert_right({"k": 1, "y": 10})
        assert view.result == 20
        view.insert_left({"k": 1, "x": 3})
        assert view.result == 50

    def test_non_matching_keys_do_not_contribute(self):
        view = fresh_view()
        view.insert_left({"k": 1, "x": 2})
        view.insert_right({"k": 2, "y": 10})
        assert view.result == 0

    def test_delete_retracts(self):
        view = fresh_view()
        view.insert_left({"k": 1, "x": 2})
        view.insert_right({"k": 1, "y": 10})
        view.delete_left({"k": 1, "x": 2})
        assert view.result == 0

    def test_constant_work_per_update(self):
        view = fresh_view()
        for i in range(100):
            view.insert_left({"k": i, "x": 1})
        work_before = view.update_work
        view.insert_right({"k": 50, "y": 5})
        assert view.update_work - work_before == 2  # O(1), not O(|left|)

    def test_matches_recompute(self):
        view = fresh_view()
        lefts, rights = [], []
        for i in range(10):
            left = {"k": i % 3, "x": i}
            right = {"k": i % 4, "y": 2 * i}
            lefts.append(left)
            rights.append(right)
            view.insert_left(left)
            view.insert_right(right)
        expected, _ = JoinAggregateView.recompute(
            lefts, rights,
            lambda r: r["k"], lambda r: r["k"],
            lambda r: r["x"], lambda r: r["y"])
        assert view.result == expected


class TestGroupedJoinAggregateView:
    def test_grouped_results(self):
        view = GroupedJoinAggregateView(
            left_key=lambda r: r["k"], right_key=lambda r: r["k"],
            group_key=lambda r: r["g"],
            left_value=lambda r: r["x"], right_value=lambda r: 1)
        view.insert_left({"k": 1, "g": "east", "x": 5})
        view.insert_left({"k": 1, "g": "west", "x": 7})
        view.insert_right({"k": 1})
        view.insert_right({"k": 1})
        assert view.results() == {"east": 10, "west": 14}

    def test_retraction_clears_group(self):
        view = GroupedJoinAggregateView(
            left_key=lambda r: r["k"], right_key=lambda r: r["k"],
            group_key=lambda r: r["g"])
        view.insert_left({"k": 1, "g": "east"})
        view.insert_right({"k": 1})
        view.delete_left({"k": 1, "g": "east"})
        assert view.results() == {}


hypo_ops = st.lists(st.tuples(
    st.sampled_from(["left", "right"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=-5, max_value=5)), max_size=60)


@settings(max_examples=60, deadline=None)
@given(ops=hypo_ops)
def test_property_higher_order_matches_recompute(ops):
    view = fresh_view()
    lefts, rights = [], []
    for side, key, value in ops:
        if side == "left":
            row = {"k": key, "x": value}
            lefts.append(row)
            view.insert_left(row)
        else:
            row = {"k": key, "y": value}
            rights.append(row)
            view.insert_right(row)
    expected, _ = JoinAggregateView.recompute(
        lefts, rights, lambda r: r["k"], lambda r: r["k"],
        lambda r: r["x"], lambda r: r["y"])
    assert view.result == expected


class TestRealTimeDatabase:
    @pytest.fixture
    def db(self):
        return RealTimeDatabase()

    def test_pull_interface(self, db):
        db.put("u1", {"name": "ada", "score": 10})
        assert db.get("u1")["name"] == "ada"
        assert db.find(lambda d: d["score"] > 5) == [
            {"name": "ada", "score": 10}]

    def test_subscribe_returns_initial_adds(self, db):
        db.put("u1", {"score": 10})
        db.put("u2", {"score": 2})
        events = db.subscribe(
            "high", LiveQuery(lambda d: d["score"] >= 5))
        assert [e.kind for e in events] == [EventKind.ADD]
        assert events[0].key == "u1"

    def test_write_pushes_add_event(self, db):
        db.subscribe("high", LiveQuery(lambda d: d["score"] >= 5))
        notifications = db.put("u1", {"score": 9})
        assert notifications["high"][0].kind is EventKind.ADD

    def test_update_moving_out_pushes_remove(self, db):
        db.put("u1", {"score": 9})
        db.subscribe("high", LiveQuery(lambda d: d["score"] >= 5))
        notifications = db.update("u1", {"score": 1})
        assert notifications["high"][0].kind is EventKind.REMOVE

    def test_change_event_for_content_update(self, db):
        db.put("u1", {"score": 9, "name": "x"})
        db.subscribe("high", LiveQuery(lambda d: d["score"] >= 5))
        notifications = db.update("u1", {"name": "y"})
        assert notifications["high"][0].kind is EventKind.CHANGE

    def test_change_index_for_reordering(self, db):
        db.put("u1", {"score": 9})
        db.put("u2", {"score": 7})
        query = LiveQuery(lambda d: True,
                          order_by=lambda d: -d["score"])
        db.subscribe("board", query)
        assert query.result_keys() == ["u1", "u2"]
        notifications = db.update("u2", {"score": 20})
        kinds = {e.key: e.kind for e in notifications["board"]}
        assert kinds["u2"] is EventKind.CHANGE
        assert kinds["u1"] is EventKind.CHANGE_INDEX
        assert query.result_keys() == ["u2", "u1"]

    def test_top_k_limit(self, db):
        query = LiveQuery(lambda d: True, order_by=lambda d: -d["score"],
                          limit=2)
        db.subscribe("top2", query)
        for i, score in enumerate([5, 9, 7]):
            db.put(f"u{i}", {"score": score})
        assert query.result_keys() == ["u1", "u2"]
        # A new high score evicts the current second place.
        notifications = db.put("u9", {"score": 100})
        kinds = {e.key: e.kind for e in notifications["top2"]}
        assert kinds["u9"] is EventKind.ADD
        assert kinds["u2"] is EventKind.REMOVE

    def test_unsubscribe_stops_notifications(self, db):
        db.subscribe("q", LiveQuery(lambda d: True))
        db.unsubscribe("q")
        assert db.put("u1", {"score": 1}) == {}

    def test_duplicate_subscription_rejected(self, db):
        db.subscribe("q", LiveQuery(lambda d: True))
        with pytest.raises(StateError):
            db.subscribe("q", LiveQuery(lambda d: True))

    def test_remove_unknown_document(self, db):
        with pytest.raises(StateError):
            db.remove("ghost")

    def test_pull_and_push_agree(self, db):
        query = LiveQuery(lambda d: d["score"] > 5)
        db.subscribe("q", query)
        for i in range(10):
            db.put(f"u{i}", {"score": i})
        push_view = sorted(d["score"] for d in query.result_documents())
        pull_view = sorted(d["score"]
                           for d in db.find(lambda d: d["score"] > 5))
        assert push_view == pull_view
