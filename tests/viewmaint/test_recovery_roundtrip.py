"""Checkpointing of view strategies + the kernel-equivalence property.

Every :class:`ViewStrategy` and :class:`RealTimeDatabase` now speak the
chaos ``snapshot()``/``restore()`` protocol, so they plug into
:class:`~repro.chaos.recovery.RecoveryManager` unchanged.  The property
test at the bottom drives the same randomized insert/delete script
through all four strategies *and* a kernel-backed dynamic table and
requires identical answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.recovery import RecoveryManager
from repro.core import StateError
from repro.core.records import Schema
from repro.viewmaint import (
    EagerView,
    LazyView,
    LiveQuery,
    RealTimeDatabase,
    RecomputeView,
    SplitView,
)
from repro.views import DynamicTableService

pytestmark = pytest.mark.views

STRATEGIES = [RecomputeView, EagerView, LazyView, SplitView]


def make(strategy):
    return strategy(group_fn=lambda r: r["g"], value_fn=lambda r: r["v"])


ROWS = [{"g": "a", "v": 1}, {"g": "a", "v": 3},
        {"g": "b", "v": 10}, {"g": "a", "v": 5}]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestStrategyRoundTrip:
    def test_snapshot_restore_round_trip(self, strategy):
        view = make(strategy)
        for row in ROWS:
            view.insert(row)
        view.delete({"g": "a", "v": 3})
        want = view.query()
        counters = (view.update_work, view.query_work)
        image = view.snapshot()

        view.insert({"g": "c", "v": 99})
        view.delete({"g": "b", "v": 10})
        assert view.query() != want

        restored = make(strategy)
        restored.restore(image)
        assert restored.query() == want
        restored2 = make(strategy)
        restored2.restore(image)
        assert (restored2.update_work, restored2.query_work) == counters

    def test_snapshot_is_isolated_from_later_mutation(self, strategy):
        view = make(strategy)
        view.insert({"g": "a", "v": 1})
        image = view.snapshot()
        view.insert({"g": "a", "v": 2})
        restored = make(strategy)
        restored.restore(image)
        assert restored.query()["a"]["count"] == 1

    def test_recovery_manager_protocol(self, strategy):
        view = make(strategy)
        view.insert({"g": "a", "v": 1})
        manager = RecoveryManager(view, interval=1, measure_bytes=False,
                                  sleep=lambda _d: None)
        manager.start()
        view.insert({"g": "a", "v": 2})
        restored = manager.recover()
        assert restored.offset == 0
        assert view.query()["a"]["count"] == 1


class TestWorkBookkeeping:
    def test_lazy_delete_counts_like_insert(self):
        view = make(LazyView)
        view.insert({"g": "a", "v": 1})
        after_insert = view.update_work
        view.delete({"g": "a", "v": 1})
        # Both are buffer appends: deferred cost lands on query_work.
        assert view.update_work - after_insert == after_insert
        assert view.pending_count == 2

    def test_split_delta_delete_is_indexed(self):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"],
                         merge_threshold=10_000)
        for i in range(100):
            view.insert({"g": "a", "v": i})
        assert view.delta_size == 100
        view.delete({"g": "a", "v": 50})
        assert view.delta_size == 99
        assert view.query()["a"]["count"] == 99

    def test_split_duplicate_rows_in_delta(self):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"],
                         merge_threshold=10_000)
        view.insert({"g": "a", "v": 7})
        view.insert({"g": "a", "v": 7})
        view.delete({"g": "a", "v": 7})
        assert view.query()["a"]["count"] == 1
        view.delete({"g": "a", "v": 7})
        assert view.query() == {}


class TestRealTimeDatabaseRoundTrip:
    def build(self):
        database = RealTimeDatabase()
        database.subscribe("hot", LiveQuery(lambda doc: doc["temp"] > 20))
        database.put("s1", {"temp": 25})
        database.put("s2", {"temp": 10})
        return database

    def test_round_trip(self):
        database = self.build()
        image = database.snapshot()
        database.put("s3", {"temp": 30})
        database.put("s1", {"temp": 5})
        database.restore(image)
        assert database.query("hot").result_keys() == ["s1"]
        assert database.get("s3") is None

    def test_restore_requires_registered_queries(self):
        image = self.build().snapshot()
        fresh = RealTimeDatabase()
        with pytest.raises(StateError):
            fresh.restore(image)

    def test_recovery_manager_protocol(self):
        database = self.build()
        manager = RecoveryManager(database, interval=1,
                                  measure_bytes=False,
                                  sleep=lambda _d: None)
        manager.start()
        database.put("s1", {"temp": 1})
        manager.recover()
        assert database.get("s1") == {"temp": 25}


# -- cross-implementation property --------------------------------------------

operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(min_value=0, max_value=2),   # group
              st.integers(min_value=0, max_value=5)),  # value
    min_size=0, max_size=40)


def _kernel_view(rows):
    """The same aggregate through the dynamic-table kernel path."""
    service = DynamicTableService()
    service.create_table("base", Schema(["g", "v"]))
    service.execute(
        "CREATE DYNAMIC TABLE agg AS SELECT g, COUNT(*) AS n, "
        "SUM(v) AS total, MIN(v) AS lo, MAX(v) AS hi FROM base "
        "GROUP BY g EMIT CHANGES")
    if rows:
        service.apply("base", inserts=rows, at=1)
    service.refresh("agg")
    out = {}
    for row, weight in service.read("agg").items():
        assert weight == 1
        out[row["g"]] = {"count": row["n"], "sum": row["total"],
                         "min": row["lo"], "max": row["hi"]}
    return out


@settings(max_examples=60, deadline=None)
@given(operations)
def test_all_strategies_and_kernel_agree(script):
    views = [make(strategy) for strategy in STRATEGIES]
    live = []  # multiset of surviving rows, for the kernel run
    for op, group, value in script:
        row = {"g": group, "v": value}
        if op == "insert":
            for view in views:
                view.insert(row)
            live.append(row)
        elif row in live:
            for view in views:
                view.delete(row)
            live.remove(row)
    results = [view.query() for view in views]
    for other in results[1:]:
        assert other == results[0]
    kernel = _kernel_view(live)
    expected = {group: {key: acc[key]
                        for key in ("count", "sum", "min", "max")}
                for group, acc in results[0].items()}
    assert kernel == expected
