"""Tests for view-maintenance strategies (paper Section 5.1, C6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StateError
from repro.viewmaint import (
    EagerView,
    LazyView,
    RecomputeView,
    SplitView,
)

STRATEGIES = [RecomputeView, EagerView, LazyView, SplitView]


def make(strategy):
    return strategy(group_fn=lambda r: r["g"], value_fn=lambda r: r["v"])


ROWS = [{"g": "a", "v": 1}, {"g": "a", "v": 3},
        {"g": "b", "v": 10}, {"g": "a", "v": 5}]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestAllStrategiesAgree:
    def test_grouped_aggregates(self, strategy):
        view = make(strategy)
        for row in ROWS:
            view.insert(row)
        result = view.query()
        assert result["a"]["count"] == 3
        assert result["a"]["sum"] == 9
        assert result["a"]["avg"] == 3
        assert result["a"]["min"] == 1
        assert result["a"]["max"] == 5
        assert result["b"]["count"] == 1

    def test_delete_retracts(self, strategy):
        view = make(strategy)
        for row in ROWS:
            view.insert(row)
        view.delete({"g": "a", "v": 3})
        result = view.query()
        assert result["a"]["count"] == 2
        assert result["a"]["sum"] == 6

    def test_group_disappears_when_empty(self, strategy):
        view = make(strategy)
        view.insert({"g": "x", "v": 1})
        view.delete({"g": "x", "v": 1})
        assert "x" not in view.query()

    def test_empty_view(self, strategy):
        assert make(strategy).query() == {}

    def test_query_is_idempotent(self, strategy):
        view = make(strategy)
        for row in ROWS:
            view.insert(row)
        assert view.query() == view.query()


class TestWorkProfiles:
    """The defining cost characteristics of each strategy."""

    def test_eager_pays_on_update(self):
        view = make(EagerView)
        for i in range(100):
            view.insert({"g": "a", "v": i})
        assert view.update_work == 100
        view.query()
        assert view.query_work == 1  # one group

    def test_lazy_pays_on_query(self):
        view = make(LazyView)
        for i in range(100):
            view.insert({"g": "a", "v": i})
        assert view.update_work == 0
        assert view.pending_count == 100
        view.query()
        assert view.pending_count == 0
        assert view.query_work >= 100

    def test_recompute_scans_everything_per_query(self):
        view = make(RecomputeView)
        for i in range(50):
            view.insert({"g": "a", "v": i})
        view.query()
        view.query()
        assert view.query_work == 100

    def test_split_amortises_merges(self):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"], merge_threshold=10)
        for i in range(25):
            view.insert({"g": "a", "v": i})
        assert view.merges == 2
        assert view.delta_size == 5
        result = view.query()
        assert result["a"]["count"] == 25

    def test_split_query_cost_bounded_by_threshold(self):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"], merge_threshold=8)
        for i in range(100):
            view.insert({"g": f"g{i % 3}", "v": i})
        view.query_work = 0
        view.query()
        # Query touches groups + at most threshold-1 delta rows.
        assert view.query_work <= 3 + 7

    def test_split_delete_from_delta_and_snapshot(self):
        view = SplitView(group_fn=lambda r: r["g"],
                         value_fn=lambda r: r["v"], merge_threshold=4)
        for i in range(4):
            view.insert({"g": "a", "v": i})  # merged at 4
        view.insert({"g": "a", "v": 99})     # stays in delta
        view.delete({"g": "a", "v": 99})     # delta delete
        view.delete({"g": "a", "v": 0})      # snapshot delete
        assert view.query()["a"]["count"] == 3

    def test_invalid_threshold(self):
        with pytest.raises(StateError):
            SplitView(lambda r: 0, lambda r: 0, merge_threshold=0)


class TestErrors:
    def test_eager_delete_absent_group(self):
        with pytest.raises(StateError):
            make(EagerView).delete({"g": "x", "v": 1})

    def test_recompute_delete_absent_row(self):
        with pytest.raises(StateError):
            make(RecomputeView).delete({"g": "x", "v": 1})


# ---------------------------------------------------------------------------
# Property: all strategies compute the same view
# ---------------------------------------------------------------------------

operation = st.tuples(
    st.sampled_from(["insert", "delete", "query"]),
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=9))


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(operation, max_size=80))
def test_property_strategies_equivalent(ops):
    views = [make(s) for s in STRATEGIES]
    live: list[dict] = []
    for op, group, value in ops:
        row = {"g": group, "v": value}
        if op == "insert":
            live.append(row)
            for view in views:
                view.insert(row)
        elif op == "delete" and row in live:
            live.remove(row)
            for view in views:
                view.delete(row)
        elif op == "query":
            results = [view.query() for view in views]
            assert all(r == results[0] for r in results[1:])
    final = [view.query() for view in views]
    assert all(r == final[0] for r in final[1:])
