"""Tests for the cost-based volcano join planner."""

import pytest

from repro.core import PlanError, Schema, Stream
from repro.cql import CQLEngine, reference_evaluate
from repro.sql import (
    SourceStats,
    Statistics,
    estimate,
    plan_signature,
    volcano_optimize,
)


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("Fast", Schema(["id", "v"]))
    engine.register_stream("Slow", Schema(["id", "w"]))
    engine.register_relation("Dim", Schema(["id", "label"]),
                             rows=[{"id": i, "label": f"L{i}"}
                                   for i in range(3)])
    return engine


@pytest.fixture
def stats():
    return Statistics({
        "Fast": SourceStats(rate=100.0, size=1000.0,
                            distinct={"id": 100}),
        "Slow": SourceStats(rate=1.0, size=10.0, distinct={"id": 100}),
        "Dim": SourceStats(rate=0.0, size=3.0, distinct={"id": 3}),
    })


QUERY = ("SELECT F.v FROM Fast F [Range 10], Slow S [Range 10], Dim D "
         "WHERE F.id = S.id AND S.id = D.id")


class TestEstimate:
    def test_leaf_estimates_come_from_stats(self, engine, stats):
        plan = engine.plan("SELECT * FROM Fast [Range 10]")
        cost = estimate(plan, stats)
        assert cost.state == 1000.0
        assert cost.rate == 100.0
        assert cost.work == 0.0

    def test_join_cost_is_probe_work(self, engine, stats):
        plan = engine.plan(
            "SELECT * FROM Slow S [Range 10], Dim D WHERE S.id = D.id")
        cost = estimate(plan, stats)
        # probe work = r_S * |D| + r_D * |S| = 1*3 + 0*10 = 3
        assert cost.work == pytest.approx(3.0)

    def test_missing_stats_raise(self, engine):
        plan = engine.plan("SELECT * FROM Fast [Range 10]")
        with pytest.raises(PlanError, match="statistics"):
            estimate(plan, Statistics({}))


class TestVolcano:
    def test_reordering_reduces_estimated_work(self, engine, stats):
        naive = engine.plan(QUERY)
        optimized = volcano_optimize(naive, stats)
        assert estimate(optimized, stats).work <= \
            estimate(naive, stats).work

    def test_optimized_plan_produces_same_results(self, engine, stats):
        streams = {
            "Fast": Stream.of_records(Schema(["id", "v"]), [
                ({"id": 0, "v": 10}, 1), ({"id": 1, "v": 20}, 2),
                ({"id": 0, "v": 30}, 3)]),
            "Slow": Stream.of_records(Schema(["id", "w"]), [
                ({"id": 0, "w": 7}, 2), ({"id": 2, "w": 9}, 4)]),
        }
        naive = engine.plan(QUERY)
        optimized = volcano_optimize(naive, stats)
        assert reference_evaluate(optimized, engine.catalog, streams) == \
            reference_evaluate(naive, engine.catalog, streams)

    def test_fast_stream_pushed_to_top(self, engine, stats):
        # The cheapest plan joins the slow/small inputs first and probes
        # with the fast stream last.
        optimized = volcano_optimize(engine.plan(QUERY), stats)
        signature = plan_signature(optimized)
        assert "equijoin" in signature
        # The fast stream's scan appears at the outermost join level:
        # its subtree is a direct child of the root join region.
        from repro.cql import Join, walk
        top_join = next(n for n in walk(optimized) if isinstance(n, Join))
        sides = []
        for child in top_join.children:
            from repro.cql import StreamScan
            sides.append({s.name for s in walk(child)
                          if hasattr(s, "name")})
        assert any("Fast" in side and len(side) == 1 for side in sides)

    def test_single_source_plan_unchanged(self, engine, stats):
        plan = engine.plan("SELECT * FROM Fast [Range 10]")
        assert volcano_optimize(plan, stats) == plan

    def test_idempotent(self, engine, stats):
        once = volcano_optimize(engine.plan(QUERY), stats)
        twice = volcano_optimize(once, stats)
        assert estimate(once, stats).work == estimate(twice, stats).work
