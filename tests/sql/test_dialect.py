"""Tests for the streaming SQL dialect (parser + execution)."""

import pytest

from repro.core import ParseError, PlanError, Schema
from repro.sql import (
    EmitMode,
    GroupWindowKind,
    SQLEngine,
    parse_sql,
    run_sql,
)

SCHEMA = Schema(["room", "temp"])
ROWS = [({"room": "a", "temp": 20}, 1), ({"room": "b", "temp": 30}, 2),
        ({"room": "a", "temp": 26}, 5), ({"room": "a", "temp": 10}, 12),
        ({"room": "b", "temp": 31}, 14)]


def rows_of(records):
    return sorted(tuple(r.values) for r in records)


class TestParser:
    def test_tumble_in_group_by(self):
        stmt = parse_sql(
            "SELECT room, COUNT(*) n FROM Obs GROUP BY room, TUMBLE(10)")
        assert stmt.window.kind is GroupWindowKind.TUMBLE
        assert stmt.window.size == 10
        assert [c.name for c in stmt.group_by] == ["room"]

    def test_hop_with_two_durations(self):
        stmt = parse_sql(
            "SELECT COUNT(*) n FROM Obs GROUP BY HOP(10 SEC, 5 SEC)")
        assert stmt.window.kind is GroupWindowKind.HOP
        assert stmt.window.size == 10_000
        assert stmt.window.slide == 5_000

    def test_session(self):
        stmt = parse_sql("SELECT COUNT(*) n FROM Obs GROUP BY SESSION(30)")
        assert stmt.window.kind is GroupWindowKind.SESSION

    def test_default_emit_modes(self):
        windowed = parse_sql(
            "SELECT COUNT(*) n FROM Obs GROUP BY TUMBLE(10)")
        assert windowed.emit is EmitMode.FINAL
        stateless = parse_sql("SELECT room FROM Obs")
        assert stateless.emit is EmitMode.CHANGES

    def test_explicit_emit_changes(self):
        stmt = parse_sql("SELECT room FROM Obs EMIT CHANGES")
        assert stmt.emit is EmitMode.CHANGES

    def test_emit_final_requires_window(self):
        with pytest.raises(ParseError, match="FINAL"):
            parse_sql("SELECT room FROM Obs EMIT FINAL")

    def test_two_windows_rejected(self):
        with pytest.raises(ParseError, match="one window"):
            parse_sql("SELECT COUNT(*) n FROM Obs "
                      "GROUP BY TUMBLE(5), TUMBLE(10)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT room FROM Obs EMIT CHANGES banana split")


class TestStatelessQueries:
    def test_filter_and_project(self):
        out = run_sql("SELECT room, temp FROM Obs WHERE temp > 25 "
                      "EMIT CHANGES", SCHEMA, "Obs", ROWS)
        assert rows_of(out) == [("a", 26), ("b", 30), ("b", 31)]

    def test_select_star(self):
        out = run_sql("SELECT * FROM Obs WHERE room = 'b'",
                      SCHEMA, "Obs", ROWS)
        assert len(out) == 2

    def test_computed_column(self):
        out = run_sql("SELECT temp * 2 AS double FROM Obs WHERE room = 'b'",
                      SCHEMA, "Obs", ROWS)
        assert rows_of(out) == [(60,), (62,)]


class TestWindowedAggregation:
    def test_tumble_counts(self):
        out = run_sql(
            "SELECT room, COUNT(*) AS n FROM Obs GROUP BY room, TUMBLE(10)",
            SCHEMA, "Obs", ROWS)
        assert rows_of(out) == [("a", 1), ("a", 2), ("b", 1), ("b", 1)]

    def test_window_bounds_columns(self):
        out = run_sql(
            "SELECT room, window_start, window_end, COUNT(*) AS n "
            "FROM Obs GROUP BY room, TUMBLE(10)", SCHEMA, "Obs", ROWS)
        assert ("a", 0, 10, 2) in rows_of(out)

    def test_multiple_aggregates(self):
        out = run_sql(
            "SELECT room, MIN(temp) lo, MAX(temp) hi, SUM(temp) s, "
            "AVG(temp) a FROM Obs GROUP BY room, TUMBLE(100)",
            SCHEMA, "Obs", ROWS)
        by_room = {r["room"]: r for r in out}
        assert by_room["a"].values == ("a", 10, 26, 56, 56 / 3)
        assert by_room["b"].values == ("b", 30, 31, 61, 30.5)

    def test_having(self):
        out = run_sql(
            "SELECT room, COUNT(*) n FROM Obs GROUP BY room, TUMBLE(10) "
            "HAVING COUNT(*) >= 2", SCHEMA, "Obs", ROWS)
        assert rows_of(out) == [("a", 2)]

    def test_hop_windows(self):
        out = run_sql(
            "SELECT room, MAX(temp) hi FROM Obs GROUP BY room, HOP(10, 5)",
            SCHEMA, "Obs", ROWS)
        # a@5 (temp 26) appears in hops starting at 0 and 5.
        a_windows = [r for r in out if r["room"] == "a" and r["hi"] == 26]
        assert len(a_windows) == 2

    def test_session_windows(self):
        out = run_sql(
            "SELECT room, COUNT(*) n FROM Obs GROUP BY room, SESSION(5)",
            SCHEMA, "Obs", ROWS)
        # Room a: t=1 and t=5 merge (gap 5); t=12 is separate.
        a_counts = sorted(r["n"] for r in out if r["room"] == "a")
        assert a_counts == [1, 2]

    def test_aggregation_with_star_rejected(self):
        with pytest.raises(PlanError):
            run_sql("SELECT * FROM Obs GROUP BY room, TUMBLE(10)",
                    SCHEMA, "Obs", ROWS)

    def test_parallel_execution_matches_serial(self):
        query = ("SELECT room, COUNT(*) AS n, SUM(temp) AS s FROM Obs "
                 "GROUP BY room, TUMBLE(10)")
        serial = run_sql(query, SCHEMA, "Obs", ROWS, parallelism=1)
        parallel = run_sql(query, SCHEMA, "Obs", ROWS, parallelism=3)
        assert rows_of(serial) == rows_of(parallel)


class TestRunningAggregation:
    def test_emit_changes_streams_refinements(self):
        out = run_sql(
            "SELECT room, COUNT(*) AS n FROM Obs GROUP BY room "
            "EMIT CHANGES", SCHEMA, "Obs", ROWS)
        a_updates = [r["n"] for r in out if r["room"] == "a"]
        assert a_updates == [1, 2, 3]

    def test_running_sum(self):
        out = run_sql(
            "SELECT room, SUM(temp) AS s FROM Obs GROUP BY room "
            "EMIT CHANGES", SCHEMA, "Obs", ROWS)
        b_updates = [r["s"] for r in out if r["room"] == "b"]
        assert b_updates == [30, 61]


class TestEngine:
    def test_engine_reuse(self):
        engine = SQLEngine()
        engine.register_stream("Obs", SCHEMA)
        first = engine.run("SELECT room FROM Obs", ROWS)
        second = engine.run("SELECT temp FROM Obs", ROWS)
        assert len(first) == len(second) == len(ROWS)

    def test_unknown_stream(self):
        engine = SQLEngine()
        with pytest.raises(PlanError):
            engine.run("SELECT x FROM Nope", [])
