"""Tests for key-partitioned queries running inside the DSMS engine."""

import pytest

from repro.core import Schema
from repro.cql import ContinuousQuery, PartitionedQuery
from repro.dsms import DSMSEngine


OBS = Schema(["id", "room", "temp"])

GROUPED = ("SELECT room, COUNT(*) AS n FROM Obs [Range 100] "
           "GROUP BY room")

ROWS = [
    ({"id": 1, "room": "a", "temp": 20}, 0),
    ({"id": 2, "room": "b", "temp": 31}, 1),
    ({"id": 3, "room": "a", "temp": 22}, 2),
    ({"id": 4, "room": "c", "temp": 19}, 3),
    ({"id": 5, "room": "b", "temp": 33}, 5),
]


@pytest.fixture
def dsms():
    engine = DSMSEngine()
    engine.register_stream("Obs", OBS)
    return engine


def ingest_all(dsms, rows=ROWS):
    for row, t in rows:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()


class TestPartitionedHandles:
    def test_partitioned_query_serves_like_serial(self, dsms):
        parallel = dsms.register_query("par", GROUPED, parallelism=3)
        serial = dsms.register_query("ser", GROUPED)
        assert isinstance(parallel.query, PartitionedQuery)
        assert isinstance(serial.query, ContinuousQuery)
        ingest_all(dsms)
        assert parallel.store_state() == serial.store_state()
        assert parallel.metrics.processed == serial.metrics.processed == 5

    def test_unpartitionable_request_clamps_to_serial(self, dsms):
        handle = dsms.register_query(
            "global", "SELECT COUNT(*) AS n FROM Obs [Range 100]",
            parallelism=4)
        assert isinstance(handle.query, ContinuousQuery)
        ingest_all(dsms)
        assert [r["n"] for r in handle.store_state()] == [5]

    def test_window_expiration_through_advance_time(self, dsms):
        parallel = dsms.register_query("par", GROUPED, parallelism=2)
        serial = dsms.register_query("ser", GROUPED)
        ingest_all(dsms)
        dsms.advance_time(300)
        assert parallel.store_state() == serial.store_state()
        assert len(parallel.store_state()) == 0

    def test_scratch_accounts_every_replica(self, dsms):
        dsms.register_query("par", GROUPED, parallelism=3)
        ingest_all(dsms)
        # All five tuples are buffered in the replicas' window state and
        # the Scratch sees them across the fissioned registrations.
        assert dsms.scratch.occupancy() >= 5
        assert dsms.total_state_size() >= 5

    def test_cancel_partitioned_query(self, dsms):
        dsms.register_query("par", GROUPED, parallelism=2)
        handle = dsms.cancel_query("par")
        assert isinstance(handle.query, PartitionedQuery)
        assert dsms.queries == []

    def test_sharing_mode_keeps_fissioned_queries_isolated(self):
        dsms = DSMSEngine(sharing=True)
        dsms.register_stream("Obs", OBS)
        parallel = dsms.register_query("par", GROUPED, parallelism=2)
        member = dsms.register_query("member", GROUPED)
        assert isinstance(parallel.query, PartitionedQuery)
        assert member.query._shared is not None
        ingest_all(dsms)
        assert parallel.store_state() == member.store_state()


class TestPartitionedRecovery:
    def test_engine_snapshot_restore_covers_replicas(self, dsms):
        handle = dsms.register_query("par", GROUPED, parallelism=3)
        ingest_all(dsms, ROWS[:3])
        checkpoint = dsms.snapshot()
        ingest_all(dsms, ROWS[3:])
        after = handle.store_state()
        dsms.restore(checkpoint)
        assert handle.store_state() != after
        for row, t in ROWS[3:]:
            dsms.ingest("Obs", row, t)
        dsms.run_until_idle()
        assert handle.store_state() == after
