"""Multi-query plan sharing: SharedGroup, MultiQueryKernel and the DSMS
sharing mode (the tentpole's multi-query optimisation layer)."""

import pytest

from repro.core import PlanError, Schema
from repro.cql import CQLEngine
from repro.dsms import DSMSEngine

OBS = Schema(["id", "room", "temp"])

Q_COUNT = "SELECT COUNT(*) AS n FROM Obs [Range 100] WHERE temp > 20"
Q_IDS = "SELECT DISTINCT id FROM Obs [Range 100] WHERE temp > 20"

ROWS = [
    ({"id": 1, "room": "a", "temp": 35}, 0),
    ({"id": 2, "room": "a", "temp": 10}, 1),
    ({"id": 1, "room": "b", "temp": 22}, 3),
    ({"id": 3, "room": "b", "temp": 40}, 7),
]


def cql_engine():
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    return engine


class TestSharedGroup:
    def test_common_prefix_compiles_once(self):
        engine = cql_engine()
        group = engine.shared_group()
        engine.register_query(Q_COUNT, shared=group)
        engine.register_query(Q_IDS, shared=group)
        # Both queries share window(select(stream_scan)): one memo hit,
        # and the distinct-operator count is below two private plans.
        assert group.shared_hits >= 1
        isolated_ops = sum(
            _count_ops(cql_engine().register_query(q)._root)
            for q in (Q_COUNT, Q_IDS))
        assert len(group.distinct_operators()) < isolated_ops

    def test_members_match_isolated_execution(self):
        engine = cql_engine()
        group = engine.shared_group()
        shared = [engine.register_query(q, shared=group)
                  for q in (Q_COUNT, Q_IDS)]
        isolated = [cql_engine().register_query(q)
                    for q in (Q_COUNT, Q_IDS)]
        for query in shared[:1] + isolated:
            query.start()
        for row, t in ROWS:
            # One push into the group feeds every member.
            shared[0].push("Obs", row, t)
            for query in isolated:
                query.push("Obs", row, t)
        for query in shared[:1] + isolated:
            query.advance_to(150)
            query.finish()
        for member, lone in zip(shared, isolated):
            assert member.as_relation() == lone.as_relation()
            assert _stream_list(member.emitted_stream()) == \
                _stream_list(lone.emitted_stream())

    def test_group_freezes_after_first_input(self):
        engine = cql_engine()
        group = engine.shared_group()
        query = engine.register_query(Q_COUNT, shared=group)
        query.start()
        query.push("Obs", {"id": 1, "room": "a", "temp": 30}, 1)
        with pytest.raises(PlanError, match="after data has flowed"):
            engine.register_query(Q_IDS, shared=group)

    def test_state_counted_once(self):
        engine = cql_engine()
        group = engine.shared_group()
        for q in (Q_COUNT, Q_IDS):
            engine.register_query(q, shared=group).start()
        for row, t in ROWS:
            group.push_batch(t, {"Obs": [row]})
        lone = cql_engine().register_query(Q_COUNT)
        lone.start()
        for row, t in ROWS:
            lone.push("Obs", row, t)
        lone_state = sum(op.state_size
                         for _, op in _stateful(lone._root))
        # The shared window buffer serves both members, so group state is
        # strictly below twice one query's state.
        assert group.state_size() < 2 * lone_state


def _count_ops(root):
    seen = set()
    stack = [root]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            continue
        seen.add(id(op))
        stack.extend(op.children)
    return len(seen)


def _stream_list(stream):
    return list(zip(stream.timestamps(), stream.values()))


def _stateful(root):
    from repro.dsms.engine import _stateful_ops
    return _stateful_ops(root)


class TestDSMSSharing:
    def engine(self, sharing=True):
        engine = DSMSEngine(sharing=sharing)
        engine.register_stream("Obs", OBS)
        return engine

    def feed(self, engine):
        for row, t in ROWS:
            engine.ingest("Obs", row, t)
            engine.run_until_idle()
        engine.advance_time(150)

    def test_shared_store_matches_isolated(self):
        shared_engine = self.engine(sharing=True)
        s1 = shared_engine.register_query("q1", Q_COUNT)
        s2 = shared_engine.register_query("q2", Q_IDS)
        isolated_engine = self.engine(sharing=False)
        i1 = isolated_engine.register_query("q1", Q_COUNT)
        i2 = isolated_engine.register_query("q2", Q_IDS)
        self.feed(shared_engine)
        self.feed(isolated_engine)
        for shared, isolated in ((s1, i1), (s2, i2)):
            assert shared.store_state() == isolated.store_state()
            assert shared.emissions() == isolated.emissions()
        assert shared_engine.shared_subplan_hits >= 1

    def test_identical_queries_agree(self):
        engine = self.engine()
        q1 = engine.register_query("q1", Q_COUNT)
        q2 = engine.register_query("q2", Q_COUNT)
        self.feed(engine)
        assert q1.store_state() == q2.store_state()
        assert q1.emissions() == q2.emissions()

    def test_cancel_of_shared_member_rejected(self):
        engine = self.engine()
        engine.register_query("q1", Q_COUNT)
        engine.register_query("q2", Q_IDS)
        with pytest.raises(PlanError, match="shared plan group"):
            engine.cancel_query("q1")

    def test_custom_policy_queries_stay_isolated(self):
        from repro.dsms.shedding import NoShedding
        engine = self.engine()
        engine.register_query("custom", Q_COUNT, shedder=NoShedding())
        assert engine._group_handle is None
        engine.cancel_query("custom")  # isolated: cancellation allowed

    def test_sharing_reduces_total_state(self):
        shared_engine = self.engine(sharing=True)
        isolated_engine = self.engine(sharing=False)
        for name, q in (("q1", Q_COUNT), ("q2", Q_IDS)):
            shared_engine.register_query(name, q)
            isolated_engine.register_query(name, q)
        self.feed(shared_engine)
        self.feed(isolated_engine)
        # advance_time(150) expires the windows; re-fill them.
        for engine in (shared_engine, isolated_engine):
            engine.ingest("Obs", {"id": 5, "room": "c", "temp": 50}, 160)
            engine.run_until_idle()
        assert shared_engine.total_state_size() < \
            isolated_engine.total_state_size()
