"""RandomShedder boundary behaviour and shed-fraction accounting."""

import pytest

from repro.core import Schema
from repro.dsms import DSMSEngine
from repro.dsms.queues import InputQueue
from repro.dsms.shedding import NoShedding, RandomShedder

OBS = Schema(["id", "room", "temp"])


class TestFullQueueBoundary:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 12345])
    def test_full_queue_drops_deterministically(self, seed):
        """At occupancy == 1.0 the drop probability is exactly 1.0 — not
        merely 'random() >= 1.0 happens to be false'."""
        shedder = RandomShedder(threshold=0.5, seed=seed)
        queue = InputQueue(capacity=4)
        for _ in range(4):
            queue.offer("x", 0)
        assert queue.occupancy == 1.0
        for _ in range(50):
            assert not shedder.admit("x", queue)
        assert shedder.shed == 50
        assert shedder.shed_fraction == 1.0

    def test_full_queue_drops_even_with_threshold_one(self):
        shedder = RandomShedder(threshold=1.0, seed=0)
        queue = InputQueue(capacity=2)
        queue.offer("x", 0)
        assert shedder.admit("x", queue)      # below capacity: admitted
        queue.offer("x", 0)
        assert not shedder.admit("x", queue)  # full: dropped

    def test_below_full_is_still_probabilistic(self):
        shedder = RandomShedder(threshold=0.0, seed=1)
        queue = InputQueue(capacity=10)
        for _ in range(9):
            queue.offer("x", 0)
        decisions = [shedder.admit("x", queue) for _ in range(300)]
        assert any(decisions) and not all(decisions)


class TestSeededDeterminism:
    def test_same_seed_same_decisions(self):
        queue = InputQueue(capacity=10)
        for _ in range(8):
            queue.offer("x", 0)
        first = RandomShedder(threshold=0.5, seed=99)
        second = RandomShedder(threshold=0.5, seed=99)
        decisions_a = [first.admit("x", queue) for _ in range(200)]
        decisions_b = [second.admit("x", queue) for _ in range(200)]
        assert decisions_a == decisions_b

    def test_different_seed_different_decisions(self):
        queue = InputQueue(capacity=10)
        for _ in range(8):
            queue.offer("x", 0)
        a = [RandomShedder(threshold=0.5, seed=1).admit("x", queue)
             for _ in range(100)]
        queue_b = InputQueue(capacity=10)
        for _ in range(8):
            queue_b.offer("x", 0)
        b = [RandomShedder(threshold=0.5, seed=2).admit("x", queue_b)
             for _ in range(100)]
        assert a != b


class TestShedFractionAccounting:
    def test_queue_drop_after_admit_counts_into_shed_fraction(self):
        """NoShedding admits everything, but a capacity-1 queue bounces
        the second same-instant tuple: shed_fraction must report it."""
        dsms = DSMSEngine(queue_capacity=1)
        dsms.register_stream("Obs", OBS)
        handle = dsms.register_query(
            "q", "SELECT id FROM Obs [Now]", shedder=NoShedding())
        row = {"id": 0, "room": "a", "temp": 1}
        assert dsms.ingest("Obs", row, 0) == 1
        assert dsms.ingest("Obs", row, 0) == 0   # queue full
        assert handle.metrics.queue_dropped == 1
        assert handle.shedder.queue_dropped == 1
        assert handle.shedder.shed_fraction == pytest.approx(0.5)

    def test_policy_sheds_and_queue_drops_combine(self):
        shedder = NoShedding()
        queue = InputQueue(capacity=1)
        assert shedder.admit("x", queue)
        queue.offer("x", 0)
        assert shedder.admit("y", queue)  # policy admits at full queue
        shedder.record_queue_drop()       # ...but the queue bounced it
        assert shedder.shed_fraction == pytest.approx(0.5)

    def test_fraction_zero_without_traffic(self):
        assert NoShedding().shed_fraction == 0.0
