"""Engine-level live rescale and the autoscale loop
(DSMSEngine.rescale_query / autoscale=)."""

import pytest

from repro.core import PlanError, Schema, StateError
from repro.cql.parallel import PartitionedQuery
from repro.dsms import DSMSEngine
from repro.obs import explain_analyze
from repro.plan.adaptive import AdaptivePolicy

OBS = Schema(["id", "room", "temp"])
GROUPED = ("SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 20] "
           "GROUP BY room")
ROOMS = ["kitchen", "lab", "hall", "attic", "cellar"]

ROWS = [({"id": i, "room": ROOMS[i % len(ROOMS)], "temp": 10 + i % 30}, i)
        for i in range(24)]


def make_engine(**kwargs):
    engine = DSMSEngine(**kwargs)
    engine.register_stream("Obs", OBS)
    return engine


def ingest(engine, rows):
    for row, t in rows:
        engine.ingest("Obs", row, t)


def store_outputs(handle):
    history = handle.store_history()
    return (history, sorted(map(repr, handle.store_state())))


class TestRescaleQuery:
    def test_live_rescale_matches_never_rescaled_control(self):
        control = make_engine()
        control_handle = control.register_query("q", GROUPED)
        ingest(control, ROWS)
        control.run_until_idle()

        engine = make_engine()
        handle = engine.register_query("q", GROUPED)
        ingest(engine, ROWS[:10])
        engine.run_until_idle()
        report = engine.rescale_query("q", 3)
        ingest(engine, ROWS[10:])
        engine.run_until_idle()

        assert store_outputs(handle) == store_outputs(control_handle)
        assert isinstance(handle.query, PartitionedQuery)
        assert handle.query.parallelism == 3
        assert handle.rescales == [report]
        assert report.parallelism_from == 1

    def test_unknown_query_rejected(self):
        engine = make_engine()
        with pytest.raises(PlanError, match="unknown query"):
            engine.rescale_query("nope", 2)

    def test_pending_queue_blocks_rescale(self):
        engine = make_engine()
        engine.register_query("q", GROUPED)
        ingest(engine, ROWS[:3])  # enqueued, not yet drained
        with pytest.raises(StateError, match="drain"):
            engine.rescale_query("q", 2)

    def test_unpartitionable_query_rejected(self):
        engine = make_engine()
        engine.register_query("g", "SELECT COUNT(*) AS n FROM Obs [Range 5]")
        with pytest.raises(PlanError, match="not key-partitionable"):
            engine.rescale_query("g", 2)

    def test_scratch_registrations_follow_the_new_replicas(self):
        engine = make_engine()
        engine.register_query("q", GROUPED)
        ingest(engine, ROWS[:10])
        engine.run_until_idle()
        occupancy_before = engine.scratch.occupancy()
        engine.rescale_query("q", 3)
        labels = [label for label, _ in engine.scratch._holders
                  if label.startswith("q/")]
        # One registration per stateful operator per replica, suffixed.
        assert labels and all(label.endswith(("!0", "!1", "!2"))
                              for label in labels)
        # The migrated state is the same state: accounting is unchanged.
        assert engine.scratch.occupancy() == occupancy_before

    def test_recovery_takes_a_fresh_baseline(self):
        engine = make_engine(recovery_interval=4)
        handle = engine.register_query("q", GROUPED)
        ingest(engine, ROWS[:12])
        engine.run_until_idle()
        assert len(engine.recovery.checkpoints) > 1
        engine.rescale_query("q", 2)
        # Old checkpoints encode the old replica shape: all dropped, one
        # fresh baseline at the migration point.
        assert len(engine.recovery.checkpoints) == 1
        ingest(engine, ROWS[12:])
        engine.run_until_idle()
        control = make_engine()
        control_handle = control.register_query("q", GROUPED)
        ingest(control, ROWS)
        control.run_until_idle()
        assert store_outputs(handle) == store_outputs(control_handle)

    def test_explain_analyze_reports_fission_and_rescales(self):
        engine = make_engine()
        handle = engine.register_query("q", GROUPED)
        ingest(engine, ROWS[:10])
        engine.run_until_idle()
        engine.rescale_query("q", 3)
        rendered = explain_analyze(handle)
        assert "fissioned x3" in rendered
        assert "rescales: 1→3" in rendered


class TestAutoscale:
    POLICY = AdaptivePolicy(max_parallelism=4, high_occupancy=0.5,
                            low_occupancy=0.05, confirm_polls=2,
                            cooldown_polls=1)

    def test_backlog_drives_scale_up_without_divergence(self):
        engine = make_engine(autoscale=self.POLICY, queue_capacity=8)
        handle = engine.register_query("q", GROUPED)
        control = make_engine()
        control_handle = control.register_query("q", GROUPED)
        for start in range(0, len(ROWS), 6):
            chunk = ROWS[start:start + 6]
            ingest(engine, chunk)
            engine.run_until_idle()
            ingest(control, chunk)
            control.run_until_idle()
        assert handle.autoscaler is not None
        assert handle.autoscaler.as_dict()["rescales"] >= 1
        assert handle.query.parallelism > 1
        assert store_outputs(handle) == store_outputs(control_handle)

    def test_ineligible_queries_are_cached_not_retried(self):
        engine = make_engine(autoscale=True)
        handle = engine.register_query(
            "g", "SELECT COUNT(*) AS n FROM Obs [Range 5]")
        ingest(engine, ROWS[:6])
        engine.run_until_idle()
        engine.run_until_idle()
        assert handle.autoscaler is None
        assert "g" in engine._autoscale_ineligible
        assert not isinstance(handle.query, PartitionedQuery)

    def test_autoscale_off_by_default(self):
        engine = make_engine()
        handle = engine.register_query("q", GROUPED)
        ingest(engine, ROWS)
        engine.run_until_idle()
        assert handle.autoscaler is None
        assert not isinstance(handle.query, PartitionedQuery)
