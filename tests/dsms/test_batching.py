"""DSMS micro-batch servicing: queue drain-to-batch and the knobs.

Covers ``InputQueue.poll_batch`` (same-timestamp runs only), engine and
per-query ``batch_size`` resolution (planner clamp vs explicit opt-in),
batched-vs-per-element parity on the Store/state/emissions, and the
``max_batch_wait`` deferral knob.
"""

from repro.core.records import Schema
from repro.dsms.engine import DSMSEngine
from repro.dsms.queues import InputQueue

OBS = Schema(["id", "room", "temp"])

SAFE_QUERY = ("SELECT ISTREAM id, temp FROM Obs [Range Unbounded] "
              "WHERE temp > 30")
UNSAFE_QUERY = "SELECT ISTREAM COUNT(*) AS n FROM Obs [Range 5]"
RELATION_QUERY = "SELECT id, temp FROM Obs [Range 5] WHERE temp > 30"


def make_engine(**kwargs):
    engine = DSMSEngine(queue_capacity=100_000, **kwargs)
    engine.register_stream("Obs", OBS)
    return engine


def feed(engine, instants=8, per_instant=6):
    for t in range(instants):
        for i in range(per_instant):
            engine.ingest("Obs", {"id": i, "room": f"r{i % 2}",
                                  "temp": 25 + i * 3}, t=t)
    engine.run_until_idle()


class TestPollBatch:
    def test_drains_only_the_head_timestamp_run(self):
        queue = InputQueue(capacity=16)
        for t in (1, 1, 1, 2, 2):
            queue.offer(f"v{t}", t)
        batch = queue.poll_batch(10)
        assert [q.timestamp for q in batch] == [1, 1, 1]
        assert len(queue) == 2

    def test_respects_the_limit(self):
        queue = InputQueue(capacity=16)
        for _ in range(5):
            queue.offer("v", 3)
        assert len(queue.poll_batch(2)) == 2
        assert len(queue) == 3

    def test_empty_queue_yields_empty_batch(self):
        queue = InputQueue(capacity=4)
        assert queue.poll_batch(8) == []

    def test_clears_pressure_on_drain(self):
        queue = InputQueue(capacity=10)
        for _ in range(10):
            queue.offer("v", 0)
        assert queue.pressured
        queue.poll_batch(10)
        assert not queue.pressured


class TestBatchSizeResolution:
    def test_engine_default_applies_to_safe_plans(self):
        handle = make_engine(batch_size=8).register_query("q", SAFE_QUERY)
        assert handle.batch_size == 8

    def test_planner_clamps_unsafe_plans_to_one(self):
        handle = make_engine(batch_size=8).register_query("q", UNSAFE_QUERY)
        assert handle.batch_size == 1

    def test_relation_outputs_are_batchable(self):
        handle = make_engine(batch_size=8).register_query(
            "q", RELATION_QUERY)
        assert handle.batch_size == 8

    def test_explicit_batch_size_overrides_the_clamp(self):
        handle = make_engine(batch_size=1).register_query(
            "q", UNSAFE_QUERY, batch_size=16)
        assert handle.batch_size == 16

    def test_default_engine_stays_per_element(self):
        handle = make_engine().register_query("q", SAFE_QUERY)
        assert handle.batch_size == 1


class TestBatchedServicingParity:
    def test_safe_plan_emissions_and_store_match_per_element(self):
        results = {}
        for size in (1, 8):
            engine = make_engine(batch_size=size)
            handle = engine.register_query("q", SAFE_QUERY)
            feed(engine)
            results[size] = (
                [(e.record["id"], e.timestamp) for e in handle.emissions()],
                handle.store_state(),
                handle.metrics.processed,
            )
        assert results[1] == results[8]

    def test_optedin_unsafe_plan_keeps_state_exact(self):
        states = {}
        for size in (1, 8):
            engine = make_engine()
            handle = engine.register_query("q", UNSAFE_QUERY,
                                           batch_size=size)
            feed(engine)
            states[size] = (handle.store_state(),
                            handle.query.as_relation())
        assert states[1][0] == states[8][0]
        assert states[1][1] == states[8][1]

    def test_batching_reduces_store_writes(self):
        slow = make_engine(batch_size=1)
        slow.register_query("q", RELATION_QUERY)
        feed(slow)
        fast = make_engine(batch_size=8)
        fast.register_query("q", RELATION_QUERY)
        feed(fast)
        assert fast.store.writes < slow.store.writes
        assert fast.store.current("q") == slow.store.current("q")

    def test_batches_never_mix_instants(self):
        engine = make_engine(batch_size=100)
        handle = engine.register_query("q", RELATION_QUERY)
        for t in (0, 0, 1, 1, 1, 2):
            engine.ingest("Obs", {"id": t, "room": "r", "temp": 40}, t=t)
        engine.run_until_idle()
        # Arrivals must have been applied in timestamp order; a mixed
        # batch would have raised inside the executor's order check.
        assert handle.metrics.processed == 6


class TestMaxBatchWait:
    def test_subfull_batch_defers_then_flushes(self):
        engine = make_engine(batch_size=4, max_batch_wait=3)
        handle = engine.register_query("q", SAFE_QUERY)
        engine.ingest("Obs", {"id": 1, "room": "r", "temp": 40}, t=0)
        # Quantum 1-3: deferral (queue below batch_size); quantum 4 flushes.
        for _ in range(3):
            assert engine.step()
            assert handle.metrics.processed == 0
        assert engine.step()
        assert handle.metrics.processed == 1

    def test_full_batch_never_defers(self):
        engine = make_engine(batch_size=2, max_batch_wait=50)
        handle = engine.register_query("q", SAFE_QUERY)
        for _ in range(2):
            engine.ingest("Obs", {"id": 1, "room": "r", "temp": 40}, t=0)
        assert engine.step()
        assert handle.metrics.processed == 2

    def test_run_until_idle_terminates_despite_deferrals(self):
        engine = make_engine(batch_size=64, max_batch_wait=5)
        handle = engine.register_query("q", SAFE_QUERY)
        engine.ingest("Obs", {"id": 1, "room": "r", "temp": 40}, t=0)
        engine.run_until_idle()
        assert handle.metrics.processed == 1
