"""Tests for explicit query termination (the Figure 1 contract's end)."""

import pytest

from repro.core import PlanError, Schema
from repro.dsms import DSMSEngine


@pytest.fixture
def dsms():
    engine = DSMSEngine()
    engine.register_stream("Obs", Schema(["id", "temp"]))
    return engine


class TestCancellation:
    def test_cancelled_query_stops_receiving(self, dsms):
        handle = dsms.register_query(
            "q", "SELECT COUNT(*) n FROM Obs [Range Unbounded]")
        dsms.ingest("Obs", {"id": 1, "temp": 20}, 0)
        dsms.run_until_idle()
        dsms.cancel_query("q")
        admitted = dsms.ingest("Obs", {"id": 2, "temp": 21}, 1)
        assert admitted == 0
        # The Store retains the final answer (history is durable).
        assert [r["n"] for r in handle.store_state()] == [1]

    def test_cancel_unknown_query(self, dsms):
        with pytest.raises(PlanError, match="unknown"):
            dsms.cancel_query("ghost")

    def test_other_queries_unaffected(self, dsms):
        dsms.register_query("a", "SELECT id FROM Obs [Now]")
        keep = dsms.register_query("b", "SELECT temp FROM Obs [Now]")
        dsms.cancel_query("a")
        dsms.ingest("Obs", {"id": 1, "temp": 20}, 0)
        dsms.run_until_idle()
        assert keep.metrics.processed == 1
        assert len(dsms.queries) == 1

    def test_name_reusable_after_cancel(self, dsms):
        dsms.register_query("q", "SELECT id FROM Obs [Now]")
        dsms.cancel_query("q")
        dsms.register_query("q", "SELECT temp FROM Obs [Now]")
        assert len(dsms.queries) == 1
