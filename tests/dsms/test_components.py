"""Tests for the Figure 3 components and queues/scheduling/shedding."""

import pytest

from repro.core import Bag, StateError
from repro.dsms import (
    FIFOScheduler,
    InputQueue,
    LongestQueueScheduler,
    NoShedding,
    RandomShedder,
    RoundRobinScheduler,
    Scratch,
    SemanticShedder,
    Store,
    Throw,
)


class TestInputQueue:
    def test_fifo_order(self):
        queue = InputQueue(capacity=4)
        queue.offer("a", 0)
        queue.offer("b", 1)
        assert queue.poll().value == "a"
        assert queue.poll().value == "b"
        assert queue.poll() is None

    def test_drops_when_full(self):
        queue = InputQueue(capacity=1)
        assert queue.offer("a", 0)
        assert not queue.offer("b", 1)
        assert queue.dropped == 1
        assert queue.enqueued == 1

    def test_occupancy(self):
        queue = InputQueue(capacity=4)
        queue.offer("a", 0)
        assert queue.occupancy == 0.25

    def test_invalid_capacity(self):
        with pytest.raises(StateError):
            InputQueue(capacity=0)

    def test_peek_does_not_remove(self):
        queue = InputQueue()
        queue.offer("a", 0)
        assert queue.peek().value == "a"
        assert len(queue) == 1


class TestStore:
    def test_write_and_read(self):
        store = Store()
        store.register("q")
        store.write("q", Bag(["x"]), 5)
        assert store.current("q") == Bag(["x"])
        assert store.history("q").at(5) == Bag(["x"])
        assert store.history("q").at(4) == Bag()

    def test_same_instant_write_refines(self):
        store = Store()
        store.register("q")
        store.write("q", Bag(["x"]), 5)
        store.write("q", Bag(["x", "y"]), 5)
        assert store.history("q").at(5) == Bag(["x", "y"])

    def test_current_returns_copy(self):
        store = Store()
        store.register("q")
        store.write("q", Bag(["x"]), 0)
        snapshot = store.current("q")
        snapshot.add("y")
        assert store.current("q") == Bag(["x"])


class TestScratch:
    class Holder:
        def __init__(self, size):
            self.state_size = size

    def test_occupancy_sums_holders(self):
        scratch = Scratch()
        scratch.register("a", self.Holder(3))
        scratch.register("b", self.Holder(4))
        assert scratch.occupancy() == 7
        assert scratch.breakdown() == {"a": 3, "b": 4}

    def test_peak_tracks_maximum(self):
        scratch = Scratch()
        holder = self.Holder(10)
        scratch.register("a", holder)
        scratch.occupancy()
        holder.state_size = 2
        scratch.occupancy()
        assert scratch.peak == 10


class TestThrow:
    def test_counts(self):
        throw = Throw()
        throw.discard("x", 1)
        throw.discard("y", 2)
        assert throw.discarded == 2

    def test_keep_tuples(self):
        throw = Throw(keep_tuples=True)
        throw.discard("x", 1)
        assert list(throw.tuples()) == [("x", 1)]

    def test_tuples_unavailable_when_not_kept(self):
        throw = Throw()
        with pytest.raises(ValueError):
            throw.tuples()


class FakeQuery:
    def __init__(self, pending):
        self.pending = pending


class TestSchedulers:
    def test_round_robin_rotates(self):
        scheduler = RoundRobinScheduler()
        queries = [FakeQuery(1), FakeQuery(1), FakeQuery(1)]
        picks = [scheduler.next_index(queries) for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_round_robin_skips_idle(self):
        scheduler = RoundRobinScheduler()
        queries = [FakeQuery(0), FakeQuery(2)]
        assert scheduler.next_index(queries) == 1
        assert scheduler.next_index(queries) == 1

    def test_round_robin_idle(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.next_index([FakeQuery(0)]) is None
        assert scheduler.next_index([]) is None

    def test_longest_queue_first(self):
        scheduler = LongestQueueScheduler()
        queries = [FakeQuery(2), FakeQuery(9), FakeQuery(3)]
        assert scheduler.next_index(queries) == 1

    def test_fifo_first_pending(self):
        scheduler = FIFOScheduler()
        queries = [FakeQuery(0), FakeQuery(5), FakeQuery(7)]
        assert scheduler.next_index(queries) == 1


class TestShedders:
    def test_no_shedding_admits_all(self):
        shedder = NoShedding()
        queue = InputQueue(capacity=1)
        assert shedder.admit("x", queue)
        assert shedder.shed_fraction == 0.0

    def test_random_shedder_below_threshold_admits(self):
        shedder = RandomShedder(threshold=0.5, seed=1)
        queue = InputQueue(capacity=10)
        assert all(shedder.admit("x", queue) for _ in range(5))

    def test_random_shedder_sheds_under_pressure(self):
        shedder = RandomShedder(threshold=0.0, seed=1)
        queue = InputQueue(capacity=10)
        for _ in range(9):
            queue.offer("x", 0)
        decisions = [shedder.admit("x", queue) for _ in range(200)]
        # At 90% occupancy with threshold 0 the drop probability is 0.9.
        shed_rate = decisions.count(False) / len(decisions)
        assert 0.75 < shed_rate < 1.0

    def test_random_shedder_threshold_validated(self):
        with pytest.raises(StateError):
            RandomShedder(threshold=1.5)

    def test_semantic_shedder_drops_low_utility(self):
        shedder = SemanticShedder(utility=lambda v: v, min_utility=5,
                                  threshold=0.0)
        queue = InputQueue(capacity=10)
        queue.offer("x", 0)  # occupancy > 0 => pressure
        assert shedder.admit(9, queue)
        assert not shedder.admit(1, queue)
        assert shedder.shed == 1
