"""Integration tests for the DSMS engine (paper Figure 3 end to end)."""

import pytest

from repro.core import Bag, PlanError, Schema
from repro.dsms import DSMSEngine, LongestQueueScheduler, RandomShedder


OBS = Schema(["id", "room", "temp"])


@pytest.fixture
def dsms():
    engine = DSMSEngine(keep_thrown_tuples=False)
    engine.register_stream("Obs", OBS)
    engine.register_relation("Rooms", Schema(["room", "floor"]),
                             rows=[{"room": "a", "floor": 1},
                                   {"room": "b", "floor": 2}])
    return engine


def ingest_all(dsms, rows):
    for row, t in rows:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()


class TestLifecycle:
    def test_register_and_process(self, dsms):
        handle = dsms.register_query(
            "hot", "SELECT id FROM Obs [Range 100] WHERE temp > 30")
        ingest_all(dsms, [
            ({"id": 1, "room": "a", "temp": 35}, 0),
            ({"id": 2, "room": "a", "temp": 10}, 1),
        ])
        assert sorted(r["id"] for r in handle.store_state()) == [1]

    def test_duplicate_query_name_rejected(self, dsms):
        dsms.register_query("q", "SELECT id FROM Obs [Now]")
        with pytest.raises(PlanError, match="already"):
            dsms.register_query("q", "SELECT id FROM Obs [Now]")

    def test_unknown_stream_ingest_rejected(self, dsms):
        with pytest.raises(PlanError):
            dsms.ingest("Nope", {"id": 1}, 0)

    def test_multiple_queries_share_stream(self, dsms):
        q1 = dsms.register_query("count",
                                 "SELECT COUNT(*) n FROM Obs [Range 100]")
        q2 = dsms.register_query(
            "rooms", "SELECT DISTINCT room FROM Obs [Range 100]")
        ingest_all(dsms, [
            ({"id": 1, "room": "a", "temp": 5}, 0),
            ({"id": 2, "room": "b", "temp": 6}, 1),
        ])
        assert [r["n"] for r in q1.store_state()] == [2]
        assert sorted(r["room"] for r in q2.store_state()) == ["a", "b"]

    def test_join_with_relation(self, dsms):
        handle = dsms.register_query(
            "floors",
            "SELECT R.floor FROM Obs O [Now], Rooms R WHERE O.room = R.room")
        ingest_all(dsms, [({"id": 1, "room": "b", "temp": 0}, 5)])
        assert [r["floor"] for r in handle.store_state()] == [2]


class TestArchitecturalComponents:
    def test_throw_receives_expired_tuples(self, dsms):
        dsms.register_query("w", "SELECT id FROM Obs [Range 10]")
        ingest_all(dsms, [
            ({"id": 1, "room": "a", "temp": 0}, 0),
            ({"id": 2, "room": "a", "temp": 0}, 5),
        ])
        assert dsms.throw.discarded == 0
        dsms.advance_time(20)
        assert dsms.throw.discarded == 2

    def test_scratch_tracks_window_state(self, dsms):
        dsms.register_query("w", "SELECT id FROM Obs [Range 10]")
        ingest_all(dsms, [
            ({"id": 1, "room": "a", "temp": 0}, 0),
            ({"id": 2, "room": "a", "temp": 0}, 1),
        ])
        assert dsms.scratch.occupancy() == 2
        dsms.advance_time(100)
        assert dsms.scratch.occupancy() == 0
        assert dsms.scratch.peak >= 2

    def test_store_keeps_history(self, dsms):
        handle = dsms.register_query(
            "n", "SELECT COUNT(*) AS n FROM Obs [Range 100]")
        ingest_all(dsms, [
            ({"id": 1, "room": "a", "temp": 0}, 10),
            ({"id": 2, "room": "a", "temp": 0}, 20),
        ])
        history = handle.store_history()
        assert [r["n"] for r in history.at(10)] == [1]
        assert [r["n"] for r in history.at(20)] == [2]


class TestSchedulingAndShedding:
    def test_longest_queue_scheduler_drains_backlog(self, dsms):
        engine = DSMSEngine(scheduler=LongestQueueScheduler())
        engine.register_stream("Obs", OBS)
        engine.register_query("a", "SELECT id FROM Obs [Now]")
        engine.register_query("b", "SELECT room FROM Obs [Now]")
        for t in range(5):
            engine.ingest("Obs", {"id": t, "room": "x", "temp": 0}, t)
        steps = engine.run_until_idle()
        assert steps == 10  # 5 tuples x 2 queries

    def test_queue_capacity_drops(self, dsms):
        handle = dsms.register_query(
            "q", "SELECT id FROM Obs [Now]", queue_capacity=2)
        for t in range(5):
            dsms.ingest("Obs", {"id": t, "room": "a", "temp": 0}, t)
        # Only 2 fit in the queue; 3 dropped at admission.
        assert handle.metrics.queue_dropped == 3
        dsms.run_until_idle()
        assert handle.metrics.processed == 2

    def test_shedder_attached_to_query(self, dsms):
        shedder = RandomShedder(threshold=0.0, seed=7)
        handle = dsms.register_query(
            "q", "SELECT id FROM Obs [Now]", shedder=shedder,
            queue_capacity=4)
        for t in range(50):
            dsms.ingest("Obs", {"id": t, "room": "a", "temp": 0}, t)
            if t % 2:
                dsms.run_until_idle()
        assert handle.metrics.shed > 0
        assert handle.metrics.processed + handle.metrics.shed + \
            handle.metrics.queue_dropped == 50

    def test_metrics_table(self, dsms):
        dsms.register_query("q", "SELECT id FROM Obs [Now]")
        ingest_all(dsms, [({"id": 1, "room": "a", "temp": 0}, 0)])
        table = dsms.metrics_table()
        assert table["q"]["processed"] == 1
        assert table["q"]["ingested"] == 1
