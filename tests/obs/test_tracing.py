"""Tracer: nesting, exception safety, and the no-op twin."""

import pytest

from repro.obs.tracing import NoopTracer, Tracer


class TestNesting:
    def test_span_tree_shape(self):
        tracer = Tracer()
        with tracer.span("root", query="q") as root:
            with tracer.span("child-a") as a:
                a.add(records=2)
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert len(tracer.traces) == 1
        (trace,) = tracer.traces
        assert trace is root
        assert [c.name for c in trace.children] == ["child-a", "child-b"]
        assert trace.children[0].children[0].name == "grandchild"
        assert trace.attributes == {"query": "q"}
        assert trace.children[0].counts == {"records": 2}

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        (trace,) = tracer.traces
        assert trace.closed
        assert trace.duration >= trace.children[0].duration >= 0.0

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("x"):
                pass
            with tracer.span("x"):
                pass
        (trace,) = tracer.traces
        assert len(list(trace.walk())) == 3
        assert len(trace.find("x")) == 2

    def test_sibling_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [t.name for t in tracer.traces] == ["first", "second"]

    def test_counts_accumulate(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.add(records=1)
            span.add(records=4, emitted=2)
        assert span.counts == {"records": 5, "emitted": 2}


class TestExceptionSafety:
    def test_exception_closes_and_flags_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (trace,) = tracer.traces
        assert trace.closed
        inner = trace.children[0]
        assert inner.closed
        assert inner.error == "ValueError: boom"
        assert tracer.current is None  # stack fully unwound

    def test_exception_in_middle_of_stack_unwinds_descendants(self):
        tracer = Tracer()
        root_ctx = tracer.span("root")
        root = root_ctx.__enter__()
        child_ctx = tracer.span("child")
        child_ctx.__enter__()
        tracer.span("grandchild").__enter__()
        # Close the *root* directly: abandoned descendants must be closed.
        root_ctx.__exit__(None, None, None)
        assert root.closed
        assert all(span.closed for span in root.walk())
        assert tracer.current is None
        assert tracer.traces == [root]

    def test_tracer_usable_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError
        with tracer.span("good"):
            pass
        assert [t.name for t in tracer.traces] == ["bad", "good"]


class TestRendering:
    def test_as_dict_round_trips_json(self):
        import json
        tracer = Tracer()
        with tracer.span("root", q="1") as root:
            root.add(records=3)
            with tracer.span("child"):
                pass
        data = tracer.last_trace().as_dict()
        json.dumps(data)
        assert data["name"] == "root"
        assert data["counts"] == {"records": 3}
        assert data["children"][0]["name"] == "child"

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = tracer.last_trace().render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestNoop:
    def test_noop_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("anything", key="value") as span:
            span.add(records=10)
            span.annotate(more="attrs")
        assert tracer.traces == []
        assert tracer.last_trace() is None
        assert tracer.current is None

    def test_noop_span_is_shared(self):
        tracer = NoopTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_noop_does_not_swallow_exceptions(self):
        tracer = NoopTracer()
        with pytest.raises(KeyError):
            with tracer.span("x"):
                raise KeyError("k")
