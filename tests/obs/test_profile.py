"""Tests for the profiling layer (repro.obs.profile).

Covers the four tentpole pieces — per-operator collectors on the kernel,
backpressure telemetry, the flight recorder, and the introspection
surface (explain_analyze / render_top / JSONL snapshots) — plus the
tier-1 guard that the disabled hot path does zero profiling work.
"""

import json

import pytest

import repro.obs as obs
from repro.obs import profile as _profile
from repro.core.records import Schema
from repro.dsms.engine import DSMSEngine
from repro.dsms.queues import InputQueue
from repro.exec import Operator, Plan


# ---------------------------------------------------------------------------
# Kernel plumbing for plan-level tests
# ---------------------------------------------------------------------------


class AddOne(Operator):
    fusible = True

    def process_element(self, value, input_index=0):
        self.emit(value + 1)


class KeepOdd(Operator):
    fusible = True

    def process_element(self, value, input_index=0):
        if value % 2:
            self.emit(value)


class Sink(Operator):
    def __init__(self):
        self.out = []

    def process_element(self, value, input_index=0):
        self.out.append(value)


def linear_plan():
    plan = Plan()
    plan.add_source("s")
    plan.add_operator("inc", AddOne(), ["s"])
    plan.add_operator("odd", KeepOdd(), ["inc"])
    sink = Sink()
    plan.add_operator("sink", sink, ["odd"])
    return plan, sink


def shared_group_engine():
    """The acceptance workload: a shared-group standing query under load."""
    engine = DSMSEngine(sharing=True, queue_capacity=64)
    engine.register_stream("Obs", Schema(["room", "temp"]))
    handle = engine.register_query(
        "hot_rooms",
        "SELECT room, COUNT(*) FROM Obs [Range 40 Slide 40] "
        "WHERE temp > 25 GROUP BY room")
    engine.register_query(
        "warm_stream", "SELECT ISTREAM room FROM Obs [Now] WHERE temp > 20")
    rooms = ("kitchen", "lab", "office")
    for t in range(120):
        engine.ingest("Obs", {"room": rooms[t % 3],
                              "temp": 15.0 + (t * 7) % 20}, t=t)
        if t % 16 == 0:
            engine.run_until_idle()
    engine.run_until_idle()
    engine.advance_time(160)
    return engine, handle


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_but_counts_everything(self):
        recorder = _profile.FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", i=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert [e["i"] for e in recorder.events()] == [6, 7, 8, 9]

    def test_sequence_numbers_are_monotone_across_wrap(self):
        recorder = _profile.FlightRecorder(capacity=3)
        for i in range(7):
            recorder.record("tick", i=i)
        seqs = [e["seq"] for e in recorder.events()]
        assert seqs == [5, 6, 7]

    def test_tail_returns_newest(self):
        recorder = _profile.FlightRecorder(capacity=8)
        for i in range(6):
            recorder.record("tick", i=i)
        assert [e["i"] for e in recorder.tail(2)] == [4, 5]
        assert recorder.tail(0) == []

    def test_events_carry_kind_and_wall_clock(self):
        recorder = _profile.FlightRecorder()
        recorder.record("watermark.advance", source="s", watermark=7)
        (event,) = recorder.events()
        assert event["kind"] == "watermark.advance"
        assert event["source"] == "s"
        assert event["wall"] > 0

    def test_clear_resets_ring_and_sequence(self):
        recorder = _profile.FlightRecorder()
        recorder.record("tick")
        recorder.clear()
        assert len(recorder) == 0 and recorder.recorded == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            _profile.FlightRecorder(capacity=0)

    def test_dump_jsonl_round_trips(self, tmp_path):
        recorder = _profile.FlightRecorder()
        recorder.record("element.push", source="s", tick=1)
        recorder.record("checkpoint.barrier", checkpoint=2)
        path = recorder.dump_jsonl(tmp_path / "flight.jsonl")
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "element.push", "checkpoint.barrier"]

    def test_dump_on_crash_writes_only_on_exception(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        with _profile.dump_on_crash(path) as recorder:
            recorder.record("tick", i=1)
        assert not path.exists()
        with pytest.raises(RuntimeError):
            with _profile.dump_on_crash(path) as recorder:
                recorder.record("tick", i=2)
                raise RuntimeError("boom")
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds and all(k == "tick" for k in kinds)

    def test_kernel_records_flight_events_when_enabled(self):
        obs.enable(profile=True)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(130):  # > FLIGHT_EVERY pushes
            plan.push("s", value)
        plan.advance_watermark("s", 130)
        kinds = {e["kind"] for e in _profile.get_flight_recorder().events()}
        assert "element.push" in kinds
        assert "watermark.advance" in kinds


# ---------------------------------------------------------------------------
# Per-operator collectors on the kernel
# ---------------------------------------------------------------------------


class TestKernelProfiling:
    def test_collectors_count_exact_in_out(self):
        obs.enable(profile=True, sample_every=1)
        plan, sink = linear_plan()
        plan.open(layer="test")
        for value in range(6):
            plan.push("s", value)
        assert sink.out == [1, 3, 5]
        profiles = plan._profiler.profiles
        assert profiles["inc"].records_in == 6
        assert profiles["inc"].records_out == 6
        assert profiles["odd"].records_in == 6
        assert profiles["odd"].records_out == 3
        assert profiles["odd"].selectivity == 0.5
        assert profiles["sink"].records_in == 3

    def test_sampled_busy_time_and_shares_sum_to_one(self):
        obs.enable(profile=True, sample_every=1)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(50):
            plan.push("s", value)
        snapshot = plan._profiler.snapshot()
        assert snapshot["total_busy_seconds"] > 0
        shares = [entry["busy_share"] for entry in snapshot["operators"]]
        assert all(share is not None for share in shares)
        assert sum(shares) == pytest.approx(1.0)
        # self-time attribution: no single operator swallows the whole
        # plan's wall time (the upstream ops' nested work is subtracted)
        assert all(share < 1.0 for share in shares)

    def test_sampling_rate_times_a_subset(self):
        obs.enable(profile=True, sample_every=4)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(16):
            plan.push("s", value)
        profile = plan._profiler.profiles["inc"]
        assert profile.records_in == 16
        assert profile.timed_in == 4  # 1 in 4 flows timed

    def test_selectivity_none_before_any_input(self):
        profile = _profile.OperatorProfile("op", "Test")
        assert profile.selectivity is None
        assert profile.as_dict()["selectivity"] is None

    def test_watermark_lag_per_node(self):
        obs.enable(profile=True, sample_every=1)
        plan = Plan()
        plan.add_source("a")
        plan.add_source("b")
        plan.add_operator("sink", Sink(), ["a", "b"])
        plan.open(layer="test")
        plan.advance_watermark("a", 100)
        plan.advance_watermark("b", 40)
        (entry,) = plan._profiler.snapshot()["operators"]
        # sink's combined watermark is min(100, 40); the plan's high
        # watermark is max(100, 40) — the node lags by the difference
        assert entry["watermark"] == 40
        assert entry["watermark_lag"] == 60

    def test_profiler_publishes_into_registry(self):
        obs.enable(profile=True, sample_every=1)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(4):
            plan.push("s", value)
        registry = obs.get_registry()
        plan._profiler.publish(registry)
        gauge = registry.get("exec.profile.records_in",
                             operator="inc", layer="test")
        assert gauge.value == 4

    def test_state_entries_reads_backends(self):
        from repro.exec.state import DictStateBackend

        class Stateful(Operator):
            def __init__(self):
                self.state = DictStateBackend()

            def process_element(self, value, input_index=0):
                self.state.put(value, value)

        op = Stateful()
        op.state.put("a", 1)
        op.state.put("b", 2)
        assert _profile.state_entries(op) == 2
        assert _profile.state_bytes(op) > 0
        assert _profile.state_entries(object()) is None


# ---------------------------------------------------------------------------
# Tier-1 guard: disabled hot path does zero profiling work (satellite)
# ---------------------------------------------------------------------------


class TestDisabledPathDoesNoProfilingWork:
    def test_plan_opened_without_enable_has_no_profiler(self):
        plan, _sink = linear_plan()
        plan.open()
        assert plan._profiler is None
        assert all(node.profile is None for node in plan._order)

    def test_kernel_hot_path_allocates_nothing_and_never_times(
            self, monkeypatch):
        """With obs never enabled: no collector allocation, no timing
        calls, no flight-recorder appends — enforced by making each of
        them raise and running the full kernel + DSMS paths."""
        import repro.exec.plan as exec_plan

        def forbidden(*args, **kwargs):
            raise AssertionError("profiling work on the disabled hot path")

        monkeypatch.setattr(_profile, "PlanProfiler", forbidden)
        monkeypatch.setattr(_profile.FlightRecorder, "record", forbidden)
        monkeypatch.setattr(exec_plan, "_perf", forbidden)

        plan, sink = linear_plan()
        plan.open()
        for value in range(20):
            plan.push("s", value)
        plan.advance_watermark("s", 20)
        assert sink.out == [1, 3, 5, 7, 9, 11, 13, 15, 17, 19]

        engine, handle = shared_group_engine()
        assert handle.metrics.processed > 0

    def test_no_profile_metrics_exist_when_disabled(self):
        plan, _sink = linear_plan()
        plan.open()
        for value in range(8):
            plan.push("s", value)
        names = {entry["name"]
                 for entry in obs.get_registry().snapshot()}
        assert not any(name.startswith("exec.profile") for name in names)

    def test_enable_does_not_retrofit_open_plans(self):
        plan, _sink = linear_plan()
        plan.open()
        obs.enable(profile=True)
        plan.push("s", 1)
        assert plan._profiler is None


# ---------------------------------------------------------------------------
# Stall detection
# ---------------------------------------------------------------------------


class TestStallDetector:
    def test_active_streams_are_not_stalled(self):
        detector = _profile.StallDetector(threshold=4)
        for _ in range(10):
            detector.note_arrival("a")
            detector.note_arrival("b")
        assert detector.stalled() == {}

    def test_silent_stream_stalls_while_others_advance(self):
        detector = _profile.StallDetector(threshold=4)
        detector.note_arrival("quiet")
        for _ in range(8):
            detector.note_arrival("busy")
        assert "quiet" in detector.stalled()
        assert "busy" not in detector.stalled()

    def test_registered_but_never_producing_counts_full_tick(self):
        # the crash-recovered-source case: a source that registered but
        # never produced shows the whole engine's progress as its gap
        detector = _profile.StallDetector(threshold=2)
        detector.register("dead")
        for _ in range(5):
            detector.note_arrival("busy")
        assert detector.gaps()["dead"] == 5
        assert detector.stalled() == {"dead": 5}

    def test_snapshot_shape(self):
        detector = _profile.StallDetector(threshold=1)
        detector.register("s")
        snap = detector.snapshot()
        assert snap == {"tick": 0, "threshold": 1, "gaps": {"s": 0},
                        "stalled": []}

    def test_engine_publishes_stall_gauges(self):
        obs.enable()
        engine = DSMSEngine()
        engine.register_stream("Live", Schema(["x"]))
        engine.register_stream("Dead", Schema(["x"]))
        engine.stall_detector.threshold = 4
        engine.register_query("q", "SELECT ISTREAM x FROM Live [Now]")
        for t in range(8):
            engine.ingest("Live", {"x": t}, t=t)
        engine.run_until_idle()
        engine.publish_observability()
        registry = obs.get_registry()
        assert registry.get("dsms.source.stalled", stream="Dead").value == 1
        assert registry.get("dsms.source.stalled", stream="Live").value == 0


# ---------------------------------------------------------------------------
# Backpressure telemetry
# ---------------------------------------------------------------------------


class TestQueuePressure:
    def test_peak_tracks_high_water_mark(self):
        queue = InputQueue(capacity=10)
        for i in range(6):
            queue.offer(i, i)
        queue.poll()
        queue.poll()
        queue.offer(7, 7)
        assert queue.peak == 6

    def test_pressure_is_edge_triggered(self):
        queue = InputQueue(capacity=10)  # pressure mark at 8
        for i in range(10):
            queue.offer(i, i)
        assert queue.pressured
        assert queue.pressure_events == 1  # one sustained episode

    def test_pressure_rearms_after_draining(self):
        queue = InputQueue(capacity=10)
        for i in range(8):
            queue.offer(i, i)
        assert queue.pressure_events == 1
        while queue.poll() is not None:
            pass
        assert not queue.pressured
        for i in range(8):
            queue.offer(i, i)
        assert queue.pressure_events == 2

    def test_pressure_crossing_lands_in_flight_recorder(self):
        obs.enable(profile=True)
        queue = InputQueue(capacity=5)
        for i in range(5):
            queue.offer(i, i)
        events = [e for e in _profile.get_flight_recorder().events()
                  if e["kind"] == "queue.pressure"]
        assert events and events[0]["capacity"] == 5

    def test_engine_publishes_queue_gauges(self):
        obs.enable()
        engine, _handle = shared_group_engine()
        engine.publish_observability()
        registry = obs.get_registry()
        peaks = registry.children("dsms.queue.peak_depth")
        assert peaks and all(m.value >= 0 for m in peaks)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE (the acceptance case)
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_shared_group_query_full_report(self):
        """The ISSUE acceptance criterion: a shared-group standing query
        reports per-operator tuple counts, selectivity, and busy-time
        shares that sum to ~100%."""
        obs.enable(profile=True, sample_every=1)
        _engine, handle = shared_group_engine()
        report = _profile.analyze(handle)
        assert report["query"] == "hot_rooms"
        assert report["queue"]["capacity"] == 64
        operators = report["operators"]
        assert len(operators) >= 2
        for entry in operators:
            assert entry["records_in"] > 0
            if entry["selectivity"] is not None:
                assert 0.0 <= entry["selectivity"] <= 1.0
        assert report["total_busy_seconds"] > 0
        shares = [e["busy_share"] for e in operators
                  if e["busy_share"] is not None]
        assert sum(shares) == pytest.approx(1.0, abs=0.02)

    def test_rendered_handle_report_mentions_everything(self):
        obs.enable(profile=True, sample_every=1)
        _engine, handle = shared_group_engine()
        text = _profile.explain_analyze(handle)
        assert "query 'hot_rooms'" in text
        assert "queue: depth=" in text
        assert "rows=" in text and "sel=" in text and "busy=" in text
        assert "shares sum" in text

    def test_continuous_query_without_timing_says_so(self):
        engine, handle = shared_group_engine()
        text = _profile.explain_analyze(handle.query)
        assert "enable timing with obs.enable()" in text

    def test_kernel_plan_renders_profiler_table(self):
        obs.enable(profile=True, sample_every=1)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(12):
            plan.push("s", value)
        text = _profile.explain_analyze(plan)
        assert "kernel plan [test]" in text
        assert "odd" in text and "0.500" in text  # KeepOdd selectivity

    def test_kernel_plan_without_profiler_degrades_gracefully(self):
        plan, _sink = linear_plan()
        plan.open()
        text = _profile.explain_analyze(plan)
        assert "profiling disabled" in text

    def test_unexplainable_target_raises_type_error(self):
        with pytest.raises(TypeError):
            _profile.explain_analyze(42)


# ---------------------------------------------------------------------------
# Snapshot endpoint + top view
# ---------------------------------------------------------------------------


class TestIntrospectionSurface:
    def test_write_snapshot_appends_jsonl(self, tmp_path):
        obs.enable(profile=True, sample_every=1)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(130):  # > FLIGHT_EVERY, so the recorder has events
            plan.push("s", value)
        path = tmp_path / "snap.jsonl"
        _profile.write_snapshot(path)
        _profile.write_snapshot(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        payload = json.loads(lines[-1])
        assert payload["type"] == "profile"
        assert payload["profiling"] is True
        (plan_snapshot,) = payload["plans"]
        assert plan_snapshot["label"] == "test"
        assert payload["flight_recorder"]["recorded"] >= 1
        # the snapshot also published the collectors as metrics
        assert any(m["name"] == "exec.profile.records_in"
                   for m in payload["metrics"])

    def test_render_top_shows_queries_and_operators(self):
        obs.enable(profile=True, sample_every=1)
        engine, _handle = shared_group_engine()
        engine.publish_observability()
        text = _profile.render_top()
        assert "== top queries ==" in text
        assert "== hot operators ==" in text
        assert "hot_rooms" in text

    def test_render_top_flags_stalled_sources(self):
        obs.enable()
        engine = DSMSEngine()
        engine.register_stream("Live", Schema(["x"]))
        engine.register_stream("Dead", Schema(["x"]))
        engine.stall_detector.threshold = 4
        engine.register_query("q", "SELECT ISTREAM x FROM Live [Now]")
        for t in range(8):
            engine.ingest("Live", {"x": t}, t=t)
        engine.run_until_idle()
        engine.publish_observability()
        text = _profile.render_top()
        assert "== backpressure ==" in text
        assert "source[Dead]" in text and "STALLED" in text

    def test_obs_reset_drops_profilers_and_recorder(self):
        obs.enable(profile=True)
        plan, _sink = linear_plan()
        plan.open(layer="test")
        plan.push("s", 1)
        assert len(_profile._PROFILERS) == 1
        obs.reset()
        assert not _profile.is_enabled()
        assert len(_profile._PROFILERS) == 0
        assert _profile.get_flight_recorder().recorded == 0
