"""End-to-end observability: the instrumented layers feed one registry.

The acceptance flow from the issue: enable observability, run a CQL
standing query through the DSMS engine, and the export must contain
per-operator counters, a latency histogram with percentiles, a
watermark-lag gauge, and a span tree whose root covers the whole run.
"""

import json

import pytest

import repro.obs as obs
from repro.core import Schema
from repro.dsms import DSMSEngine


ROWS = [
    ({"id": 1, "room": "a", "temp": 35}, 0),
    ({"id": 2, "room": "b", "temp": 10}, 1),
    ({"id": 3, "room": "a", "temp": 31}, 2),
    ({"id": 4, "room": "b", "temp": 40}, 5),
]


def run_dsms_query():
    dsms = DSMSEngine()
    dsms.register_stream("Obs", Schema(["id", "room", "temp"]))
    handle = dsms.register_query(
        "hot", "SELECT id FROM Obs [Range 100] WHERE temp > 30")
    for row, t in ROWS:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()
    return dsms, handle


class TestDsmsAcceptance:
    def test_operator_counters_are_nonzero(self):
        obs.enable()
        run_dsms_query()
        registry = obs.get_registry()
        rows_in = registry.children("exec.operator.records_in")
        assert rows_in, "no per-operator counters published"
        assert sum(c.value for c in rows_in) > 0
        operators = {c.labels["operator"] for c in rows_in}
        assert "StreamSourceOp" in operators
        assert all(c.labels["query"] == "hot" for c in rows_in)
        assert all(c.labels["layer"] == "cql" for c in rows_in)
        # And the engine's own tuple-flow counters agree with QueryMetrics.
        ingested = registry.get("dsms.query.ingested", query="hot")
        assert ingested.value == len(ROWS)

    def test_latency_histogram_has_percentiles(self):
        obs.enable()
        run_dsms_query()
        hist = obs.get_registry().get("dsms.queue.wait", query="hot")
        assert hist.count == len(ROWS)
        percentiles = hist.percentiles()
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p99"]

    def test_watermark_lag_gauge(self):
        obs.enable()
        dsms, _ = run_dsms_query()
        assert dsms.watermark_clock.watermark("Obs") == 5
        lag = obs.get_registry().get("dsms.watermark.lag", stream="Obs")
        assert lag is not None
        assert lag.count == len(ROWS)
        # Records are queued, so later arrivals advance the watermark past
        # earlier ones before they are serviced: some lag must show up.
        assert lag.max > 0

    def test_span_tree_covers_the_run(self):
        obs.enable()
        run_dsms_query()
        trace = obs.get_tracer().last_trace()
        assert trace.name == "dsms.run_until_idle"
        services = trace.find("dsms.service")
        assert len(services) == len(ROWS)
        assert trace.counts["steps"] == len(ROWS)
        assert sum(s.counts["records"] for s in services) == len(ROWS)
        # The root span brackets every child in time.
        for child in services:
            assert trace.start <= child.start
            assert child.end <= trace.end

    def test_jsonl_export_carries_everything(self, tmp_path):
        obs.enable()
        run_dsms_query()
        path = obs.write_jsonl(tmp_path / "run.jsonl", obs.get_registry(),
                               obs.get_tracer())
        entries = [json.loads(line)
                   for line in path.read_text().splitlines()]
        metrics = [e for e in entries if e["type"] == "metric"]
        traces = [e for e in entries if e["type"] == "trace"]
        names = {e["name"] for e in metrics}
        assert "exec.operator.records_in" in names
        assert "dsms.watermark.lag" in names
        wait = next(e for e in metrics if e["name"] == "dsms.queue.wait")
        assert {"p50", "p95", "p99"} <= set(wait)
        assert traces and traces[0]["tree"]["name"] == "dsms.run_until_idle"

    def test_disabled_run_publishes_nothing(self):
        assert not obs.is_enabled()
        _, handle = run_dsms_query()
        assert len(obs.get_registry()) == 0
        assert obs.get_tracer().traces == []
        # The engine's plain metrics still work with obs off.
        assert handle.metrics.ingested == len(ROWS)

    def test_results_identical_enabled_vs_disabled(self):
        _, plain = run_dsms_query()
        obs.enable()
        _, traced = run_dsms_query()
        assert sorted(r["id"] for r in plain.store_state()) == \
            sorted(r["id"] for r in traced.store_state())


class TestRuntimeJob:
    def build_graph(self):
        from repro.runtime import (
            CollectSinkOperator, HashPartitioner, JobGraph, KeyByOperator,
        )
        graph = JobGraph("wordcount")
        words = ["a", "b", "a", "c"]
        graph.add_source("src", [[(w, None, i)
                                  for i, w in enumerate(words)]])
        graph.add_operator("key", lambda: KeyByOperator(lambda v: v), 1)
        graph.add_operator("sink", CollectSinkOperator, 1)
        graph.connect("src", "key", HashPartitioner)
        graph.connect("key", "sink", HashPartitioner)
        graph.mark_sink("sink")
        return graph

    def test_vertex_metrics_and_job_span(self):
        from repro.runtime import JobRunner
        obs.enable()
        JobRunner(self.build_graph(), chaining=False,
                  checkpoint_interval=2).run()
        registry = obs.get_registry()
        records_in = registry.children("exec.operator.records_in")
        assert records_in and sum(c.value for c in records_in) > 0
        assert all(c.labels["layer"] == "runtime" for c in records_in)
        records_out = registry.children("exec.operator.records_out")
        assert {c.labels["operator"] for c in records_out} >= {"src", "key"}
        durations = registry.get("runtime.checkpoint.duration_seconds")
        assert durations is not None and durations.count > 0
        trace = obs.get_tracer().last_trace()
        assert trace.name == "runtime.job.run"
        assert [c.name for c in trace.children] == ["runtime.job.attempt"]


class TestDataflowPipeline:
    def test_transform_counters_and_trigger_firings(self):
        from repro.dataflow import FixedWindows, Pipeline
        obs.enable()
        p = Pipeline()
        (p.create([("a", 1), ("a", 5), ("b", 12)])
         .map(lambda v: (v, 1))
         .window_into(FixedWindows(10))
         .combine_per_key(sum)
         .collect("out"))
        p.run()
        registry = obs.get_registry()
        elements = registry.children("exec.operator.records_in")
        assert elements and sum(c.value for c in elements) > 0
        assert all(c.labels["layer"] == "dataflow" for c in elements)
        firings = registry.get("dataflow.trigger.firings", timing="ON_TIME")
        assert firings is not None and firings.value >= 2
        trace = obs.get_tracer().last_trace()
        assert trace.name == "dataflow.pipeline.run"
        assert trace.find("dataflow.source")
