"""Exporters: JSON-lines, Prometheus text, console table, summary tree."""

import json

from repro.obs.export import (
    console_table,
    summary,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("cql.executor.rows_in", operator="JoinOp").inc(12)
    registry.gauge("dsms.queue.depth", query="q1").observe(4.0)
    hist = registry.histogram("dsms.queue.wait", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 3.0, 50.0):
        hist.observe(value)
    return registry


class TestJsonl:
    def test_one_object_per_line(self):
        registry = populated_registry()
        lines = [json.loads(line)
                 for line in to_jsonl(registry).splitlines()]
        assert len(lines) == 3
        assert all(entry["type"] == "metric" for entry in lines)
        by_name = {entry["name"]: entry for entry in lines}
        assert by_name["cql.executor.rows_in"]["value"] == 12
        assert by_name["cql.executor.rows_in"]["labels"] == {
            "operator": "JoinOp"}
        assert by_name["dsms.queue.wait"]["p50"] == 2.5

    def test_traces_appended(self):
        registry = populated_registry()
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        lines = [json.loads(line)
                 for line in to_jsonl(registry, tracer).splitlines()]
        traces = [entry for entry in lines if entry["type"] == "trace"]
        assert len(traces) == 1
        assert traces[0]["tree"]["name"] == "root"
        assert traces[0]["tree"]["children"][0]["name"] == "child"

    def test_write_jsonl(self, tmp_path):
        registry = populated_registry()
        path = write_jsonl(tmp_path / "obs.jsonl", registry)
        content = path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        assert len(content.strip().splitlines()) == 3


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE cql_executor_rows_in_total counter" in text
        assert 'cql_executor_rows_in_total{operator="JoinOp"} 12' in text
        assert "# TYPE dsms_queue_depth gauge" in text
        assert 'dsms_queue_depth{query="q1"} 4.0' in text

    def test_histogram_buckets(self):
        text = to_prometheus(populated_registry())
        assert 'dsms_queue_wait_bucket{le="1.0"} 1' in text
        assert 'dsms_queue_wait_bucket{le="10.0"} 3' in text
        assert 'dsms_queue_wait_bucket{le="+Inf"} 4' in text
        assert "dsms_queue_wait_sum 55.5" in text
        assert "dsms_queue_wait_count 4" in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_metric_name_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("1weird name!.rows").inc(2)
        text = to_prometheus(registry)
        assert "_1weird_name__rows_total 2" in text
        # Every emitted metric identifier is legal exposition syntax.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert __import__("re").fullmatch(
                r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), name

    def test_label_values_escaped_round_trip(self):
        nasty = 'SELECT "x\\y"\nFROM s'
        registry = MetricsRegistry()
        registry.counter("dsms.query.ingested", query=nasty,
                         **{"weird label": "v"}).inc(5)
        text = to_prometheus(registry)
        line = next(l for l in text.splitlines() if not l.startswith("#"))
        # The physical line must not contain a raw newline (it is one
        # line) and must parse back to the original label value.
        labels = _parse_prom_labels(line)
        assert labels["query"] == nasty
        assert labels["weird_label"] == "v"
        assert line.endswith(" 5")


def _parse_prom_labels(line):
    """A tiny exposition-format label parser for round-trip pinning."""
    import re
    inner = line[line.index("{") + 1:line.rindex("}")]
    labels = {}
    for match in re.finditer(r'(\w+)="((?:[^"\\]|\\.)*)"', inner):
        value = (match.group(2)
                 .replace("\\n", "\n")
                 .replace('\\"', '"')
                 .replace("\\\\", "\\"))
        labels[match.group(1)] = value
    return labels


class TestConsoleTable:
    def test_all_metrics_listed(self):
        table = console_table(populated_registry(), title="t")
        assert table.startswith("== t ==")
        assert "cql.executor.rows_in" in table
        assert "operator=JoinOp" in table
        assert "p95=" in table  # histograms summarise percentiles

    def test_prefix_filters(self):
        table = console_table(populated_registry(), prefix="dsms")
        assert "dsms.queue.depth" in table
        assert "cql.executor.rows_in" not in table

    def test_empty_registry_renders_header(self):
        table = console_table(MetricsRegistry(), title="empty")
        assert table.startswith("== empty ==")


class TestSummary:
    def test_nested_tree(self):
        tree = summary(populated_registry())
        assert tree["cql"]["executor"]["rows_in{operator=JoinOp}"][
            "value"] == 12
        assert "p99" in tree["dsms"]["queue"]["wait"]
