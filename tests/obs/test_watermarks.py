"""WatermarkClock: event-time progress and processing lag."""

from repro.obs.registry import MetricsRegistry
from repro.obs.watermarks import WatermarkClock


def make_clock():
    registry = MetricsRegistry()
    return registry, WatermarkClock(registry)


class TestWatermark:
    def test_watermark_is_high_water_mark(self):
        _, clock = make_clock()
        clock.observe_arrival("s", 10)
        clock.observe_arrival("s", 5)   # out of order: no regression
        clock.observe_arrival("s", 20)
        assert clock.watermark("s") == 20

    def test_streams_are_independent(self):
        _, clock = make_clock()
        clock.observe_arrival("a", 3)
        clock.observe_arrival("b", 7)
        assert clock.watermark("a") == 3
        assert clock.watermark("b") == 7
        assert clock.streams() == ["a", "b"]

    def test_unseen_stream(self):
        # A stream that has produced nothing yet (the crash-recovered
        # source case) has no watermark and *no* lag — a None sentinel,
        # never a KeyError and never a fake 0.0.
        _, clock = make_clock()
        assert clock.watermark("nope") is None
        assert clock.lag("nope") is None
        assert clock.lag("nope", default=0.0) == 0.0

    def test_recovered_source_lag_defined_before_first_record(self):
        _, clock = make_clock()
        clock.observe_arrival("live", 10)
        clock.observe_processed("live", 10)
        # A second source registered after recovery but still silent.
        assert clock.lag("recovered") is None
        assert clock.as_dict() == {"live": {"watermark": 10, "lag": 0}}
        clock.observe_arrival("recovered", 3)
        clock.observe_processed("recovered", 1)
        assert clock.lag("recovered") == 2

    def test_event_time_gauge_published(self):
        registry, clock = make_clock()
        clock.observe_arrival("s", 42)
        gauge = registry.get("obs.watermark.event_time", stream="s")
        assert gauge.value == 42


class TestLag:
    def test_fresh_record_has_zero_lag(self):
        _, clock = make_clock()
        clock.observe_arrival("s", 10)
        assert clock.observe_processed("s", 10) == 0

    def test_stale_record_lags_by_watermark_delta(self):
        _, clock = make_clock()
        clock.observe_arrival("s", 10)
        clock.observe_arrival("s", 25)
        assert clock.observe_processed("s", 10) == 15
        assert clock.lag("s") == 15

    def test_lag_floors_at_zero(self):
        _, clock = make_clock()
        clock.observe_arrival("s", 5)
        # Processing something *ahead* of the watermark is not negative lag.
        assert clock.observe_processed("s", 9) == 0

    def test_lag_metrics_published(self):
        registry, clock = make_clock()
        clock.observe_arrival("s", 10)
        for event_time in (10, 8, 4):
            clock.observe_processed("s", event_time)
        gauge = registry.get("obs.watermark.lag", stream="s")
        assert gauge.count == 3
        assert gauge.max == 6
        histogram = registry.get("obs.watermark.lag_histogram", stream="s")
        assert histogram.count == 3
        assert histogram.quantile(0.5) == 2.0

    def test_as_dict(self):
        _, clock = make_clock()
        clock.observe_arrival("s", 10)
        clock.observe_processed("s", 7)
        assert clock.as_dict() == {"s": {"watermark": 10, "lag": 3}}

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        clock = WatermarkClock(registry, prefix="dsms.watermark")
        clock.observe_arrival("s", 1)
        clock.observe_processed("s", 1)
        assert registry.get("dsms.watermark.lag", stream="s") is not None
