"""Metric primitives and the registry: counters, gauges, histograms."""

import statistics

import pytest

import repro.obs as obs
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_running_stats(self):
        gauge = Gauge("g")
        for value in (4.0, -2.0, 3.0):
            gauge.observe(value)
        assert gauge.count == 3
        assert gauge.total == 5.0
        assert gauge.mean == pytest.approx(5.0 / 3)
        assert gauge.min == -2.0
        assert gauge.max == 4.0
        assert gauge.value == 3.0  # last observation

    def test_all_negative_max_is_reported(self):
        """The historical bug: max initialised to 0.0 masked negatives."""
        gauge = Gauge("g")
        gauge.observe(-5.0)
        gauge.observe(-3.0)
        assert gauge.max == -3.0
        assert gauge.min == -5.0

    def test_set_does_not_count_a_sample(self):
        gauge = Gauge("g")
        gauge.set(7.0)
        assert gauge.value == 7.0
        assert gauge.count == 0

    def test_empty_defaults(self):
        gauge = Gauge("g")
        assert gauge.mean == 0.0
        assert gauge.min == 0.0
        assert gauge.max == 0.0


class TestDsmsGaugeCompat:
    """The dsms wrapper keeps its old surface and inherits the fixes."""

    def test_wrapper_api(self):
        from repro.dsms import Gauge as DsmsGauge

        gauge = DsmsGauge()
        for value in (1.0, 3.0, 2.0):
            gauge.observe(value)
        assert (gauge.count, gauge.mean, gauge.max) == (3, 2.0, 3.0)
        assert gauge.min == 1.0

    def test_wrapper_negative_max_fixed(self):
        from repro.dsms import Gauge as DsmsGauge

        gauge = DsmsGauge()
        gauge.observe(-1.5)
        assert gauge.max == -1.5

    def test_query_metrics_as_dict_shape_unchanged(self):
        from repro.dsms import QueryMetrics

        metrics = QueryMetrics()
        metrics.ingested += 3
        metrics.processed += 2
        metrics.queue_wait.observe(1.0)
        metrics.scratch.observe(4.0)
        assert metrics.as_dict() == {
            "ingested": 3, "shed": 0, "queue_dropped": 0,
            "processed": 2, "emitted": 0,
            "mean_queue_wait": 1.0, "mean_scratch": 4.0,
            "peak_scratch": 4.0,
        }


class TestHistogram:
    def test_quantiles_match_statistics_module(self):
        data = [float(v) for v in range(1, 202)]  # 1..201, exact quantiles
        histogram = Histogram("h")
        for value in data:
            histogram.observe(value)
        reference = statistics.quantiles(data, n=100, method="inclusive")
        assert histogram.quantile(0.50) == pytest.approx(reference[49])
        assert histogram.quantile(0.95) == pytest.approx(reference[94])
        assert histogram.quantile(0.99) == pytest.approx(reference[98])
        p = histogram.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] == pytest.approx(statistics.median(data))

    def test_quantiles_on_shuffled_input(self):
        import random
        data = [float(v) for v in range(500)]
        random.Random(7).shuffle(data)
        histogram = Histogram("h")
        for value in data:
            histogram.observe(value)
        reference = statistics.quantiles(data, n=100, method="inclusive")
        assert histogram.quantile(0.95) == pytest.approx(reference[94])

    def test_reservoir_degrades_but_stays_sane(self):
        histogram = Histogram("h", reservoir_size=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert histogram.min == 0.0 and histogram.max == 9_999.0
        # Approximate, but within the observed range and ordered.
        assert 0.0 <= histogram.quantile(0.5) <= 9_999.0
        assert histogram.quantile(0.5) <= histogram.quantile(0.99)

    def test_fixed_buckets_cumulative(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 7.0, 50.0, 1000.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (1.0, 1), (10.0, 3), (100.0, 4)]

    def test_empty_histogram_quantiles_are_none(self):
        # An empty reservoir has no quantiles: None, not a fake 0.0 and
        # not an IndexError (crash-recovered sources query their latency
        # histograms before the first record lands).
        histogram = Histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.percentiles() == {"p50": None, "p95": None,
                                           "p99": None}

    def test_single_sample_is_every_quantile(self):
        histogram = Histogram("h")
        histogram.observe(7.5)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert histogram.quantile(q) == 7.5
        assert histogram.percentiles() == {"p50": 7.5, "p95": 7.5,
                                           "p99": 7.5}

    def test_empty_histogram_as_dict_is_json_ready(self):
        import json
        data = Histogram("h").as_dict()
        assert data["p50"] is None
        json.dumps(data)

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestRegistry:
    def test_same_identity_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("cql.executor.join.rows", query="q1")
        b = registry.counter("cql.executor.join.rows", query="q1")
        assert a is b

    def test_labels_create_children(self):
        registry = MetricsRegistry()
        registry.counter("dsms.query.ingested", query="a").inc()
        registry.counter("dsms.query.ingested", query="b").inc(2)
        children = registry.children("dsms.query.ingested")
        assert sorted(c.labels["query"] for c in children) == ["a", "b"]

    def test_hierarchical_find(self):
        registry = MetricsRegistry()
        registry.counter("cql.executor.rows")
        registry.gauge("cql.planner.depth")
        registry.counter("dsms.query.ingested")
        names = {m.name for m in registry.find("cql")}
        assert names == {"cql.executor.rows", "cql.planner.depth"}
        assert not registry.find("cq")  # prefix is dotted, not textual

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x.y")
        with pytest.raises(TypeError):
            registry.gauge("x.y")
        with pytest.raises(TypeError):
            registry.histogram("x.y")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0

    def test_snapshot_is_json_ready(self):
        import json
        registry = MetricsRegistry()
        registry.counter("a.b", q="1").inc(3)
        registry.histogram("a.h").observe(2.0)
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        by_name = {entry["name"]: entry for entry in snapshot}
        assert by_name["a.b"]["value"] == 3
        assert by_name["a.b"]["labels"] == {"q": "1"}
        assert by_name["a.h"]["p50"] == 2.0


class TestGlobalState:
    def test_global_registry_reset_isolation(self):
        obs.get_registry().counter("leftover").inc()
        assert obs.get_registry().get("leftover") is not None
        obs.reset()
        assert obs.get_registry().get("leftover") is None
        assert not obs.is_enabled()

    def test_enable_swaps_tracer(self):
        assert not obs.get_tracer().enabled
        obs.enable()
        assert obs.get_tracer().enabled
        obs.disable()
        assert not obs.is_enabled()

    def test_disable_keeps_recorded_traces(self):
        obs.enable()
        with obs.get_tracer().span("kept"):
            pass
        obs.disable()
        assert [t.name for t in obs.get_tracer().traces] == ["kept"]
        obs.enable()  # re-enabling must not discard them either
        assert [t.name for t in obs.get_tracer().traces] == ["kept"]

    def test_autouse_fixture_left_registry_empty(self):
        # The repo conftest resets between tests; whatever earlier tests
        # published must not be visible here.
        assert len(obs.get_registry()) == 0
        assert obs.get_tracer().traces == []
