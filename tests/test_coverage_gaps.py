"""Focused tests for paths the main suites exercise lightly."""

import pytest

from repro.core import Schema, TumblingWindow
from repro.cql import CQLEngine
from repro.dataflow import (
    AfterAny,
    AfterCount,
    AfterProcessingTime,
    FixedWindows,
    Pipeline,
    Repeatedly,
)
from repro.dsl import StreamEnvironment
from repro.runtime import Element


class TestProcessOperatorTimers:
    """The DSL's low-level escape hatch: per-key state + event timers."""

    def test_timer_fires_on_watermark(self):
        def buffer_until_timer(op, element):
            pending = op.state.get(element.key) or []
            op.state.put(element.key, pending + [element.value])
            op.timers.register(20, element.key)
            return ()

        def flush(op, fire_at, key):
            pending = op.state.get(key) or []
            op.state.delete(key)
            yield Element((key, sorted(pending)), key, fire_at)

        env = StreamEnvironment()
        (env.from_collection([(("k", 2), 1), (("k", 1), 5), (("k", 3), 30)])
         .key_by(lambda kv: kv[0])
         .process(buffer_until_timer, on_timer=flush)
         .sink("out"))
        result = env.execute()
        values = result.values("out")
        # The watermark trails the data: by the time it passes 20 (after
        # the t=30 element arrived) all three elements are buffered, so
        # the timer flushes them as one batch.
        assert values == [("k", [("k", 1), ("k", 2), ("k", 3)])]


class TestRelationOnlyQueries:
    def test_query_over_relation_with_updates(self):
        engine = CQLEngine()
        engine.register_relation(
            "Users", Schema(["id", "city"]),
            rows=[{"id": 1, "city": "lyon"}])
        query = engine.register_query(
            "SELECT ISTREAM id FROM Users WHERE city = 'lyon'")
        started = query.start()
        assert [e.record["id"] for e in started] == [1]
        emitted = query.update_relation(
            "Users", {"id": 2, "city": "lyon"}, +1, 5)
        assert [e.record["id"] for e in emitted] == [2]
        # A non-matching insert emits nothing.
        assert query.update_relation(
            "Users", {"id": 3, "city": "nice"}, +1, 6) == []

    def test_relation_delete_with_dstream(self):
        engine = CQLEngine()
        engine.register_relation(
            "Users", Schema(["id", "city"]),
            rows=[{"id": 1, "city": "lyon"}])
        query = engine.register_query("SELECT DSTREAM id FROM Users")
        query.start()
        emitted = query.update_relation(
            "Users", {"id": 1, "city": "lyon"}, -1, 3)
        assert [e.record["id"] for e in emitted] == [1]

    def test_relation_aggregate(self):
        engine = CQLEngine()
        engine.register_relation(
            "Users", Schema(["id", "city"]),
            rows=[{"id": i, "city": "lyon"} for i in range(4)])
        query = engine.register_query(
            "SELECT COUNT(*) AS n FROM Users")
        query.start()
        (row,) = list(query.current())
        assert row["n"] == 4


class TestDSLWatermarkLag:
    def test_lag_admits_out_of_order_events(self):
        # Event at t=8 arrives after t=12; without lag the window [0,10)
        # fires at watermark 11 and the straggler becomes a late re-fire;
        # with lag 5 the watermark holds and the pane is complete.
        events = [(("k", 1), 1), (("k", 1), 12), (("k", 1), 8)]

        def run(lag):
            env = StreamEnvironment()
            (env.from_collection(events, watermark_lag=lag)
             .key_by(lambda kv: kv[0])
             .window(TumblingWindow(10))
             .aggregate(__import__("repro.dsl",
                                   fromlist=["CountAggregate"]
                                   ).CountAggregate())
             .sink("out"))
            return [(n, w.start)
                    for _, n, w in env.execute().values("out")]

        with_lag = run(5)
        # Window [0,10) counted both early events in one pane.
        assert (2, 0) in with_lag
        without_lag = run(0)
        # Without slack the pane for [0,10) fired early with 1, then the
        # straggler produced a late refinement pane of 1.
        panes_w0 = sorted(n for n, start in without_lag if start == 0)
        assert panes_w0 == [1, 1]


class TestDataflowAfterAny:
    def test_after_any_fires_on_first_sub_trigger(self):
        p = Pipeline()
        (p.create([(("k", 1), t) for t in range(1, 6)])
         .window_into(FixedWindows(100),
                      trigger=Repeatedly(AfterAny(
                          AfterCount(3), AfterProcessingTime(100))))
         .combine_per_key(sum)
         .collect("out"))
        result = p.run()
        # AfterCount(3) fires first (processing-time trigger needs 100
        # arrivals); with 5 elements: one pane of 3, remainder at close.
        pane_sizes = [wv.value[1] for wv in result["out"]]
        assert pane_sizes[0] == 3
