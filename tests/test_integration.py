"""Cross-layer integration tests.

The survey's Figure 4 claim made executable: the same continuous query
expressed at different abstraction levels computes the same answer, and
the era-spanning engines (CQL/DSMS, DSL/runtime, streaming SQL, dataflow)
interoperate over the shared core abstractions.
"""

import pytest

from repro.bench import (
    OBSERVATION_SCHEMA,
    observation_stream,
    room_observations,
)
from repro.core import Stream, TumblingWindow
from repro.cql import CQLEngine
from repro.dataflow import FixedWindows, Pipeline
from repro.dsl import CountAggregate, StreamEnvironment
from repro.dsms import DSMSEngine
from repro.sql import run_sql

WINDOW = 200
# CQL's [Range w Slide w] window is (b-w, b] while tumbling windows are
# [b-w, b): they agree except for elements exactly on a boundary, so the
# equivalence workload nudges those off (event time allows ties).
ROWS = [(row, t + 1 if t % WINDOW == 0 else t)
        for row, t in room_observations(100)]


def windowed_counts_via_sql():
    records = run_sql(
        f"SELECT room, window_start, COUNT(*) AS n FROM Obs "
        f"GROUP BY room, TUMBLE({WINDOW})",
        OBSERVATION_SCHEMA, "Obs", ROWS)
    return {(r["room"], r["window_start"]): r["n"] for r in records}


def windowed_counts_via_dsl():
    env = StreamEnvironment(parallelism=3)
    (env.from_collection(ROWS)
     .key_by(lambda row: row["room"])
     .window(TumblingWindow(WINDOW))
     .aggregate(CountAggregate())
     .sink("out"))
    return {(room, window.start): count
            for room, count, window in env.execute().values("out")}


def windowed_counts_via_dataflow():
    p = Pipeline()
    (p.create(ROWS)
     .map(lambda row: (row["room"], 1))
     .window_into(FixedWindows(WINDOW))
     .combine_per_key(sum)
     .collect("out"))
    return {(wv.value[0], wv.windows[0].start): wv.value[1]
            for wv in p.run()["out"]}


def windowed_counts_via_cql():
    """CQL's [Range w Slide w] sampled at window boundaries is the
    tumbling count (modulo boundary conventions, which this workload
    avoids by never landing on a boundary)."""
    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    query = engine.register_query(
        f"SELECT room, COUNT(*) AS n FROM Obs "
        f"[Range {WINDOW} Slide {WINDOW}] GROUP BY room")
    query.run_recorded({"Obs": Stream.of_records(OBSERVATION_SCHEMA,
                                                 ROWS)})
    out = {}
    relation = query.as_relation()
    horizon = ROWS[-1][1]
    boundary = WINDOW
    while boundary <= horizon + WINDOW:
        for record in relation.at(boundary):
            out[(record["room"], boundary - WINDOW)] = record["n"]
        boundary += WINDOW
    return out


def test_figure4_cross_layer_equivalence():
    sql_counts = windowed_counts_via_sql()
    assert sql_counts  # non-degenerate workload
    assert windowed_counts_via_dsl() == sql_counts
    assert windowed_counts_via_dataflow() == sql_counts
    assert windowed_counts_via_cql() == sql_counts


def test_dsms_agrees_with_sql_on_grouped_average():
    dsms = DSMSEngine()
    dsms.register_stream("Obs", OBSERVATION_SCHEMA)
    handle = dsms.register_query(
        "avg", "SELECT room, AVG(temp) AS a FROM Obs GROUP BY room")
    for row, t in ROWS:
        dsms.ingest("Obs", row, t)
    dsms.run_until_idle()
    dsms_result = {r["room"]: r["a"] for r in handle.store_state()}

    sql_records = run_sql(
        "SELECT room, AVG(temp) AS a FROM Obs GROUP BY room EMIT CHANGES",
        OBSERVATION_SCHEMA, "Obs", ROWS)
    sql_final = {}
    for record in sql_records:  # last refinement per room wins
        sql_final[record["room"]] = record["a"]
    assert dsms_result == pytest.approx(sql_final)


def test_core_reference_agrees_with_dsl_on_unwindowed_count():
    stream = observation_stream(60)
    from repro.core import count_query, continuous_evaluation
    reference = continuous_evaluation(count_query(), stream)
    final_count = next(iter(reference.at(stream.max_timestamp)))

    env = StreamEnvironment()
    (env.from_collection([(e.value, e.timestamp) for e in stream])
     .key_by(lambda row: "all")
     .reduce(lambda acc, row: acc if isinstance(acc, int) else 1)
     .sink("out"))
    # Count via running reduce: each update increments; take the number
    # of updates observed.
    updates = env.execute().values("out")
    assert len(updates) == final_count


def test_broker_feeds_cql_engine():
    """The Figure 5 queue feeding the Figure 3 engine: eras compose."""
    from repro.runtime import Broker, ConsumerGroup
    broker = Broker()
    broker.create_topic("obs", partitions=2)
    broker.produce_all("obs", ((row["room"], row, t) for row, t in ROWS))

    engine = CQLEngine()
    engine.register_stream("Obs", OBSERVATION_SCHEMA)
    query = engine.register_query(
        "SELECT COUNT(*) AS n FROM Obs [Range Unbounded]")
    query.start()
    group = ConsumerGroup(broker, "cq", ["obs"])
    group.join("w")
    records = sorted(group.poll("w"), key=lambda r: r.timestamp)
    for record in records:
        query.push("Obs", record.value, record.timestamp)
    (answer,) = list(query.current())
    assert answer["n"] == len(ROWS)
