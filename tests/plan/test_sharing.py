"""SubplanMemo semantics and the shareability rules."""

from repro.core import Schema
from repro.plan.exprs import WindowSpec, WindowSpecKind
from repro.plan.ir import (
    BGPMatch,
    OpaqueOp,
    OpaqueSource,
    RelationScan,
    SetOp,
    StreamScan,
    WindowOp,
)
from repro.plan.sharing import SubplanMemo, memo_key, shareable


def windowed():
    scan = StreamScan("Obs", "O", Schema(["O.id"]))
    return WindowOp(scan, WindowSpec(WindowSpecKind.RANGE, range_=10))


class TestShareability:
    def test_stream_window_is_shareable(self):
        assert shareable(windowed())
        assert memo_key(windowed()) is not None

    def test_relation_scan_is_not(self):
        plan = RelationScan("Rooms", "R", Schema(["R.room"]))
        assert not shareable(plan)
        assert memo_key(plan) is None

    def test_opaque_and_bgp_are_not(self):
        source = OpaqueSource("stream_scan", "create#0")
        assert not shareable(source)
        assert not shareable(OpaqueOp("map", "f", (source,)))
        assert not shareable(BGPMatch(windowed(), pattern=object(),
                                      variables=("s",)))


class TestMemo:
    def test_hit_across_compiles(self):
        memo = SubplanMemo()
        key = memo_key(windowed())
        memo.start_compile()
        assert memo.lookup(key) is None          # first compile: miss
        memo.publish(key, "op-1")
        memo.finish_compile()
        memo.start_compile()
        assert memo.lookup(key) == "op-1"        # second compile: hit
        memo.finish_compile()
        assert memo.hits == 1
        assert memo.misses == 1

    def test_entry_used_at_most_once_per_compile(self):
        # X UNION X must not wire one physical operator into both inputs.
        memo = SubplanMemo()
        key = memo_key(windowed())
        memo.start_compile()
        memo.publish(key, "op-1")
        memo.finish_compile()
        memo.start_compile()
        assert memo.lookup(key) == "op-1"
        assert memo.lookup(key) is None          # second use this compile
        memo.finish_compile()

    def test_pending_entries_invisible_to_same_compile(self):
        memo = SubplanMemo()
        key = memo_key(windowed())
        memo.start_compile()
        memo.publish(key, "op-1")
        assert memo.lookup(key) is None
        memo.finish_compile()

    def test_none_key_never_stored(self):
        memo = SubplanMemo()
        memo.start_compile()
        memo.publish(None, "op-1")
        assert memo.lookup(None) is None
        memo.finish_compile()
        assert len(memo) == 0

    def test_union_of_identical_windows_one_hit(self):
        # A self-union of the same windowed scan: the second input cannot
        # reuse the first's physical subtree within one compile, but a
        # later query can.
        plan = SetOp("union", windowed(), windowed())
        memo = SubplanMemo()
        memo.start_compile()
        for child in plan.children:
            key = memo_key(child)
            if memo.lookup(key) is None:
                memo.publish(key, object())
        memo.finish_compile()
        assert memo.hits == 0
        memo.start_compile()
        assert memo.lookup(memo_key(windowed())) is not None
        memo.finish_compile()
        assert memo.hits == 1
