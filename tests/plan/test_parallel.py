"""Tests for the fission analysis (repro.plan.parallel)."""

import pytest

from repro.core import Schema
from repro.cql import Catalog, CQLEngine
from repro.plan import decide_parallelism, partition_scheme
from repro.plan.exprs import Binary, BinOp, Column, Literal
from repro.plan.ir import Aggregate, AggregateExpr, Project, StreamScan
from repro.core.operators import AggregateKind


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.catalog.register_stream("Obs", Schema(["id", "room", "temp"]))
    engine.catalog.register_stream("Alerts", Schema(["room", "level"]))
    engine.catalog.register_relation("Rooms", Schema(["room", "floor"]), [])
    return engine


def scheme_of(engine, text, optimize=True):
    return partition_scheme(engine.plan(text, optimize=optimize))


class TestKeyedAggregates:
    def test_group_by_partitions_on_group_key(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
                    "GROUP BY room")
        assert scheme is not None
        assert scheme.keys == ("room",)
        assert scheme.stream_keys == {"Obs": (1,)}

    def test_global_aggregate_is_not_partitionable(self, engine):
        assert scheme_of(
            engine, "SELECT COUNT(*) AS n FROM Obs [Range 5]") is None

    def test_filter_and_projection_are_transparent(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, MAX(temp) AS m FROM Obs [Range 5] "
                    "WHERE temp > 30 GROUP BY room")
        assert scheme is not None
        assert scheme.stream_keys == {"Obs": (1,)}

    def test_multi_column_group_key(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, id, COUNT(*) AS n FROM Obs [Range 5] "
                    "GROUP BY room, id")
        assert scheme is not None
        assert scheme.stream_keys == {"Obs": (1, 0)}

    def test_computed_group_key_bails(self):
        # GROUP BY on a projected expression: the key does not exist on
        # raw arrivals, so there is nothing to route on.
        scan = StreamScan("Obs", "O", Schema(["O.id", "O.room", "O.temp"]))
        doubled = Project(
            scan, (Binary(BinOp.MUL, Column("O.temp"), Literal(2)),),
            ("t2",))
        plan = Aggregate(doubled, ("t2",), ("t2",),
                         (AggregateExpr(AggregateKind.COUNT, None, "n"),))
        assert partition_scheme(plan) is None


class TestWindows:
    def test_rows_window_blocks_fission(self, engine):
        # [Rows n] keeps the globally newest n rows across all keys.
        assert scheme_of(
            engine, "SELECT room, COUNT(*) AS n FROM Obs [Rows 5] "
                    "GROUP BY room") is None

    def test_partitioned_window_on_group_key_is_safe(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, COUNT(*) AS n "
                    "FROM Obs [Partition By room Rows 2] GROUP BY room")
        assert scheme is not None
        assert scheme.stream_keys == {"Obs": (1,)}

    def test_partitioned_window_on_other_key_bails(self, engine):
        assert scheme_of(
            engine, "SELECT room, COUNT(*) AS n "
                    "FROM Obs [Partition By id Rows 2] "
                    "GROUP BY room") is None


class TestJoins:
    def test_stream_stream_equijoin_coparitions_both_sides(self, engine):
        scheme = scheme_of(
            engine, "SELECT O.id, A.level FROM Obs O [Range 5], "
                    "Alerts A [Range 5] WHERE O.room = A.room")
        assert scheme is not None
        assert scheme.stream_keys == {"Obs": (1,), "Alerts": (0,)}

    def test_relation_side_broadcasts(self, engine):
        scheme = scheme_of(
            engine, "SELECT O.id, R.floor FROM Obs O [Range 5], Rooms R "
                    "WHERE O.room = R.room")
        assert scheme is not None
        assert scheme.stream_keys == {"Obs": (1,)}
        assert "Rooms" not in scheme.stream_keys

    def test_cross_join_of_streams_bails(self, engine):
        assert scheme_of(
            engine, "SELECT O.id, A.level FROM Obs O [Range 2], "
                    "Alerts A [Range 2]") is None

    def test_aggregate_above_join_keys_through_it(self, engine):
        scheme = scheme_of(
            engine, "SELECT O.room, COUNT(*) AS n FROM Obs O [Range 5], "
                    "Alerts A [Range 5] WHERE O.room = A.room "
                    "GROUP BY O.room")
        assert scheme is not None
        assert scheme.keys == ("O.room",)
        assert scheme.stream_keys == {"Obs": (1,), "Alerts": (0,)}

    def test_group_key_outside_join_key_bails(self, engine):
        # Grouping by O.id while joining on room: matching rows of the
        # two streams would land on different partitions.
        assert scheme_of(
            engine, "SELECT O.id, COUNT(*) AS n FROM Obs O [Range 5], "
                    "Alerts A [Range 5] WHERE O.room = A.room "
                    "GROUP BY O.id") is None


class TestSchemeUse:
    def test_key_for_extracts_positionally(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
                    "GROUP BY room")
        assert scheme.key_for("Obs", (7, "kitchen", 31.5)) == "kitchen"

    def test_multi_column_key_is_a_tuple(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, id, COUNT(*) AS n FROM Obs [Range 5] "
                    "GROUP BY room, id")
        assert scheme.key_for("Obs", (7, "kitchen", 31.5)) == ("kitchen", 7)

    def test_describe_names_streams_and_keys(self, engine):
        scheme = scheme_of(
            engine, "SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
                    "GROUP BY room")
        assert "room" in scheme.describe()
        assert "Obs[1]" in scheme.describe()


class TestDecideParallelism:
    def test_unpartitionable_plans_get_one(self, engine):
        plan = engine.plan("SELECT COUNT(*) AS n FROM Obs [Range 5]")
        assert decide_parallelism(plan, requested=4) == 1

    def test_request_is_honoured_when_safe(self, engine):
        plan = engine.plan("SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
                           "GROUP BY room")
        assert decide_parallelism(plan, requested=3) == 3

    def test_default_clamps_to_cores(self, engine):
        plan = engine.plan("SELECT room, COUNT(*) AS n FROM Obs [Range 5] "
                           "GROUP BY room")
        assert decide_parallelism(plan, cores=8) == 4
        assert decide_parallelism(plan, cores=2) == 2

    def test_stateless_plans_stay_serial(self, engine):
        # No keyed boundary at all: nothing to partition by.
        plan = engine.plan("SELECT id FROM Obs [Range 5] WHERE temp > 30")
        assert decide_parallelism(plan, requested=4) == 1
