"""Tests for the adaptivity controller (repro.plan.adaptive):
hysteresis-guarded rescale decisions from polled runtime signals."""

import pytest

from repro.core import PlanError
from repro.plan.adaptive import (
    AdaptiveController,
    AdaptivePolicy,
    Decision,
    Signals,
    skew_ratio,
)


def sig(parallelism=1, occupancy=0.5, pressure=0, lag=None, loads=(),
        selectivity=None):
    return Signals(parallelism=parallelism, queue_occupancy=occupancy,
                   pressure_events=pressure, watermark_lag=lag,
                   partition_loads=tuple(loads), selectivity=selectivity)


class TestSkewRatio:
    def test_balanced_is_one(self):
        assert skew_ratio([5.0, 5.0, 5.0]) == 1.0

    def test_hot_partition_dominates(self):
        assert skew_ratio([9.0, 0.0, 0.0]) == 3.0

    def test_empty_and_zero_are_neutral(self):
        assert skew_ratio([]) == 1.0
        assert skew_ratio([0.0, 0.0]) == 1.0


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        AdaptivePolicy()

    @pytest.mark.parametrize("kwargs", [
        {"min_parallelism": 0},
        {"max_parallelism": 1, "min_parallelism": 2},
        {"low_occupancy": 0.8, "high_occupancy": 0.5},
        {"high_occupancy": 1.5},
        {"confirm_polls": 0},
        {"factor": 1},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(PlanError):
            AdaptivePolicy(**kwargs)


class TestHysteresis:
    def test_one_hot_poll_is_not_a_trend(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
        decision = controller.poll(sig(occupancy=0.9))
        assert decision.action == "hold"
        assert "confirmation 1/2" in decision.reason

    def test_confirmed_streak_scales_up_by_factor(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
        controller.poll(sig(occupancy=0.9))
        decision = controller.poll(sig(occupancy=0.9))
        assert decision.wants_rescale
        assert decision.parallelism == 2  # 1 * factor

    def test_streak_resets_inside_the_band(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
        controller.poll(sig(occupancy=0.9))
        controller.poll(sig(occupancy=0.5))   # dead band: streak resets
        decision = controller.poll(sig(occupancy=0.9))
        assert decision.action == "hold"      # back to confirmation 1/2

    def test_direction_flip_restarts_the_streak(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
        controller.poll(sig(occupancy=0.9))
        decision = controller.poll(sig(parallelism=4, occupancy=0.0))
        assert decision.action == "hold"      # down-streak is fresh

    def test_cooldown_swallows_polls_after_a_rescale(self):
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, cooldown_polls=2))
        assert controller.poll(sig(occupancy=0.9)).wants_rescale
        for _ in range(2):
            decision = controller.poll(sig(parallelism=2, occupancy=0.9))
            assert decision.action == "hold"
            assert "cooling down" in decision.reason
        assert controller.poll(
            sig(parallelism=2, occupancy=0.9)).wants_rescale

    def test_scale_down_on_sustained_idleness(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
        controller.poll(sig(parallelism=4, occupancy=0.0))
        decision = controller.poll(sig(parallelism=4, occupancy=0.0))
        assert decision.wants_rescale
        assert decision.parallelism == 2      # ceil(4 / factor)

    def test_dead_band_holds(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=1))
        decision = controller.poll(sig(parallelism=2, occupancy=0.4))
        assert decision.action == "hold"
        assert "hysteresis band" in decision.reason


class TestTriggers:
    def test_pressure_events_are_differenced(self):
        # The first poll only baselines the cumulative counter; the same
        # total on the next poll means no NEW pressure.
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=1))
        assert controller.poll(
            sig(occupancy=0.5, pressure=10)).action == "hold"
        assert controller.poll(
            sig(occupancy=0.5, pressure=10)).action == "hold"
        decision = controller.poll(sig(occupancy=0.5, pressure=12))
        assert decision.wants_rescale
        assert "pressure" in decision.reason

    def test_watermark_lag_trigger(self):
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, high_watermark_lag=100))
        assert controller.poll(
            sig(occupancy=0.5, lag=50)).action == "hold"
        decision = controller.poll(sig(occupancy=0.5, lag=150))
        assert decision.wants_rescale
        assert "lag" in decision.reason

    def test_lag_disabled_by_default(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=1))
        assert controller.poll(
            sig(occupancy=0.5, lag=10_000)).action == "hold"

    def test_skew_computed_on_differenced_loads(self):
        # Cumulative loads are skewed forever after one hot burst; the
        # controller must difference successive polls so only *fresh*
        # skew argues for a rescale.
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, high_skew=2.0))
        controller.poll(sig(parallelism=2, occupancy=0.5,
                            loads=(100.0, 10.0)))
        # Since the last poll both partitions did 10 units: balanced.
        decision = controller.poll(sig(parallelism=2, occupancy=0.5,
                                       loads=(110.0, 20.0)))
        assert decision.action == "hold"
        # Now one partition does all the fresh work: skew fires.
        decision = controller.poll(sig(parallelism=2, occupancy=0.5,
                                       loads=(160.0, 20.0)))
        assert decision.wants_rescale
        assert "skew" in decision.reason


class TestClamping:
    def test_up_clamps_to_max(self):
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, max_parallelism=6))
        decision = controller.poll(sig(parallelism=4, occupancy=0.9))
        assert decision.parallelism == 6

    def test_down_clamps_to_min(self):
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, min_parallelism=2))
        decision = controller.poll(sig(parallelism=3, occupancy=0.0))
        assert decision.parallelism == 2

    def test_already_at_the_clamp_holds_without_a_streak(self):
        controller = AdaptiveController(
            AdaptivePolicy(confirm_polls=1, max_parallelism=4))
        decision = controller.poll(sig(parallelism=4, occupancy=0.9))
        assert decision.action == "hold"


class TestIntrospection:
    def test_determinism(self):
        signals = [sig(occupancy=o) for o in
                   (0.9, 0.9, 0.3, 0.0, 0.0, 0.0, 0.9)]
        runs = []
        for _ in range(2):
            controller = AdaptiveController(AdaptivePolicy(confirm_polls=2))
            runs.append([controller.poll(s) for s in signals])
        assert runs[0] == runs[1]

    def test_as_dict_summarises_history(self):
        controller = AdaptiveController(AdaptivePolicy(confirm_polls=1))
        controller.poll(sig(occupancy=0.9))
        state = controller.as_dict()
        assert state["polls"] == 1
        assert state["rescales"] == 1
        assert state["last_decision"]["action"] == "rescale"

    def test_decision_wants_rescale_property(self):
        assert Decision("rescale", 2, "x").wants_rescale
        assert not Decision("hold", 2, "x").wants_rescale
