"""Tests for the unified rule rewriter (repro.plan.rules)."""

import pytest

from repro.core import Schema
from repro.cql import Catalog, parse_query, plan_statement
from repro.plan.exprs import (
    Binary,
    BinOp,
    Column,
    Literal,
    WindowSpec,
    WindowSpecKind,
)
from repro.plan.ir import Distinct, Filter, Project, StreamScan, WindowOp
from repro.plan.rules import (
    collapse_distinct,
    compose_projects,
    optimize,
    push_filter_through_window,
    remove_identity_project,
)
from repro.plan.signature import plan_signature


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register_stream("Obs", Schema(["id", "room", "temp"]))
    return catalog


def scan():
    return StreamScan("Obs", "O",
                      Schema(["O.id", "O.room", "O.temp"]))


class TestWindowPushdown:
    def test_filter_pushes_below_range_window(self):
        spec = WindowSpec(WindowSpecKind.RANGE, range_=10)
        plan = Filter(WindowOp(scan(), spec),
                      Binary(BinOp.GT, Column("O.temp"), Literal(30)))
        pushed = push_filter_through_window(plan)
        assert isinstance(pushed, WindowOp)
        assert isinstance(pushed.child, Filter)
        assert pushed.spec == spec

    def test_rows_window_blocks_pushdown(self):
        spec = WindowSpec(WindowSpecKind.ROWS, rows=5)
        plan = Filter(WindowOp(scan(), spec),
                      Binary(BinOp.GT, Column("O.temp"), Literal(30)))
        assert push_filter_through_window(plan) is None

    def test_partitioned_window_blocks_pushdown(self):
        spec = WindowSpec(WindowSpecKind.ROWS, rows=5,
                          partition_by=("O.room",))
        plan = Filter(WindowOp(scan(), spec),
                      Binary(BinOp.GT, Column("O.temp"), Literal(30)))
        assert push_filter_through_window(plan) is None


class TestProjectionRules:
    def test_compose_projects_substitutes_inner_exprs(self):
        inner = Project(scan(),
                        (Binary(BinOp.MUL, Column("O.temp"), Literal(2)),),
                        ("double",))
        outer = Project(inner,
                        (Binary(BinOp.ADD, Column("double"), Literal(1)),),
                        ("out",))
        fused = compose_projects(outer)
        assert isinstance(fused, Project)
        assert not isinstance(fused.child, Project)
        assert fused.names == ("out",)
        # The inner expression was substituted into the outer one.
        assert "temp" in str(fused.exprs[0])

    def test_identity_project_removed(self):
        base = scan()
        identity = Project(
            base, tuple(Column(f) for f in base.schema.fields),
            tuple(base.schema.fields))
        assert remove_identity_project(identity) is base

    def test_renaming_project_kept(self):
        base = scan()
        renamed = Project(base, (Column("O.id"),), ("ident",))
        assert remove_identity_project(renamed) is None


class TestDistinct:
    def test_distinct_stack_collapses(self):
        stacked = Distinct(Distinct(scan()))
        collapsed = collapse_distinct(stacked)
        assert isinstance(collapsed, Distinct)
        assert not isinstance(collapsed.child, Distinct)


class TestFixpoint:
    def test_filter_ends_below_window_via_cql(self, catalog):
        plan = plan_statement(parse_query(
            "SELECT ISTREAM id FROM Obs [Range 10] WHERE temp > 30"),
            catalog)
        optimized = optimize(plan)
        signature = plan_signature(optimized)
        assert "window(select(stream_scan))" in signature

    def test_fixpoint_is_stable(self, catalog):
        plan = plan_statement(parse_query(
            "SELECT ISTREAM id FROM Obs [Range 10] WHERE temp > 30"),
            catalog)
        once = optimize(plan)
        assert optimize(once) is once
