"""All four frontends lower onto the unified IR (repro.plan)."""

from repro.core import R2SKind, Schema
from repro.core.monotonicity import MonotonicityClass, classify_plan
from repro.plan.ir import (
    Filter,
    OpaqueOp,
    OpaqueSource,
    Project,
    StreamScan,
    WindowAggregate,
)
from repro.plan.signature import plan_signature


class TestSQLLowering:
    def engine(self):
        from repro.sql.translate import SQLEngine
        engine = SQLEngine()
        engine.register_stream("Orders",
                               Schema(["oid", "user", "amount"]))
        return engine

    def test_stateless_query_shape(self):
        plan = self.engine().plan(
            "SELECT oid FROM Orders WHERE amount > 10 EMIT CHANGES",
            optimize=False)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Filter)
        assert isinstance(plan.child.child, StreamScan)

    def test_aggregation_lowered_to_window_aggregate(self):
        plan = self.engine().plan(
            "SELECT user, COUNT(*) AS n FROM Orders "
            "GROUP BY user, TUMBLE(10) EMIT FINAL")
        assert isinstance(plan, Project)
        assert isinstance(plan.child, WindowAggregate)

    def test_optimizer_fuses_projection_stacks(self):
        engine = self.engine()
        naive = engine.plan("SELECT oid FROM Orders EMIT CHANGES",
                            optimize=False)
        optimized = engine.plan("SELECT oid FROM Orders EMIT CHANGES",
                                optimize=True)
        assert optimized.schema == naive.schema

    def test_explain_renders_ir(self):
        text = self.engine().explain(
            "SELECT oid FROM Orders WHERE amount > 10 EMIT CHANGES")
        assert "Filter" in text
        assert "signature:" in text

    def test_execution_still_works(self):
        engine = self.engine()
        rows = [({"oid": 1, "user": "u", "amount": 5}, 0),
                ({"oid": 2, "user": "u", "amount": 50}, 1)]
        out = engine.run(
            "SELECT oid FROM Orders WHERE amount > 10 EMIT CHANGES", rows)
        assert [r["oid"] for r in out] == [2]


class TestRSPLowering:
    def query(self):
        from repro.rsp import (
            BasicGraphPattern,
            ContinuousRSPQuery,
            StreamWindow,
            TriplePattern,
            iri,
            var,
        )
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), iri("ex:temperature"), var("t"))])
        return ContinuousRSPQuery(bgp, StreamWindow(width=10, slide=5),
                                  select=["s", "t"],
                                  r2s=R2SKind.RSTREAM)

    def test_logical_plan_shape(self):
        plan = self.query().logical_plan(["obs"])
        assert plan_signature(plan) == \
            "rstream(bgp_match(window(stream_scan)))"

    def test_union_of_streams(self):
        plan = self.query().logical_plan(["a", "b"])
        assert plan_signature(plan) == \
            "rstream(bgp_match(union(window(stream_scan), " \
            "window(stream_scan))))"

    def test_engine_explain(self):
        from repro.rsp import RSPEngine
        engine = RSPEngine()
        engine.register_stream("obs")
        query = engine.register_query("obs", self.query())
        text = engine.explain(query)
        assert "Bgp_match" in text or "bgp_match" in text

    def test_window_content_cache_shares_scans(self):
        from repro.rsp import RSPEngine, Triple, iri, lit
        engine = RSPEngine()
        engine.register_stream("obs")
        engine.register_query("obs", self.query())
        engine.register_query("obs", self.query())
        engine.push("obs", Triple(iri("s1"), iri("ex:temperature"),
                                  lit(20)), 1)
        engine.advance(30)
        assert engine.window_scans_shared > 0


class TestDataflowLowering:
    def pipeline(self):
        from repro.dataflow.pipeline import Pipeline
        from repro.dataflow.windowfn import FixedWindows
        p = Pipeline()
        (p.create([("a", 3), ("b", 1)])
          .map(lambda v: (v, 1))
          .window_into(FixedWindows(10))
          .group_by_key()
          .collect("counts"))
        return p

    def test_logical_plan_kinds(self):
        plan = self.pipeline().logical_plan()
        assert plan_signature(plan) == \
            "sink(group_aggregate(window(map(stream_scan))))"

    def test_opaque_nodes_carry_payload(self):
        plan = self.pipeline().logical_plan()
        node = plan
        while not isinstance(node, OpaqueSource):
            assert isinstance(node, OpaqueOp)
            (node,) = node.children
        assert node.payload is not None

    def test_classifier_sees_gbk_as_breaking(self):
        plan = self.pipeline().logical_plan()
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC

    def test_map_only_pipeline_is_monotonic(self):
        from repro.dataflow.pipeline import Pipeline
        p = Pipeline()
        p.create([(1, 0)]).map(lambda v: v + 1).collect("out")
        assert classify_plan(p.logical_plan()) is \
            MonotonicityClass.MONOTONIC

    def test_explain_renders(self):
        assert "Stream_scan" in self.pipeline().explain()


class TestDSLLowering:
    def test_logical_plan_kinds(self):
        from repro.dsl.environment import StreamEnvironment
        env = StreamEnvironment()
        (env.from_collection([(1, 0), (2, 1)])
            .filter(lambda v: v > 1)
            .map(lambda v: v * 2)
            .sink("out"))
        assert plan_signature(env.logical_plan()) == \
            "sink(map(filter(stream_scan)))"

    def test_keyed_window_is_breaking(self):
        from repro.core.windows import TumblingWindow
        from repro.dsl.environment import StreamEnvironment
        env = StreamEnvironment()
        (env.from_collection([((1, 1), 0)])
            .key_by(lambda kv: kv[0])
            .window(TumblingWindow(10))
            .count()
            .sink("out"))
        plan = env.logical_plan()
        assert "group_aggregate" in plan_signature(plan)
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC

    def test_explain_renders(self):
        from repro.dsl.environment import StreamEnvironment
        env = StreamEnvironment()
        env.from_collection([(1, 0)]).map(lambda v: v).sink("out")
        assert "signature:" in env.explain()
