"""Tests for the micro-batch emission-safety pass (repro.plan.batching).

The fallback matrix: relation-output plans are always batch-safe (state
per instant nets identically), R2S plans are safe only when no operator
exposes intra-instant intermediates — aggregates, evicting windows,
joins, non-monotone set ops, RSTREAM and opaque nodes all force the
per-element fallback.
"""

import pytest

from repro.core import Schema
from repro.cql import CQLEngine
from repro.plan import BatchReport, batch_safety, decide_batch_size


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.catalog.register_stream("Obs", Schema(["id", "room", "temp"]))
    engine.catalog.register_stream("Alerts", Schema(["room", "level"]))
    engine.catalog.register_relation("Rooms", Schema(["room", "floor"]), [])
    return engine


def report(engine, text):
    return batch_safety(engine.plan(text, optimize=True))


class TestRelationOutputs:
    def test_relation_query_is_always_safe(self, engine):
        rep = report(engine, "SELECT id FROM Obs [Range 5] WHERE temp > 3")
        assert rep.safe and rep.blockers == ()

    def test_even_aggregates_are_safe_without_r2s_root(self, engine):
        rep = report(engine, "SELECT room, COUNT(*) AS n "
                             "FROM Obs [Range 5] GROUP BY room")
        assert rep.safe

    def test_joins_are_safe_without_r2s_root(self, engine):
        rep = report(
            engine, "SELECT Obs.id, Rooms.floor FROM Obs [Range 3], Rooms "
                    "WHERE Obs.room = Rooms.room")
        assert rep.safe


class TestStreamOutputs:
    def test_unbounded_window_stream_is_safe(self, engine):
        rep = report(engine, "SELECT ISTREAM id FROM Obs "
                             "[Range Unbounded] WHERE temp > 3")
        assert rep.safe
        assert "exact" in rep.describe()

    def test_range_window_blocks_on_expiry_netting(self, engine):
        rep = report(engine, "SELECT ISTREAM id FROM Obs [Range 5]")
        assert not rep.safe
        assert any("window" in where for where, _ in rep.blockers)

    def test_now_window_blocks(self, engine):
        rep = report(engine, "SELECT ISTREAM id FROM Obs [Now]")
        assert not rep.safe

    def test_rows_window_blocks_on_capacity_eviction(self, engine):
        rep = report(engine, "SELECT ISTREAM id FROM Obs [Rows 2]")
        assert not rep.safe
        assert any("rows" in where for where, _ in rep.blockers)

    def test_aggregate_blocks_on_intermediate_rows(self, engine):
        rep = report(engine, "SELECT ISTREAM COUNT(*) AS n "
                             "FROM Obs [Range Unbounded]")
        assert not rep.safe
        assert any("aggregate" in why for _, why in rep.blockers)

    def test_join_blocks_on_match_order(self, engine):
        rep = report(
            engine, "SELECT ISTREAM Obs.id FROM Obs [Range Unbounded], "
                    "Rooms WHERE Obs.room = Rooms.room")
        assert not rep.safe
        assert any(where == "join" for where, _ in rep.blockers)

    def test_rstream_blocks_on_snapshot_multiplicity(self, engine):
        rep = report(engine, "SELECT RSTREAM id FROM Obs "
                             "[Range Unbounded]")
        assert not rep.safe
        assert any(where == "RSTREAM" for where, _ in rep.blockers)

    def test_describe_names_every_blocker(self, engine):
        rep = report(engine, "SELECT ISTREAM COUNT(*) AS n "
                             "FROM Obs [Range 5]")
        text = rep.describe()
        assert text.startswith("per-element fallback")
        assert "aggregate" in text


class TestDecideBatchSize:
    def test_safe_plan_keeps_request(self, engine):
        plan = engine.plan("SELECT id FROM Obs [Range 5]")
        assert decide_batch_size(plan, 64) == 64

    def test_unsafe_plan_clamps_to_one(self, engine):
        plan = engine.plan("SELECT ISTREAM COUNT(*) AS n "
                           "FROM Obs [Range 5]")
        assert decide_batch_size(plan, 64) == 1

    def test_requests_at_or_below_one_pass_through(self, engine):
        plan = engine.plan("SELECT id FROM Obs [Range 5]")
        assert decide_batch_size(plan, 1) == 1
        assert decide_batch_size(plan, 0) == 1

    def test_report_is_frozen(self):
        rep = BatchReport(safe=True, blockers=())
        with pytest.raises(Exception):
            rep.safe = False
