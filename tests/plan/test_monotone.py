"""Monotonicity-aware strategy decisions (repro.plan.monotone)."""

from repro.core import Schema
from repro.plan.exprs import WindowSpec, WindowSpecKind
from repro.plan.ir import Distinct, Join, StreamScan, WindowOp
from repro.plan.monotone import (
    IncrementalStrategy,
    append_only_inputs,
    incremental_strategy,
    strategy_notes,
)


def scan(alias="O"):
    return StreamScan("Obs", alias, Schema([f"{alias}.id"]))


def window(kind, child=None):
    return WindowOp(child or scan(), WindowSpec(kind, range_=10))


class TestStrategy:
    def test_unbounded_window_is_append_only(self):
        plan = window(WindowSpecKind.UNBOUNDED)
        assert incremental_strategy(plan) is IncrementalStrategy.APPEND_ONLY

    def test_sliding_window_retracts(self):
        plan = window(WindowSpecKind.RANGE)
        assert incremental_strategy(plan) is IncrementalStrategy.RETRACTING

    def test_join_inputs_decide_the_join_strategy(self):
        growing = Join(window(WindowSpecKind.UNBOUNDED),
                       window(WindowSpecKind.UNBOUNDED, scan("P")),
                       ("O.id",), ("P.id",), None)
        assert append_only_inputs(growing)
        sliding = Join(window(WindowSpecKind.RANGE),
                       window(WindowSpecKind.UNBOUNDED, scan("P")),
                       ("O.id",), ("P.id",), None)
        assert not append_only_inputs(sliding)

    def test_strategy_notes_cover_stateful_ops(self):
        plan = Distinct(Join(
            window(WindowSpecKind.UNBOUNDED),
            window(WindowSpecKind.UNBOUNDED, scan("P")),
            ("O.id",), ("P.id",), None))
        notes = dict((node.op_name, strategy)
                     for node, strategy in strategy_notes(plan))
        assert notes["distinct"] is IncrementalStrategy.APPEND_ONLY
        assert notes["equijoin"] is IncrementalStrategy.APPEND_ONLY
