"""The pre-unification module paths must warn loudly but keep working."""

import importlib
import os
import subprocess
import sys

import pytest


@pytest.mark.parametrize("shim,target", [
    ("repro.cql.algebra", "repro.plan.ir"),
    ("repro.sql.optimizer", "repro.plan.rules"),
])
def test_shim_import_warns_and_reexports_the_same_objects(shim, target):
    sys.modules.pop(shim, None)
    with pytest.warns(DeprecationWarning, match=shim):
        module = importlib.import_module(shim)
    target_module = importlib.import_module(target)
    # Identity, not equality: isinstance checks across old and new import
    # paths must keep agreeing.
    for name in module.__all__:
        if hasattr(target_module, name):
            assert getattr(module, name) is getattr(target_module, name)


def test_package_imports_do_not_touch_the_shims():
    """No repro package may import the shims internally — users who never
    wrote the deprecated paths must never see the warning."""
    code = ("import repro.cql, repro.sql, repro.dsms, repro.exec, "
            "repro.plan, repro.chaos, repro.difftest, repro.runtime.job")
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": "src"}, cwd=os.getcwd())
    assert result.returncode == 0, result.stderr
