"""Golden-file tests for the EXPLAIN renderers (logical and kernel)."""

from pathlib import Path

import pytest

from repro.core import Schema
from repro.cql import CQLEngine
from repro.plan.explain import explain, explain_kernel, explain_logical

GOLDEN = Path(__file__).parent / "golden"


def golden(name: str) -> str:
    return (GOLDEN / name).read_text()


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("RoomObservation",
                           Schema(["id", "room", "temp"]))
    engine.register_relation("Person", Schema(["id", "name"]))
    return engine


class TestLogicalExplain:
    def test_listing1_style_query(self, engine):
        text = ("SELECT COUNT(P.id) AS n "
                "FROM Person P, RoomObservation O [Range 15] "
                "WHERE P.id = O.id AND O.temp > 20")
        assert engine.explain(text) + "\n" == golden("listing1_logical.txt")

    def test_pushdown_visible_in_explain(self, engine):
        # The rendered tree shows the filter *below* the window — the
        # pushdown regression guard in its human-readable form.
        text = ("SELECT COUNT(P.id) AS n "
                "FROM Person P, RoomObservation O [Range 15] "
                "WHERE P.id = O.id AND O.temp > 20")
        rendered = engine.explain(text)
        window_at = rendered.index("Window[")
        filter_at = rendered.index("Filter(")
        assert window_at < filter_at

    def test_dispatch_on_logical(self, engine):
        plan = engine.plan("SELECT id FROM RoomObservation [Now]")
        assert explain(plan) == explain_logical(plan)


class TestKernelExplain:
    def test_shared_group_wiring(self, engine):
        group = engine.shared_group()
        for select in ("id", "room"):
            engine.register_query(
                f"SELECT ISTREAM {select} FROM RoomObservation "
                "[Range 10] WHERE temp > 20", shared=group)
        rendered = explain_kernel(group.kernel.plan)
        assert rendered + "\n" == golden("shared_kernel.txt")

    def test_shared_channels_marked(self, engine):
        group = engine.shared_group()
        for select in ("id", "room"):
            engine.register_query(
                f"SELECT ISTREAM {select} FROM RoomObservation "
                "[Range 10] WHERE temp > 20", shared=group)
        assert "(shared x2)" in explain(group.kernel.plan)

    def test_unshared_plan_has_no_shared_marks(self, engine):
        query = engine.register_query(
            "SELECT ISTREAM id FROM RoomObservation [Range 10]")
        assert "shared x" not in explain_kernel(query._kernel.plan)
