"""Canonical (commutativity-aware) plan signatures."""

from repro.core import Schema
from repro.plan.exprs import (
    Binary,
    BinOp,
    Column,
    Literal,
    WindowSpec,
    WindowSpecKind,
)
from repro.plan.ir import Filter, Join, SetOp, StreamScan, WindowOp
from repro.plan.signature import canonical_predicate, plan_signature


def scan(name, alias):
    return StreamScan(name, alias, Schema([f"{alias}.id", f"{alias}.v"]))


def windowed(name, alias, width=10):
    return WindowOp(scan(name, alias),
                    WindowSpec(WindowSpecKind.RANGE, range_=width))


class TestJoinCommutativity:
    def test_join_operand_order_is_canonical(self):
        a, b = windowed("A", "A"), windowed("B", "B")
        ab = Join(a, b, ("A.id",), ("B.id",), None)
        ba = Join(b, a, ("B.id",), ("A.id",), None)
        assert plan_signature(ab) == plan_signature(ba)
        assert plan_signature(ab, detail=True) == \
            plan_signature(ba, detail=True)

    def test_key_pairs_swap_with_the_operands(self):
        a, b = windowed("A", "A"), windowed("B", "B")
        ab = Join(a, b, ("A.id",), ("B.id",), None)
        detail = plan_signature(ab, detail=True)
        assert "A.id=B.id" in detail

    def test_different_keys_differ(self):
        a, b = windowed("A", "A"), windowed("B", "B")
        on_id = Join(a, b, ("A.id",), ("B.id",), None)
        on_v = Join(a, b, ("A.v",), ("B.v",), None)
        assert plan_signature(on_id, detail=True) != \
            plan_signature(on_v, detail=True)


class TestSetOpCommutativity:
    def test_union_is_commutative(self):
        a, b = windowed("A", "A"), windowed("B", "B")
        assert plan_signature(SetOp("union", a, b), detail=True) == \
            plan_signature(SetOp("union", b, a), detail=True)

    def test_difference_is_not_commutative(self):
        a, b = windowed("A", "A"), windowed("B", "B")
        assert plan_signature(SetOp("difference", a, b), detail=True) != \
            plan_signature(SetOp("difference", b, a), detail=True)


class TestPredicateCanonicalisation:
    def test_equality_sides_ordered(self):
        ab = Binary(BinOp.EQ, Column("a"), Column("b"))
        ba = Binary(BinOp.EQ, Column("b"), Column("a"))
        assert canonical_predicate(ab) == canonical_predicate(ba)

    def test_conjunct_order_ignored(self):
        p = Binary(BinOp.GT, Column("a"), Literal(1))
        q = Binary(BinOp.LT, Column("b"), Literal(2))
        pq = Binary(BinOp.AND, p, q)
        qp = Binary(BinOp.AND, q, p)
        base = windowed("A", "A")
        assert plan_signature(Filter(base, pq), detail=True) == \
            plan_signature(Filter(base, qp), detail=True)


class TestDetailLevels:
    def test_structural_signature_hides_payload(self):
        narrow = windowed("A", "A", width=5)
        wide = windowed("A", "A", width=50)
        assert plan_signature(narrow) == plan_signature(wide)

    def test_detailed_signature_sees_window_width(self):
        narrow = windowed("A", "A", width=5)
        wide = windowed("A", "A", width=50)
        assert plan_signature(narrow, detail=True) != \
            plan_signature(wide, detail=True)
