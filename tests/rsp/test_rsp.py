"""Tests for the RDF model and RSP-QL continuous queries (C8)."""

import pytest

from repro.core import R2SKind, RSPError
from repro.rsp import (
    BasicGraphPattern,
    ContinuousRSPQuery,
    RDFGraph,
    RDFStream,
    ReportPolicy,
    RSPEngine,
    StreamWindow,
    Triple,
    TriplePattern,
    iri,
    lit,
    var,
)

TYPE = iri("rdf:type")
TEMP = iri("ex:temperature")
IN = iri("ex:locatedIn")
SENSOR = iri("ex:Sensor")


def reading(sensor, value):
    return Triple(iri(sensor), TEMP, lit(value))


class TestRDFModel:
    def test_triple_str(self):
        triple = Triple(iri("s"), iri("p"), lit(3))
        assert str(triple) == "<s> <p> 3 ."

    def test_variables_not_allowed_in_data(self):
        with pytest.raises(RSPError):
            Triple(var("x"), iri("p"), lit(1))

    def test_graph_set_semantics(self):
        graph = RDFGraph()
        assert graph.add(reading("s1", 20))
        assert not graph.add(reading("s1", 20))
        assert len(graph) == 1

    def test_graph_discard(self):
        graph = RDFGraph([reading("s1", 20)])
        assert graph.discard(reading("s1", 20))
        assert not graph.discard(reading("s1", 20))
        assert len(graph) == 0

    def test_candidates_use_tightest_index(self):
        graph = RDFGraph([reading("s1", 20), reading("s2", 21),
                          Triple(iri("s1"), TYPE, SENSOR)])
        pattern = TriplePattern(iri("s1"), var("p"), var("o"))
        assert len(list(graph.candidates(pattern))) == 2

    def test_union(self):
        a = RDFGraph([reading("s1", 20)])
        b = RDFGraph([reading("s2", 30)])
        assert len(a.union(b)) == 2


class TestBGPMatching:
    @pytest.fixture
    def graph(self):
        return RDFGraph([
            Triple(iri("s1"), TYPE, SENSOR),
            Triple(iri("s2"), TYPE, SENSOR),
            Triple(iri("s1"), IN, iri("room1")),
            Triple(iri("s2"), IN, iri("room2")),
            reading("s1", 20),
            reading("s2", 28),
        ])

    def test_single_pattern(self, graph):
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), TYPE, SENSOR)])
        solutions = bgp.match(graph)
        assert {s["s"].value for s in solutions} == {"s1", "s2"}

    def test_join_across_patterns(self, graph):
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), IN, iri("room1")),
            TriplePattern(var("s"), TEMP, var("t")),
        ])
        (solution,) = bgp.match(graph)
        assert solution["s"].value == "s1"
        assert solution["t"].value == 20

    def test_three_way_join(self, graph):
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), TYPE, SENSOR),
            TriplePattern(var("s"), IN, var("room")),
            TriplePattern(var("s"), TEMP, var("t")),
        ])
        solutions = bgp.match(graph)
        assert len(solutions) == 2

    def test_no_match(self, graph):
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), IN, iri("room99"))])
        assert bgp.match(graph) == []

    def test_shared_variable_must_unify(self, graph):
        bgp = BasicGraphPattern([
            TriplePattern(var("x"), IN, var("x"))])
        assert bgp.match(graph) == []

    def test_empty_bgp_rejected(self):
        with pytest.raises(RSPError):
            BasicGraphPattern([])


class TestStreamWindow:
    def test_boundaries(self):
        window = StreamWindow(width=10, slide=5)
        assert window.boundaries_up_to(21) == [10, 15, 20]

    def test_scope(self):
        assert StreamWindow(width=10, slide=5).scope_at(15) == (5, 15)

    def test_t0_anchor(self):
        window = StreamWindow(width=10, slide=10, t0=3)
        assert window.boundaries_up_to(25) == [13, 23]

    def test_invalid(self):
        with pytest.raises(RSPError):
            StreamWindow(width=0, slide=5)


def sensor_query(r2s=R2SKind.RSTREAM, report=ReportPolicy.WINDOW_CLOSE,
                 width=10, slide=10):
    bgp = BasicGraphPattern([TriplePattern(var("s"), TEMP, var("t"))])
    return ContinuousRSPQuery(
        bgp, StreamWindow(width=width, slide=slide),
        select=["s", "t"], r2s=r2s, report=report)


class TestContinuousQueries:
    def test_window_close_reporting(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        query = engine.register_query("obs", sensor_query())
        assert engine.push("obs", reading("s1", 20), 1) == []
        results = engine.push("obs", reading("s2", 25), 12)
        assert len(results) == 1
        assert results[0].window_close == 10
        assert results[0].solutions[0]["t"].value == 20

    def test_advance_fires_pending_windows(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        engine.register_query("obs", sensor_query())
        engine.push("obs", reading("s1", 20), 1)
        results = engine.advance(30)
        closes = [r.window_close for r in results]
        assert closes == [10, 20, 30]

    def test_istream_emits_only_new_solutions(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        query = engine.register_query(
            "obs", sensor_query(r2s=R2SKind.ISTREAM, width=20, slide=10))
        engine.push("obs", reading("s1", 20), 1)
        engine.push("obs", reading("s2", 25), 11)
        results = engine.advance(30)
        # First close is t0 + width = 20, covering [0,20): both readings
        # are new.  The window closing at 30 covers [10,30): s2 only, and
        # s2 was already reported, so ISTREAM emits nothing.
        by_close = {r.window_close: r.solutions for r in results}
        assert {s["s"].value for s in by_close[20]} == {"s1", "s2"}
        assert by_close[30] == ()

    def test_dstream_emits_expired_solutions(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        query = engine.register_query(
            "obs", sensor_query(r2s=R2SKind.DSTREAM, width=10, slide=10))
        engine.push("obs", reading("s1", 20), 1)
        results = engine.advance(20)
        by_close = {r.window_close: r.solutions for r in results}
        # At close 20 the window [10,20) no longer holds s1.
        assert {s["s"].value for s in by_close[20]} == {"s1"}

    def test_non_empty_policy_skips_empty_windows(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        engine.register_query(
            "obs", sensor_query(report=ReportPolicy.NON_EMPTY))
        engine.push("obs", reading("s1", 20), 1)
        results = engine.advance(40)
        assert [r.window_close for r in results] == [10]

    def test_content_change_policy_dedupes(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        engine.register_query(
            "obs", sensor_query(report=ReportPolicy.CONTENT_CHANGE,
                                width=20, slide=10))
        engine.push("obs", reading("s1", 20), 1)
        results = engine.advance(40)
        # Closes: 20 over [0,20) = {s1} (changed from nothing → report),
        # 30 over [10,30) = {} (changed → report), 40 over [20,40) = {}
        # (unchanged → skipped).
        closes = [r.window_close for r in results]
        assert closes == [20, 30]

    def test_select_restriction(self):
        bgp = BasicGraphPattern([TriplePattern(var("s"), TEMP, var("t"))])
        query = ContinuousRSPQuery(
            bgp, StreamWindow(10, 10), select=["s"])
        stream = RDFStream()
        stream.push(reading("s1", 20), 1)
        result = query.evaluate_window(stream, 10)
        assert result.solutions == ({"s": iri("s1")},)

    def test_unknown_select_variable_rejected(self):
        bgp = BasicGraphPattern([TriplePattern(var("s"), TEMP, var("t"))])
        with pytest.raises(RSPError):
            ContinuousRSPQuery(bgp, StreamWindow(10, 10), select=["zzz"])

    def test_duplicate_stream_rejected(self):
        engine = RSPEngine()
        engine.register_stream("obs")
        with pytest.raises(RSPError):
            engine.register_stream("obs")

    def test_stream_time_order(self):
        stream = RDFStream()
        stream.push(reading("s1", 20), 5)
        with pytest.raises(RSPError):
            stream.push(reading("s1", 21), 4)


class TestMultiStreamQueries:
    def test_union_of_streams_inside_window(self):
        engine = RSPEngine()
        engine.register_stream("static")
        engine.register_stream("readings")
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), TEMP, var("t")),
            TriplePattern(var("s"), TYPE, SENSOR),
        ])
        query = engine.register_query(
            ["static", "readings"],
            ContinuousRSPQuery(bgp, StreamWindow(width=10, slide=10)))
        engine.push("static", Triple(iri("s1"), TYPE, SENSOR), 1)
        engine.push("readings", reading("s1", 20), 2)
        results = engine.advance(10)
        (report,) = results
        assert report.solutions[0]["t"].value == 20

    def test_window_applies_to_both_streams(self):
        engine = RSPEngine()
        engine.register_stream("static")
        engine.register_stream("readings")
        bgp = BasicGraphPattern([
            TriplePattern(var("s"), TEMP, var("t")),
            TriplePattern(var("s"), TYPE, SENSOR),
        ])
        engine.register_query(
            ["static", "readings"],
            ContinuousRSPQuery(bgp, StreamWindow(width=10, slide=10)))
        engine.push("static", Triple(iri("s1"), TYPE, SENSOR), 1)
        engine.push("readings", reading("s1", 20), 15)  # later window
        results = engine.advance(20)
        # The type triple expired before the reading arrived: no join.
        assert all(not r.solutions for r in results)

    def test_empty_stream_list_rejected(self):
        engine = RSPEngine()
        bgp = BasicGraphPattern([TriplePattern(var("s"), TEMP, var("t"))])
        with pytest.raises(RSPError):
            engine.register_query([], ContinuousRSPQuery(
                bgp, StreamWindow(10, 10)))
