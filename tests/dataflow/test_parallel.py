"""Tests for fissioned GroupByKey execution in the dataflow frontend."""

import pytest

from repro.core import BoundedOutOfOrderness, PlanError
from repro.dataflow import (
    AccumulationMode,
    AfterCount,
    AfterWatermark,
    FixedWindows,
    Pipeline,
    Repeatedly,
    Sessions,
)

ELEMENTS = [("a", 1), ("b", 2), ("a", 5), ("c", 7), ("b", 12),
            ("a", 13), ("d", 14), ("c", 18), ("b", 21), ("a", 22)]


def counting_pipeline(**window_kwargs):
    p = Pipeline()
    (p.create(ELEMENTS, watermark=BoundedOutOfOrderness(2))
     .map(lambda v: (v, 1))
     .window_into(FixedWindows(10), **window_kwargs)
     .combine_per_key(sum)
     .collect("counts"))
    return p


def pane_set(result, label="counts"):
    """Order-independent view: fissioned replicas drain their own keys,
    so panes within one watermark firing may interleave differently."""
    return sorted((wv.value, wv.timestamp, wv.windows, wv.pane.timing,
                   wv.pane.index) for wv in result[label])


class TestFissionedGBK:
    def test_panes_match_serial(self):
        serial = counting_pipeline().run()
        fissioned = counting_pipeline().run(parallelism=3)
        assert pane_set(fissioned) == pane_set(serial)
        assert fissioned.dropped_late == serial.dropped_late
        assert dict(fissioned.panes_by_timing) \
            == dict(serial.panes_by_timing)

    def test_parallelism_one_is_identity(self):
        serial = counting_pipeline().run()
        same = counting_pipeline().run(parallelism=1)
        assert [wv.value for wv in same["counts"]] \
            == [wv.value for wv in serial["counts"]]

    def test_early_firings_match(self):
        kwargs = dict(
            trigger=Repeatedly(AfterCount(2)),
            accumulation=AccumulationMode.ACCUMULATING)
        serial = counting_pipeline(**kwargs).run()
        fissioned = counting_pipeline(**kwargs).run(parallelism=4)
        assert pane_set(fissioned) == pane_set(serial)

    def test_sessions_merge_within_replica(self):
        def sessions_pipeline():
            p = Pipeline()
            (p.create([("u1", 1), ("u2", 2), ("u1", 3), ("u1", 11),
                       ("u2", 4), ("u1", 30)])
             .map(lambda v: (v, 1))
             .window_into(Sessions(gap=5))
             .combine_per_key(sum)
             .collect("sessions"))
            return p

        serial = sessions_pipeline().run()
        fissioned = sessions_pipeline().run(parallelism=2)
        assert pane_set(fissioned, "sessions") == pane_set(serial,
                                                           "sessions")

    def test_late_data_dropped_identically(self):
        def late_pipeline():
            p = Pipeline()
            (p.create([("a", 1), ("b", 22), ("a", 2)],  # ("a", 2) is late
                      watermark=BoundedOutOfOrderness(0))
             .map(lambda v: (v, 1))
             .window_into(FixedWindows(10),
                          trigger=AfterWatermark())
             .combine_per_key(sum)
             .collect("out"))
            return p

        serial = late_pipeline().run()
        fissioned = late_pipeline().run(parallelism=3)
        assert fissioned.dropped_late == serial.dropped_late == 1
        assert pane_set(fissioned, "out") == pane_set(serial, "out")

    def test_legacy_runner_rejects_parallelism(self):
        with pytest.raises(PlanError):
            counting_pipeline().run(kernel=False, parallelism=2)

    def test_non_pair_input_rejected(self):
        p = Pipeline()
        (p.create([(1, 0)])
         .window_into(FixedWindows(10))
         .group_by_key()
         .collect("out"))
        with pytest.raises(PlanError):
            p.run(parallelism=2)
