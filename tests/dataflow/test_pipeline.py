"""Tests for the Dataflow model pipeline and direct runner."""

import pytest

from repro.core import BoundedOutOfOrderness, PlanError
from repro.dataflow import (
    AccumulationMode,
    AfterCount,
    AfterProcessingTime,
    AfterWatermark,
    FixedWindows,
    GlobalWindows,
    Never,
    PaneTiming,
    Pipeline,
    Repeatedly,
    Sessions,
    SlidingWindows,
)


def keyed(value):
    return (value, 1)


class TestParDo:
    def test_map_filter_flatmap(self):
        p = Pipeline()
        (p.create([(1, 0), (2, 1), (3, 2)])
         .map(lambda v: v * 10)
         .filter(lambda v: v > 10)
         .flat_map(lambda v: [v, v + 1])
         .collect("out"))
        result = p.run()
        assert result.values("out") == [20, 21, 30, 31]

    def test_pardo_preserves_timestamps(self):
        p = Pipeline()
        p.create([("x", 7)]).map(str.upper).collect("out")
        result = p.run()
        assert result["out"][0].timestamp == 7


class TestFixedWindows:
    def test_counts_per_window(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 5), ("a", 12), ("b", 13)])
         .map(keyed)
         .window_into(FixedWindows(10))
         .combine_per_key(sum)
         .collect("counts"))
        result = p.run()
        out = {(wv.value[0], wv.windows[0].start): wv.value[1]
               for wv in result["counts"]}
        assert out == {("a", 0): 2, ("a", 10): 1, ("b", 10): 1}

    def test_on_time_panes_fire_at_watermark(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 15)])  # watermark passes 10 on the 2nd
         .map(keyed)
         .window_into(FixedWindows(10))
         .group_by_key()
         .collect("out"))
        result = p.run()
        first = result["out"][0]
        assert first.pane.timing is PaneTiming.ON_TIME
        assert first.windows[0].start == 0

    def test_output_timestamp_is_window_max(self):
        p = Pipeline()
        (p.create([("a", 3)]).map(keyed)
         .window_into(FixedWindows(10)).group_by_key().collect("out"))
        result = p.run()
        assert result["out"][0].timestamp == 9


class TestSlidingWindows:
    def test_element_lands_in_overlapping_windows(self):
        p = Pipeline()
        (p.create([("a", 7)]).map(keyed)
         .window_into(SlidingWindows(10, 5))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        starts = sorted(wv.windows[0].start for wv in result["out"])
        assert starts == [0, 5]


class TestSessions:
    def test_nearby_elements_merge(self):
        p = Pipeline()
        (p.create([("a", 0), ("a", 3), ("a", 20)]).map(keyed)
         .window_into(Sessions(gap=5))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        sessions = sorted((wv.windows[0].start, wv.windows[0].end,
                           wv.value[1]) for wv in result["out"])
        assert sessions == [(0, 8, 2), (20, 25, 1)]

    def test_sessions_are_per_key(self):
        p = Pipeline()
        (p.create([("a", 0), ("b", 2)]).map(keyed)
         .window_into(Sessions(gap=5))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        assert len(result["out"]) == 2

    def test_bridging_element_merges_two_sessions(self):
        p = Pipeline()
        # t=5 arrives out of order and bridges the sessions at 0 and 10;
        # the watermark slack keeps it from being declared late.
        (p.create([("a", 0), ("a", 10), ("a", 5)],
                  watermark=BoundedOutOfOrderness(bound=20))
         .map(keyed)
         .window_into(Sessions(gap=6))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        (only,) = result["out"]
        assert only.value == ("a", 3)
        assert (only.windows[0].start, only.windows[0].end) == (0, 16)


class TestTriggers:
    def test_after_count_fires_early_panes(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 2), ("a", 3), ("a", 4)])
         .map(keyed)
         .window_into(FixedWindows(100),
                      trigger=AfterWatermark(early=Repeatedly(
                          AfterCount(2))))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        timings = [wv.pane.timing for wv in result["out"]]
        assert timings.count(PaneTiming.EARLY) == 2
        assert result.panes_by_timing[PaneTiming.EARLY] == 2

    def test_discarding_vs_accumulating(self):
        def build(mode):
            p = Pipeline()
            (p.create([("a", 1), ("a", 2), ("a", 3)])
             .map(keyed)
             .window_into(FixedWindows(100),
                          trigger=AfterWatermark(early=Repeatedly(
                              AfterCount(1))),
                          accumulation=mode)
             .combine_per_key(sum).collect("out"))
            return [wv.value[1] for wv in p.run()["out"]]

        # Discarding: each early pane carries only its own element, and
        # the final on-time pane is empty so it never fires.
        assert build(AccumulationMode.DISCARDING) == [1, 1, 1]
        # Accumulating: early panes refine (1, 2, 3) and the on-time pane
        # re-emits the full accumulation — Beam's refinement semantics.
        assert build(AccumulationMode.ACCUMULATING) == [1, 2, 3, 3]

    def test_after_processing_time(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 2), ("a", 3), ("a", 4)])
         .map(keyed)
         .window_into(GlobalWindows(),
                      trigger=Repeatedly(AfterProcessingTime(2)))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        # First pane fires two arrivals after the first element.
        assert result["out"][0].value == ("a", 3)

    def test_never_trigger_fires_only_at_end(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 50)])
         .map(keyed)
         .window_into(FixedWindows(10), trigger=Never())
         .combine_per_key(sum).collect("out"))
        result = p.run()
        # Nothing fires mid-stream; everything appears at finalisation.
        assert sorted(wv.value for wv in result["out"]) == \
            [("a", 1), ("a", 1)]

    def test_pane_indexes_increase(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 2), ("a", 3)])
         .map(keyed)
         .window_into(GlobalWindows(),
                      trigger=Repeatedly(AfterCount(1)))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        assert [wv.pane.index for wv in result["out"]] == [0, 1, 2]


class TestOutOfOrderAndLateness:
    def test_late_data_dropped_without_allowed_lateness(self):
        p = Pipeline()
        # Arrival order: 1, 25 (watermark -> 24), then 2 is late for [0,10).
        (p.create([("a", 1), ("a", 25), ("a", 2)])
         .map(keyed)
         .window_into(FixedWindows(10))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        assert result.dropped_late == 1
        window0 = [wv for wv in result["out"] if wv.windows[0].start == 0]
        assert window0[0].value == ("a", 1)

    def test_allowed_lateness_admits_late_pane(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 25), ("a", 2)])
         .map(keyed)
         .window_into(FixedWindows(10), allowed_lateness=100)
         .combine_per_key(sum).collect("out"))
        result = p.run()
        assert result.dropped_late == 0
        window0 = [wv for wv in result["out"] if wv.windows[0].start == 0]
        assert [wv.pane.timing for wv in window0] == \
            [PaneTiming.ON_TIME, PaneTiming.LATE]

    def test_bounded_out_of_orderness_keeps_stragglers_on_time(self):
        p = Pipeline()
        (p.create([("a", 1), ("a", 12), ("a", 8)],
                  watermark=BoundedOutOfOrderness(bound=5))
         .map(keyed)
         .window_into(FixedWindows(10))
         .combine_per_key(sum).collect("out"))
        result = p.run()
        window0 = [wv for wv in result["out"] if wv.windows[0].start == 0]
        # With slack 5 the watermark held back, so t=8 made the on-time pane.
        assert window0[0].value == ("a", 2)
        assert result.dropped_late == 0


class TestValidation:
    def test_gbk_requires_pairs(self):
        p = Pipeline()
        p.create([(1, 0)]).group_by_key().collect("out")
        with pytest.raises(PlanError, match="key, value"):
            p.run()

    def test_multiple_outputs(self):
        p = Pipeline()
        source = p.create([(1, 0), (2, 1)])
        source.map(lambda v: v + 1).collect("plus")
        source.map(lambda v: v * 2).collect("times")
        result = p.run()
        assert result.values("plus") == [2, 3]
        assert result.values("times") == [2, 4]
