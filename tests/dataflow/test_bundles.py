"""Bundle execution on the kernel runner (Dataflow micro-batching).

Bundles group consecutive same-channel elements into one ``push_batch``;
a bundle always flushes before the watermark advances, so pane timing,
membership and accumulation are identical to per-element execution —
except under processing-time triggers, whose firing point depends on the
arrival index, so the runner clamps the bundle size back to 1.
"""

import pytest

from repro.core import PlanError
from repro.dataflow import (
    AfterAny,
    AfterCount,
    AfterProcessingTime,
    AfterWatermark,
    FixedWindows,
    Never,
    Pipeline,
    Repeatedly,
)
from repro.dataflow.pipeline import _arrival_sensitive, _KernelRunner

ELEMS = [(f"k{i % 3}", t) for i, t in enumerate(
    [1, 2, 3, 8, 9, 11, 12, 15, 18, 22, 23, 29, 31, 35])]


def panes(trigger=None, bundle_size=1, parallelism=1):
    p = Pipeline()
    (p.create(ELEMS)
     .map(lambda v: (v, 1))
     .window_into(FixedWindows(10), **({"trigger": trigger} if trigger else {}))
     .group_by_key()
     .collect("out"))
    result = p.run(bundle_size=bundle_size, parallelism=parallelism)
    return sorted(
        (wv.value, wv.timestamp, tuple(wv.windows), wv.pane.timing,
         wv.pane.index)
        for wv in result["out"])


class TestBundleParity:
    @pytest.mark.parametrize("size", [2, 4, 16, 100])
    def test_default_trigger_panes_match_per_element(self, size):
        assert panes(bundle_size=size) == panes(bundle_size=1)

    @pytest.mark.parametrize("size", [3, 8])
    def test_aftercount_trigger_panes_match(self, size):
        trig = Repeatedly(AfterCount(2))
        assert panes(trig, bundle_size=size) == panes(trig, bundle_size=1)

    def test_early_firing_watermark_trigger_matches(self):
        trig = AfterWatermark(early=AfterCount(1))
        assert panes(trig, bundle_size=8) == panes(trig, bundle_size=1)

    def test_never_trigger_matches(self):
        assert panes(Never(), bundle_size=4) == panes(Never(), bundle_size=1)

    def test_bundles_compose_with_fission(self):
        assert panes(bundle_size=8, parallelism=2) == panes(bundle_size=1)


class TestArrivalSensitivity:
    def test_processing_time_trigger_clamps_bundles(self):
        p = Pipeline()
        (p.create(ELEMS).map(lambda v: (v, 1))
         .window_into(FixedWindows(10),
                      trigger=Repeatedly(AfterProcessingTime(5)))
         .group_by_key().collect("out"))
        runner = _KernelRunner(p, bundle_size=16)
        assert runner.bundle_size == 1

    def test_watermark_trigger_keeps_bundles(self):
        p = Pipeline()
        (p.create(ELEMS).map(lambda v: (v, 1))
         .window_into(FixedWindows(10), trigger=AfterWatermark())
         .group_by_key().collect("out"))
        assert _KernelRunner(p, bundle_size=16).bundle_size == 16

    def test_detection_recurses_through_composites(self):
        assert _arrival_sensitive(AfterProcessingTime(5))
        assert _arrival_sensitive(Repeatedly(AfterProcessingTime(5)))
        assert _arrival_sensitive(
            AfterAny(AfterCount(3), AfterProcessingTime(5)))
        assert _arrival_sensitive(
            AfterWatermark(early=AfterProcessingTime(5)))
        assert _arrival_sensitive(
            AfterWatermark(late=AfterProcessingTime(5)))
        assert not _arrival_sensitive(AfterWatermark(early=AfterCount(2)))
        assert not _arrival_sensitive(Repeatedly(AfterCount(2)))

    def test_clamped_run_still_matches_per_element(self):
        trig = Repeatedly(AfterProcessingTime(5))
        assert panes(trig, bundle_size=16) == panes(trig, bundle_size=1)


class TestRunnerGuards:
    def test_legacy_runner_rejects_bundles(self):
        p = Pipeline()
        p.create([("a", 1)]).collect("out")
        with pytest.raises(PlanError):
            p.run(kernel=False, bundle_size=4)

    def test_bundle_size_one_is_the_default(self):
        p = Pipeline()
        p.create([("a", 1)]).map(str.upper).collect("out")
        assert p.run(bundle_size=1).values("out") == ["A"]
