"""Direct unit tests for the Dataflow window functions."""

import pytest

from repro.core import WindowError
from repro.dataflow import FixedWindows, GlobalWindows, Sessions, SlidingWindows


class TestGlobalWindows:
    def test_single_window_for_everything(self):
        fn = GlobalWindows()
        (w1,) = fn.assign(0)
        (w2,) = fn.assign(10**9)
        assert w1 == w2 == GlobalWindows.WINDOW
        assert not fn.is_merging


class TestFixedWindows:
    def test_assign(self):
        fn = FixedWindows(60)
        (w,) = fn.assign(125)
        assert (w.start, w.end) == (120, 180)

    def test_offset(self):
        fn = FixedWindows(60, offset=15)
        (w,) = fn.assign(20)
        assert (w.start, w.end) == (15, 75)


class TestSlidingWindows:
    def test_overlap_count(self):
        fn = SlidingWindows(size=30, period=10)
        windows = fn.assign(35)
        assert len(windows) == 3
        assert all(35 in w for w in windows)


class TestSessions:
    def test_merge_delegates(self):
        fn = Sessions(gap=10)
        assert fn.is_merging
        merged = fn.merge(fn.assign(0) + fn.assign(5))
        assert len(merged) == 1
        assert (merged[0].start, merged[0].end) == (0, 15)

    def test_invalid_gap(self):
        with pytest.raises(WindowError):
            Sessions(gap=0)


class TestGauge:
    def test_running_stats(self):
        from repro.dsms import Gauge
        gauge = Gauge()
        for value in (1.0, 3.0, 2.0):
            gauge.observe(value)
        assert gauge.count == 3
        assert gauge.mean == 2.0
        assert gauge.max == 3.0

    def test_empty_mean_is_zero(self):
        from repro.dsms import Gauge
        assert Gauge().mean == 0.0
