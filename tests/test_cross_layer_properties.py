"""Property-based cross-layer equivalence (the Figure 4 claim, fuzzed).

Random keyed workloads through three independent implementations of
windowed counting — the dataflow pipeline, the DSL on the actor runtime,
and the core reference operators — must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Bag,
    Record,
    Schema,
    Stream,
    TumblingWindow,
    stream_to_relation,
)
from repro.core.operators import AggregateKind, AggregateSpec, aggregate
from repro.dataflow import FixedWindows, Pipeline
from repro.dsl import CountAggregate, StreamEnvironment

WINDOW = 10
SCHEMA = Schema(["key"])

workload = st.lists(st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=59)), min_size=0, max_size=30)


def counts_via_dataflow(pairs):
    p = Pipeline()
    (p.create([(key, t) for key, t in pairs])
     .map(lambda key: (key, 1))
     .window_into(FixedWindows(WINDOW))
     .combine_per_key(sum)
     .collect("out"))
    result = p.run()
    return {(wv.value[0], wv.windows[0].start): wv.value[1]
            for wv in result["out"]}


def counts_via_dsl(pairs):
    env = StreamEnvironment(parallelism=2)
    (env.from_collection([(key, t) for key, t in pairs])
     .key_by(lambda key: key)
     .window(TumblingWindow(WINDOW))
     .aggregate(CountAggregate())
     .sink("out"))
    result = env.execute()
    return {(key, window.start): count
            for key, count, window in result.values("out")}


def counts_via_core_reference(pairs):
    """Ground truth: tumbling window contents aggregated pointwise."""
    out = {}
    for key, t in pairs:
        window_start = (t // WINDOW) * WINDOW
        out[(key, window_start)] = out.get((key, window_start), 0) + 1
    return out


@settings(max_examples=60, deadline=None)
@given(pairs=workload)
def test_property_windowed_counts_agree_across_layers(pairs):
    # Event-time order for the sources (arrival order == event order;
    # out-of-orderness is exercised separately in C5).
    pairs = sorted(pairs, key=lambda kv: kv[1])
    expected = counts_via_core_reference(pairs)
    assert counts_via_dataflow(pairs) == expected
    assert counts_via_dsl(pairs) == expected


@settings(max_examples=40, deadline=None)
@given(pairs=workload)
def test_property_core_s2r_matches_truth(pairs):
    """The reference S2R + aggregate equals first-principles counting at
    every window close."""
    pairs = sorted(pairs, key=lambda kv: kv[1])
    stream = Stream.of_records(
        SCHEMA, [({"key": key}, t) for key, t in pairs])
    relation = stream_to_relation(stream, TumblingWindow(WINDOW))
    counted = aggregate(relation, ["key"], [
        AggregateSpec(AggregateKind.COUNT, None, "n")])
    expected = counts_via_core_reference(pairs)
    for (key, window_start), n in expected.items():
        close = window_start + WINDOW - 1
        rows = {r["key"]: r["n"] for r in counted.at(close)}
        assert rows.get(key) == n
