"""State-backend conformance: dict and LSM backends are interchangeable.

Any stateful kernel operator must produce identical results regardless of
the backend behind ``ctx.state_factory``, and LSM-backed state must
survive a checkpoint/restore round-trip through the runtime's
aligned-barrier recovery.
"""

import pytest

from repro.dsl.operators import RunningReduceOperator
from repro.exec import (
    DictStateBackend,
    LSMStateBackend,
    Operator,
    Plan,
    StateBackend,
)
from repro.runtime import (
    CollectSinkOperator,
    Element,
    FailOnceOperator,
    HashPartitioner,
    JobGraph,
    JobRunner,
    KeyByOperator,
)

BACKENDS = [DictStateBackend, LSMStateBackend]


@pytest.mark.parametrize("factory", BACKENDS)
class TestBackendSurface:
    def test_get_put_delete_items(self, factory):
        backend = factory()
        assert backend.get("k") is None
        assert backend.get("k", 7) == 7
        backend.put("k", 1)
        backend.put("j", 2)
        assert backend.get("k") == 1
        assert sorted(backend.items()) == [("j", 2), ("k", 1)]
        backend.delete("k")
        assert backend.get("k") is None
        backend.delete("k")  # idempotent

    def test_snapshot_restore_round_trip(self, factory):
        backend = factory()
        for key, value in [("a", 1), ("b", [2, 3]), ("c", {"d": 4})]:
            backend.put(key, value)
        state = backend.snapshot()
        fresh = factory()
        fresh.restore(state)
        assert sorted(fresh.items(), key=repr) == \
            sorted(backend.items(), key=repr)

    def test_put_many_get_many_round_trip(self, factory):
        backend = factory()
        pairs = [(f"k{i}", i * i) for i in range(40)]
        backend.put_many(pairs)
        assert backend.get_many([k for k, _ in pairs]) == \
            [v for _, v in pairs]
        assert backend.get_many(["missing"], default=-1) == [-1]
        assert sorted(backend.items()) == sorted(pairs)

    def test_put_many_later_pairs_win(self, factory):
        backend = factory()
        backend.put_many([("k", 1), ("k", 2), ("j", 3), ("k", 4)])
        assert backend.get("k") == 4
        assert backend.get("j") == 3

    def test_put_many_equals_put_loop(self, factory):
        bulk, loop = factory(), factory()
        pairs = [(f"k{i % 7}", i) for i in range(30)]
        bulk.put_many(pairs)
        for key, value in pairs:
            loop.put(key, value)
        assert sorted(bulk.items()) == sorted(loop.items())

    def test_estimates_exact_after_batched_mutation(self, factory):
        backend = factory()
        backend.put_many((f"k{i}", "v" * 8) for i in range(300))
        backend.put_many([("k0", "w"), ("k1", "w")])  # overwrites, not adds
        assert backend.estimated_entries() == 300
        for key in ("k5", "k6", "k7"):
            backend.delete(key)
        assert backend.estimated_entries() == 297
        # The byte estimate must see the batched entries: sampling scales
        # the mean entry repr by the exact entry count.
        assert backend.estimated_bytes() > 0
        empty = factory()
        assert empty.estimated_entries() == 0
        assert empty.estimated_bytes() == 0


class CountPerKey(Operator):
    """Minimal stateful kernel operator using the context's backend."""

    def open(self, ctx):
        super().open(ctx)
        self.state = ctx.new_state()

    def process_element(self, value, input_index=0):
        key, _ = value
        count = self.state.get(key, 0) + 1
        self.state.put(key, count)
        self.emit((key, count))

    def snapshot(self):
        return self.state.snapshot()

    def restore(self, state):
        self.state.restore(state)


class Collect(Operator):
    def __init__(self):
        self.out = []

    def process_element(self, value, input_index=0):
        self.out.append(value)


EVENTS = [("a", 1), ("b", 1), ("a", 1), ("c", 1), ("a", 1), ("b", 1)]


def run_counts(factory):
    plan = Plan()
    plan.add_source("s")
    plan.add_operator("count", CountPerKey(), ["s"])
    sink = Collect()
    plan.add_operator("sink", sink, ["count"])
    plan.open(state_factory=factory)
    for event in EVENTS:
        plan.push("s", event)
    return sink.out, plan


class TestOperatorConformance:
    def test_kernel_operator_identical_across_backends(self):
        dict_out, _ = run_counts(DictStateBackend)
        lsm_out, _ = run_counts(LSMStateBackend)
        assert dict_out == lsm_out
        assert dict_out[-1] == ("b", 2)

    def test_plan_snapshot_restore_across_backends(self):
        _, source_plan = run_counts(LSMStateBackend)
        state = source_plan.snapshot()
        plan = Plan()
        plan.add_source("s")
        plan.add_operator("count", CountPerKey(), ["s"])
        sink = Collect()
        plan.add_operator("sink", sink, ["count"])
        plan.open(state_factory=DictStateBackend)  # restore crosses backends
        plan.restore(state)
        plan.push("s", ("a", 1))
        assert sink.out == [("a", 4)]

    def test_dsl_stateful_operator_identical_across_backends(self):
        def run(factory):
            plan = Plan()
            plan.add_source("s")
            plan.add_operator(
                "reduce", RunningReduceOperator(lambda a, b: a + b), ["s"])
            sink = Collect()
            plan.add_operator("sink", sink, ["reduce"])
            plan.open(state_factory=factory)
            for i, (key, value) in enumerate(EVENTS):
                plan.push("s", Element(value, key, i))
            return [element.value for element in sink.out]

        assert run(DictStateBackend) == run(LSMStateBackend)


def reduce_graph(fuse, fail_at=0):
    """Keyed running sum over an LSM backend, with optional fault injection."""
    graph = JobGraph("lsm-recovery")
    records = [(value, None, t) for t, value in
               enumerate([("a", 1), ("b", 2), ("a", 3), ("c", 4),
                          ("a", 5), ("b", 6), ("c", 7), ("a", 8)])]
    graph.add_source("src", [records])
    graph.add_operator("key", lambda: KeyByOperator(lambda v: v[0]), 1)
    if fail_at:
        graph.add_operator("chaos", lambda: FailOnceOperator(fail_at, fuse), 1)
    graph.add_operator(
        "sum", lambda: RunningReduceOperator(
            lambda a, b: (a[0], a[1] + b[1]), LSMStateBackend), 1)
    graph.add_operator("sink", CollectSinkOperator, 1)
    graph.connect("src", "key", HashPartitioner)
    if fail_at:
        graph.connect("key", "chaos", HashPartitioner)
        graph.connect("chaos", "sum", HashPartitioner)
    else:
        graph.connect("key", "sum", HashPartitioner)
    graph.connect("sum", "sink", HashPartitioner)
    graph.mark_sink("sink")
    return graph


class TestLSMCheckpointRecovery:
    def test_lsm_state_survives_checkpoint_restore(self):
        clean = JobRunner(reduce_graph([True]),
                          checkpoint_interval=1).run()
        failed = JobRunner(reduce_graph([False], fail_at=4),
                           checkpoint_interval=1).run()
        assert failed.recoveries == 1
        assert sorted(failed.values("sink")) == \
            sorted(clean.values("sink"))

    def test_lsm_matches_dict_backend_end_to_end(self):
        lsm = JobRunner(reduce_graph([True]), checkpoint_interval=2).run()
        # Same topology with the default dict backend for comparison.
        graph = reduce_graph([True])
        for vertex in graph.vertices.values():
            if vertex.name == "sum":
                vertex.factory = lambda: RunningReduceOperator(
                    lambda a, b: (a[0], a[1] + b[1]), DictStateBackend)
        dict_run = JobRunner(graph, checkpoint_interval=2).run()
        assert sorted(lsm.values("sink")) == sorted(dict_run.values("sink"))


@pytest.mark.parametrize("factory", BACKENDS)
def test_state_backend_is_kernel_surface(factory):
    assert issubclass(factory, StateBackend)
