"""Tests for vectorized micro-batch execution (repro.exec dual-mode).

Covers the columnar :class:`RecordBatch` container, the dual-mode
operator protocol (default ``process_batch`` loops ``process_element``,
so every operator is batch-correct by construction), the vectorized
operators in :mod:`repro.exec.vector`, fused batch chains, the plan's
``push_batch`` entry point (counting + profiling: ``batches_in`` and the
rows-per-batch histogram), and whole-batch routing through a fissioned
Exchange.
"""

import pytest

import repro.obs as obs
from repro.exec import (
    CollectingEmitter,
    Exchange,
    Merge,
    Operator,
    OperatorContext,
    PartitionGate,
    Plan,
    RecordBatch,
    VectorFilter,
    VectorKeyedAggregate,
    VectorMap,
    VectorProject,
    VectorRangeWindow,
    batch_capable,
    fission,
    keyed_count,
    keyed_fold,
    keyed_sum,
)


ROWS = [
    {"k": "a", "v": 1, "t": 0},
    {"k": "b", "v": 2, "t": 0},
    {"k": "a", "v": 3, "t": 1},
    {"k": "c", "v": 4, "t": 2},
    {"k": "a", "v": 5, "t": 3},
]


class AddOne(Operator):
    fusible = True

    def process_element(self, value, input_index=0):
        self.emit(value + 1)


class Sink(Operator):
    def __init__(self):
        self.out = []
        self.batches = 0

    def process_element(self, value, input_index=0):
        self.out.append(value)

    def process_batch(self, batch, input_index=0):
        self.batches += 1
        self.out.extend(batch)


# ---------------------------------------------------------------------------
# RecordBatch
# ---------------------------------------------------------------------------


class TestRecordBatch:
    def test_from_records_round_trips(self):
        batch = RecordBatch.from_records(ROWS)
        assert len(batch) == 5
        assert batch.to_records() == ROWS
        assert list(batch) == ROWS

    def test_from_arrays_and_column_access(self):
        batch = RecordBatch.from_arrays(k=["a", "b"], v=[1, 2])
        assert batch.fields == ("k", "v")
        assert batch.column("v") == [1, 2]
        assert batch[0] == {"k": "a", "v": 1}

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch.from_arrays(k=["a", "b"], v=[1])

    def test_filter_by_mask(self):
        batch = RecordBatch.from_records(ROWS)
        kept = batch.filter([row["v"] % 2 == 1 for row in ROWS])
        assert [row["v"] for row in kept] == [1, 3, 5]

    def test_take_and_slice(self):
        batch = RecordBatch.from_records(ROWS)
        assert [r["v"] for r in batch.take([0, 4])] == [1, 5]
        assert [r["v"] for r in batch.slice(1, 3)] == [2, 3]

    def test_select_shares_columns(self):
        batch = RecordBatch.from_records(ROWS)
        projected = batch.select(("k",))
        assert projected.fields == ("k",)
        # Zero-copy: the retained column is the *same* list object.
        assert projected.columns["k"] is batch.columns["k"]

    def test_with_column_and_map_column(self):
        batch = RecordBatch.from_arrays(v=[1, 2, 3])
        doubled = batch.map_column("v", lambda x: x * 2)
        assert doubled.column("v") == [2, 4, 6]
        tagged = batch.with_column("tag", ["x", "y", "z"])
        assert tagged.fields == ("v", "tag")
        assert batch.fields == ("v",)  # original untouched

    def test_concat(self):
        a = RecordBatch.from_arrays(v=[1, 2])
        b = RecordBatch.from_arrays(v=[3])
        assert a.concat(b).column("v") == [1, 2, 3]
        with pytest.raises(ValueError):
            a.concat(RecordBatch.from_arrays(w=[9]))


# ---------------------------------------------------------------------------
# Dual-mode protocol
# ---------------------------------------------------------------------------


class TestDualModeProtocol:
    def test_default_process_batch_loops_process_element(self):
        op = AddOne()
        op.open(OperatorContext())
        op.process_batch([1, 2, 3])
        assert op.ctx.emitter.drain() == [2, 3, 4]

    def test_batch_capable_detects_overrides(self):
        assert not batch_capable(AddOne())
        assert batch_capable(VectorProject(["k"]))
        assert batch_capable(Sink())

    def test_collecting_emitter_extends_on_emit_batch(self):
        emitter = CollectingEmitter()
        emitter.emit_batch([1, 2])
        emitter.emit(3)
        assert emitter.drain() == [1, 2, 3]

    def test_plain_list_batches_are_accepted(self):
        agg = keyed_sum("k", "v")
        agg.open(OperatorContext())
        agg.process_batch(ROWS)  # a list, not a RecordBatch
        assert agg.groups() == {"a": 9, "b": 2, "c": 4}


# ---------------------------------------------------------------------------
# Vectorized operators: batch path == element path
# ---------------------------------------------------------------------------


def run_both_modes(make_op, batch):
    """Feed the same rows per-element and as one batch; return outputs."""
    per_element = make_op()
    per_element.open(OperatorContext())
    for row in batch:
        per_element.process_element(row)
    batched = make_op()
    batched.open(OperatorContext())
    batched.process_batch(batch)
    return per_element.ctx.emitter.drain(), batched.ctx.emitter.drain()


class TestVectorOperators:
    def test_filter_parity_columnar_and_row(self):
        batch = RecordBatch.from_records(ROWS)
        element, columnar = run_both_modes(
            lambda: VectorFilter(lambda r: r["v"] > 2,
                                 column="v", compare=lambda v: v > 2),
            batch)
        assert element == columnar
        assert [r["v"] for r in columnar] == [3, 4, 5]

    def test_filter_all_pass_forwards_batch_unchanged(self):
        class BatchSpy(CollectingEmitter):
            def __init__(self):
                super().__init__()
                self.batches = []

            def emit_batch(self, batch):
                self.batches.append(batch)
                super().emit_batch(batch)

        batch = RecordBatch.from_records(ROWS)
        spy = BatchSpy()
        op = VectorFilter(lambda r: True, column="v",
                          compare=lambda v: v >= 0)
        op.open(OperatorContext(emitter=spy))
        op.process_batch(batch)
        [forwarded] = spy.batches
        assert forwarded is batch  # whole-batch passthrough, no copy

    def test_project_parity(self):
        batch = RecordBatch.from_records(ROWS)
        element, columnar = run_both_modes(
            lambda: VectorProject(["k"]), batch)
        assert element == [{"k": row["k"]} for row in ROWS]
        assert columnar == element

    def test_map_parity_with_batch_fn(self):
        batch = RecordBatch.from_arrays(v=[1, 2, 3])
        op = VectorMap(lambda r: r["v"] * 10,
                       batch_fn=lambda b: [v * 10 for v in b.column("v")])
        op.open(OperatorContext())
        op.process_batch(batch)
        assert op.ctx.emitter.drain() == [10, 20, 30]

    @pytest.mark.parametrize("factory", [
        lambda: keyed_count("k"),
        lambda: keyed_sum("k", "v"),
        lambda: keyed_fold("k", 0, lambda acc, row: acc + row["v"] % 2),
    ])
    def test_keyed_aggregate_parity(self, factory):
        batch = RecordBatch.from_records(ROWS)
        element_op, batch_op = factory(), factory()
        element_op.open(OperatorContext())
        batch_op.open(OperatorContext())
        for row in ROWS:
            element_op.process_element(row)
        batch_op.process_batch(batch)
        assert element_op.groups() == batch_op.groups()

    def test_keyed_aggregate_emits_sorted_groups_on_close(self):
        agg = keyed_count("k")
        agg.open(OperatorContext())
        agg.process_batch(RecordBatch.from_records(ROWS))
        agg.close()
        assert agg.ctx.emitter.drain() == [("a", 3), ("b", 1), ("c", 1)]

    def test_keyed_aggregate_snapshot_restore(self):
        agg = keyed_sum("k", "v")
        agg.open(OperatorContext())
        agg.process_batch(RecordBatch.from_records(ROWS))
        state = agg.snapshot()
        fresh = keyed_sum("k", "v")
        fresh.open(OperatorContext())
        fresh.restore(state)
        assert fresh.groups() == agg.groups()

    def test_range_window_batch_insert_and_expiry(self):
        window = VectorRangeWindow(size=2, time_column="t")
        window.open(OperatorContext())
        window.process_batch(RecordBatch.from_records(ROWS))
        assert window.contents() == ROWS
        window.process_watermark(3)  # expire t <= 1
        assert [r["t"] for r in window.contents()] == [2, 3]

    def test_range_window_parity_with_element_path(self):
        batched = VectorRangeWindow(size=2, time_column="t")
        batched.open(OperatorContext())
        batched.process_batch(RecordBatch.from_records(ROWS))
        element = VectorRangeWindow(size=2, time_column="t")
        element.open(OperatorContext())
        for row in ROWS:
            element.process_element(row)
        for window in (batched, element):
            window.process_watermark(4)
        assert batched.contents() == element.contents()
        assert batched.snapshot() == element.snapshot()

    def test_range_window_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            VectorRangeWindow(size=0)


# ---------------------------------------------------------------------------
# Plan.push_batch + fused chains
# ---------------------------------------------------------------------------


def fused_chain_plan():
    plan = Plan()
    plan.add_source("s")
    agg = keyed_count("k")
    plan.add_operator("filter", VectorFilter(
        lambda r: r["v"] > 1, column="v", compare=lambda v: v > 1), ["s"])
    plan.add_operator("project", VectorProject(["k"]), ["filter"])
    plan.add_operator("agg", agg, ["project"])
    fusions = plan.fuse()
    return plan, agg, fusions


class TestPushBatch:
    def test_fused_chain_batch_vs_element_parity(self):
        batch = RecordBatch.from_records(ROWS)
        plan_b, agg_b, fusions = fused_chain_plan()
        assert fusions > 0
        plan_b.open()
        plan_b.push_batch("s", batch)
        plan_e, agg_e, _ = fused_chain_plan()
        plan_e.open()
        for row in ROWS:
            plan_e.push("s", row)
        assert agg_b.groups() == agg_e.groups() == {"a": 2, "b": 1, "c": 1}

    def test_empty_batch_is_a_noop(self):
        plan, agg, _ = fused_chain_plan()
        plan.open()
        plan.push_batch("s", [])
        plan.push_batch("s", RecordBatch.from_records([]))
        assert agg.groups() == {}

    def test_push_batch_counts_elements(self):
        plan = Plan()
        plan.add_source("s")
        sink = Sink()
        plan.add_operator("sink", sink, ["s"])
        plan.open(count_elements=True)
        plan.push_batch("s", [1, 2, 3])
        assert sink.out == [1, 2, 3]
        assert sink.batches == 1
        registry = obs.get_registry()
        counts = registry.children("exec.operator.records_in")
        assert sum(c.value for c in counts) == 3

    def test_push_batch_default_loop_for_plain_operators(self):
        plan = Plan()
        plan.add_source("s")
        plan.add_operator("inc", AddOne(), ["s"])
        sink = Sink()
        plan.add_operator("sink", sink, ["inc"])
        plan.open()
        plan.push_batch("s", [1, 2, 3])
        # AddOne has no batch kernel: the default loop re-batches through
        # the emitter, so the sink still sees every element.
        assert sorted(sink.out) == [2, 3, 4]

    def test_profiling_records_batches_and_rows(self):
        obs.enable(profile=True, sample_every=1)
        plan = Plan()
        plan.add_source("s")
        sink = Sink()
        plan.add_operator("sink", sink, ["s"])
        plan.open()
        plan.push_batch("s", [1, 2, 3])
        plan.push_batch("s", [4])
        profile = plan._profiler.profiles["sink"]
        assert profile.records_in == 4
        assert profile.batches_in == 2
        # Rows-per-batch histogram buckets to powers of two: 3 -> 4, 1 -> 1.
        assert profile.batch_rows == {4: 1, 1: 1}
        assert profile.as_dict()["rows_per_batch"] == {1: 1, 4: 1}

    def test_watermarks_still_flow_after_batches(self):
        window = VectorRangeWindow(size=1, time_column="t")
        plan = Plan()
        plan.add_source("s")
        plan.add_operator("win", window, ["s"])
        plan.open()
        plan.push_batch("s", RecordBatch.from_records(ROWS))
        plan.advance_watermark("s", 3)  # expire t <= 2
        assert [r["t"] for r in window.contents()] == [3]


# ---------------------------------------------------------------------------
# Exchange: whole-batch routing (satellite)
# ---------------------------------------------------------------------------


class KeyedSum(Operator):
    def __init__(self):
        self.totals = {}

    def process_element(self, value, input_index=0):
        key, amount = value
        self.totals[key] = self.totals.get(key, 0) + amount


class TestExchangeBatches:
    def test_fissioned_plan_batch_vs_element_parity(self):
        def build():
            plan = Plan()
            plan.add_source("s")
            replicas = []

            def make(_index):
                op = KeyedSum()
                replicas.append(op)
                return op

            fission(plan, "s", "sum", 3, lambda kv: kv[0], make)
            plan.open()
            return plan, replicas

        values = [(f"k{i % 5}", i) for i in range(20)]
        plan_b, reps_b = build()
        plan_b.push_batch("s", values)
        plan_e, reps_e = build()
        for value in values:
            plan_e.push("s", value)
        merge = {}
        for rep in reps_b:
            merge.update(rep.totals)
        merge_e = {}
        for rep in reps_e:
            merge_e.update(rep.totals)
        assert merge == merge_e
        # Batching must not collapse fission: >1 replica saw data.
        assert sum(1 for rep in reps_b if rep.totals) > 1

    def test_exchange_routes_slices_not_elements(self):
        exchange = Exchange(parallelism=2, key_fn=lambda kv: kv[0])
        sink_emitter = CollectingEmitter()
        exchange.open(OperatorContext(emitter=sink_emitter))
        exchange.process_batch([("a", 1), ("b", 2), ("a", 3)])
        # Stamped (partition, value) tuples, grouped per partition.
        stamped = sink_emitter.drain()
        assert sorted(v for _, v in stamped) == [("a", 1), ("a", 3),
                                                 ("b", 2)]
        by_partition = {}
        for stamp, value in stamped:
            by_partition.setdefault(stamp, []).append(value[0])
        # Within one partition's slice every copy of a key lands together.
        for keys in by_partition.values():
            assert keys == sorted(keys)

    def test_partition_gate_admits_own_slice(self):
        gate = PartitionGate(index=1)
        gate.open(OperatorContext())
        gate.process_batch([(0, "x"), (1, "y"), (1, "z"), (0, "w")])
        assert gate.ctx.emitter.drain() == ["y", "z"]

    def test_merge_passes_batches_through(self):
        merge = Merge()
        merge.open(OperatorContext())
        merge.process_batch([1, 2], input_index=1)
        assert merge.ctx.emitter.drain() == [1, 2]
