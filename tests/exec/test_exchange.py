"""Tests for fission inside a kernel plan (Exchange / PartitionGate /
Merge) — routing, key ownership, watermark min-combine, and parity with
the unfissioned plan."""

import pytest

from repro.exec import (
    CollectingEmitter,
    Exchange,
    Merge,
    Operator,
    OperatorContext,
    PartitionGate,
    Plan,
    fission,
)
from repro.runtime import BroadcastPartitioner, default_hash
from repro.runtime.partitioning import (
    HashPartitioner,
    RebalancePartitioner,
)


class KeyedSum(Operator):
    """Per-key running sum, flushed as (key, total) at every watermark."""

    def __init__(self):
        self.totals = {}

    def process_element(self, value, input_index=0):
        key, amount = value
        self.totals[key] = self.totals.get(key, 0) + amount

    def process_watermark(self, watermark, input_index=0):
        for key, total in sorted(self.totals.items()):
            self.emit((key, total))


class Sink(Operator):
    def __init__(self):
        self.out = []
        self.marks = []

    def process_element(self, value, input_index=0):
        self.out.append(value)

    def process_watermark(self, watermark, input_index=0):
        self.marks.append(watermark)


def fissioned_plan(parallelism, partitioner=None):
    plan = Plan()
    plan.add_source("s")
    merged = fission(plan, "s", "sum", parallelism,
                     key_fn=lambda value: value[0],
                     replica_factory=lambda i: KeyedSum(),
                     partitioner=partitioner)
    sink = Sink()
    plan.add_operator("sink", sink, [merged])
    return plan, sink


class TestExchange:
    def test_stamps_elements_with_partition(self):
        exchange = Exchange(4, key_fn=lambda value: value[0])
        exchange.open(OperatorContext(emitter=CollectingEmitter()))
        exchange.process_element(("user-a", 1))
        [(partition, value)] = exchange.ctx.emitter.drain()
        assert partition == default_hash("user-a") % 4
        assert value == ("user-a", 1)

    def test_rejects_nonpositive_parallelism(self):
        with pytest.raises(ValueError):
            Exchange(0, key_fn=lambda value: value)

    def test_gate_admits_only_its_partition(self):
        gate = PartitionGate(2)
        gate.open(OperatorContext(emitter=CollectingEmitter()))
        gate.process_element((1, "no"))
        gate.process_element((2, "yes"))
        gate.process_element((3, "no"))
        assert gate.ctx.emitter.drain() == ["yes"]

    def test_set_parallelism_redirects_subsequent_elements(self):
        exchange = Exchange(4, key_fn=lambda value: value)
        exchange.open(OperatorContext(emitter=CollectingEmitter()))
        exchange.process_element("user-a")
        exchange.set_parallelism(2)
        exchange.process_element("user-a")
        [(before, _), (after, _)] = exchange.ctx.emitter.drain()
        assert before == default_hash("user-a") % 4
        assert after == default_hash("user-a") % 2

    def test_set_parallelism_rejects_nonpositive(self):
        exchange = Exchange(4, key_fn=lambda value: value)
        with pytest.raises(ValueError):
            exchange.set_parallelism(0)
        assert exchange.parallelism == 4


class TestBatchRouting:
    """process_batch must route exactly like the per-element loop for
    every partitioner family — batching is an optimisation, not a
    semantics change."""

    ELEMENTS = [("k%d" % (i % 5), i) for i in range(23)]

    @pytest.mark.parametrize("partitioner", [
        None,  # hash default
        HashPartitioner(),
        BroadcastPartitioner(),
        RebalancePartitioner(),
    ], ids=["default", "hash", "broadcast", "rebalance"])
    def test_process_batch_matches_per_element(self, partitioner):
        def build():
            exchange = Exchange(3, key_fn=lambda value: value[0],
                                partitioner=type(partitioner)()
                                if partitioner is not None else None)
            exchange.open(OperatorContext(emitter=CollectingEmitter()))
            return exchange

        one_by_one = build()
        for element in self.ELEMENTS:
            one_by_one.process_element(element)
        expected = one_by_one.ctx.emitter.drain()

        batched = build()
        batched.process_batch(list(self.ELEMENTS))
        stamped = batched.ctx.emitter.drain()
        assert sorted(map(repr, stamped)) == sorted(map(repr, expected))
        # Within one partition, arrival order is preserved.
        for partition in range(3):
            assert [v for p, v in stamped if p == partition] \
                == [v for p, v in expected if p == partition]

    def test_gate_slices_mixed_stamped_batches(self):
        # Hand-built plans may send heterogeneous stamped batches; the
        # gate must slice out exactly its share, order preserved.
        gate = PartitionGate(1)
        gate.open(OperatorContext(emitter=CollectingEmitter()))
        gate.process_batch([(0, "a"), (1, "b"), (2, "c"), (1, "d"),
                            (0, "e"), (1, "f")])
        assert gate.ctx.emitter.drain() == ["b", "d", "f"]

    def test_gate_emits_nothing_for_foreign_batches(self):
        gate = PartitionGate(1)
        gate.open(OperatorContext(emitter=CollectingEmitter()))
        gate.process_batch([(0, "a"), (2, "b")])
        assert gate.ctx.emitter.drain() == []

    def test_exchange_batches_stay_homogeneous(self):
        exchange = Exchange(4, key_fn=lambda value: value)
        collected: list[list] = []

        class BatchRecorder(CollectingEmitter):
            def emit_batch(self, batch):
                collected.append(list(batch))
                super().emit_batch(batch)

        exchange.open(OperatorContext(emitter=BatchRecorder()))
        exchange.process_batch(list(range(16)))
        assert collected  # went through the batch path
        for batch in collected:
            assert len({partition for partition, _ in batch}) == 1


class TestFission:
    def test_parity_with_unfissioned_plan(self):
        """Splitting a keyed aggregate 3 ways must not change what it
        computes — only who computes it."""
        plain = Plan()
        plain.add_source("s")
        plain.add_operator("sum", KeyedSum(), ["s"])
        plain_sink = Sink()
        plain.add_operator("sink", plain_sink, ["sum"])
        plain.open()
        parallel, parallel_sink = fissioned_plan(3)
        parallel.open()
        events = [(f"k{i % 7}", i) for i in range(40)]
        for event in events:
            plain.push("s", event)
            parallel.push("s", event)
        plain.advance_watermark("s", 10)
        parallel.advance_watermark("s", 10)
        assert sorted(parallel_sink.out) == sorted(plain_sink.out)
        assert parallel_sink.marks == plain_sink.marks == [10]

    def test_replicas_own_disjoint_keys(self):
        plan, _sink = fissioned_plan(4)
        plan.open()
        for key in range(32):
            plan.push("s", (key, 1))
        owned = [set(plan.operator(f"sum!{i}").totals) for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not owned[i] & owned[j]
        assert set().union(*owned) == set(range(32))

    def test_strided_int_keys_reach_every_replica(self):
        """End-to-end regression for the int-passthrough hash bug: keys
        0, 4, 8, … across 4 replicas must not pile onto replica 0."""
        plan, _sink = fissioned_plan(4)
        plan.open()
        for key in range(0, 64, 4):
            plan.push("s", (key, 1))
        for i in range(4):
            assert plan.operator(f"sum!{i}").totals, f"replica {i} starved"

    def test_parallelism_one_is_identity(self):
        plan, sink = fissioned_plan(1)
        plan.open()
        plan.push("s", ("a", 2))
        plan.push("s", ("a", 3))
        plan.advance_watermark("s", 1)
        assert sink.out == [("a", 5)]

    def test_broadcast_partitioner_reaches_all_replicas(self):
        plan, sink = fissioned_plan(2, partitioner=BroadcastPartitioner())
        plan.open()
        plan.push("s", ("a", 1))
        plan.advance_watermark("s", 1)
        assert sink.out == [("a", 1), ("a", 1)]

    def test_fuses_gate_into_fusible_replica(self):
        """The gate→replica edge is a forward edge: when the replica is
        fusible, fusion collapses the gate into it so the per-element cost
        of fission is one tuple unpack, not an extra operator hop."""

        class Double(Operator):
            fusible = True

            def process_element(self, value, input_index=0):
                self.emit((value[0], value[1] * 2))

        plan = Plan()
        plan.add_source("s")
        merged = fission(plan, "s", "dbl", 2,
                         key_fn=lambda value: value[0],
                         replica_factory=lambda i: Double())
        sink = Sink()
        plan.add_operator("sink", sink, [merged])
        assert plan.fuse() == 2  # each gate chains into its replica
        names = plan.node_names()
        assert "dbl.gate0" not in names and "dbl.gate1" not in names
        plan.open()
        plan.push("s", ("a", 3))
        assert sink.out == [("a", 6)]


class TestMergeWatermarks:
    def test_merge_clock_is_min_over_partitions(self):
        """The merged event-time clock must be the minimum across
        partition channels: one slow partition holds everything back."""
        plan = Plan()
        plan.add_source("p0")
        plan.add_source("p1")
        plan.add_source("p2")
        plan.add_operator("merge", Merge(3), ["p0", "p1", "p2"])
        sink = Sink()
        plan.add_operator("sink", sink, ["merge"])
        plan.open()
        plan.advance_watermark("p0", 10)
        plan.advance_watermark("p1", 7)
        assert sink.marks == []  # p2 still at the initial -1
        plan.advance_watermark("p2", 5)
        assert sink.marks == [5]
        plan.advance_watermark("p2", 20)
        assert sink.marks == [5, 7]  # p1 is now the laggard

    def test_merge_passes_elements_through(self):
        plan = Plan()
        plan.add_source("p0")
        plan.add_source("p1")
        plan.add_operator("merge", Merge(2), ["p0", "p1"])
        sink = Sink()
        plan.add_operator("sink", sink, ["merge"])
        plan.open()
        plan.push("p0", "a")
        plan.push("p1", "b")
        assert sink.out == ["a", "b"]
