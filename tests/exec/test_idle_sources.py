"""Regression tests for the watermark-idle-source stall.

Before the kernel, a source that stopped producing held the combined
watermark back forever, stalling every downstream window.  The kernel
gives plans two escape hatches: a declarative per-source ``idle_timeout``
(measured in plan-wide pushes) and the manual ``mark_idle`` /
``advance_watermark`` calls.
"""

from repro.exec import Plan, WatermarkTracker

from tests.exec.test_kernel import Sink


def stalled_plan(**source_kwargs):
    plan = Plan()
    plan.add_source("live")
    plan.add_source("quiet", **source_kwargs)
    sink = Sink()
    plan.add_operator("sink", sink, ["live", "quiet"])
    return plan, sink


class TestIdleTimeout:
    def test_silent_source_stalls_event_time_without_timeout(self):
        plan, sink = stalled_plan()
        plan.open()
        plan.advance_watermark("live", 10)
        for value in range(20):
            plan.push("live", value)
        assert sink.marks == []  # the stall this feature exists to fix

    def test_idle_timeout_releases_the_watermark(self):
        plan, sink = stalled_plan(idle_timeout=3)
        plan.open()
        plan.advance_watermark("live", 10)
        for value in range(5):
            plan.push("live", value)
        # After 3 pushes with no "quiet" activity the source is expelled
        # from the min-combine and event time advances to "live"'s mark.
        assert sink.marks == [10]

    def test_reactivated_source_holds_the_watermark_again(self):
        plan, sink = stalled_plan(idle_timeout=2)
        plan.open()
        plan.advance_watermark("live", 10)
        for value in range(4):
            plan.push("live", value)
        assert sink.marks == [10]
        plan.push("quiet", "x")  # wakes up: holds event time again
        plan.advance_watermark("live", 20)
        assert sink.marks == [10]  # back to waiting on "quiet"
        plan.advance_watermark("quiet", 30)
        assert sink.marks == [10, 20]

    def test_combined_never_regresses_across_idle_cycles(self):
        plan, sink = stalled_plan(idle_timeout=1)
        plan.open()
        plan.advance_watermark("live", 50)
        plan.push("live", 1)
        plan.push("live", 2)
        assert sink.marks == [50]
        plan.push("quiet", "x")
        plan.advance_watermark("quiet", 3)  # behind the released mark
        assert sink.marks == [50]  # monotone: no regression fires


class TestManualEscapeHatch:
    def test_mark_idle_releases_immediately(self):
        plan, sink = stalled_plan()
        plan.open()
        plan.advance_watermark("live", 7)
        plan.mark_idle("quiet")
        assert sink.marks == [7]

    def test_advance_watermark_without_data(self):
        plan, sink = stalled_plan()
        plan.open()
        plan.advance_watermark("live", 7)
        plan.advance_watermark("quiet", 9)  # punctuation, no tuples
        assert sink.marks == [7]


class TestRestoreResetsIdleState:
    """Regression: ``last_seq`` and the idle set survived ``restore``,
    so a rolled-back plan either instantly re-idled live sources or kept
    a crash-time-idle source out of the min-combine forever."""

    def test_restore_reactivates_idle_sources(self):
        plan, sink = stalled_plan(idle_timeout=2)
        plan.open()
        plan.advance_watermark("live", 10)
        for value in range(4):
            plan.push("live", value)
        assert sink.marks == [10]            # quiet expelled
        plan.restore(plan.snapshot())        # in-place rollback
        plan.advance_watermark("live", 20)
        assert sink.marks == [10]            # quiet holds again
        plan.advance_watermark("quiet", 30)
        assert sink.marks == [10, 20]

    def test_restore_resets_the_idle_clock(self):
        plan, sink = stalled_plan(idle_timeout=3)
        plan.open()
        plan.advance_watermark("live", 10)
        plan.push("live", 0)
        plan.push("live", 1)                 # two of three strikes
        plan.restore(plan.snapshot())
        plan.push("live", 2)
        # A stale crash-time clock would have expelled "quiet" here.
        assert sink.marks == []
        plan.push("live", 3)
        plan.push("live", 4)
        plan.push("live", 5)                 # a full fresh timeout elapses
        assert sink.marks == [10]


class TestWatermarkTracker:
    def test_advance_and_min_combine(self):
        tracker = WatermarkTracker(["a", "b"])
        assert tracker.advance("a", 5) is None
        assert tracker.advance("b", 3) == 3
        assert tracker.advance("b", 9) == 5
        assert tracker.combined == 5

    def test_non_increasing_updates_ignored(self):
        tracker = WatermarkTracker(["a"])
        assert tracker.advance("a", 5) == 5
        assert tracker.advance("a", 5) is None
        assert tracker.advance("a", 4) is None

    def test_all_idle_holds_the_watermark(self):
        tracker = WatermarkTracker(["a", "b"])
        tracker.advance("a", 4)
        assert tracker.mark_idle("a") is None
        assert tracker.mark_idle("b") is None  # all idle: hold, don't jump
        assert tracker.combined == -1

    def test_initials_mapping(self):
        tracker = WatermarkTracker(["a", "b"], initials={"a": -7, "b": 2})
        assert tracker.combined == -7
        assert tracker.advance("a", 0) == 0
