"""Tests for the shared push-based execution kernel (repro.exec)."""

import pytest

import repro.obs as obs
from repro.exec import (
    CollectingEmitter,
    FusedOperator,
    Operator,
    OperatorContext,
    Plan,
)


class AddOne(Operator):
    fusible = True

    def process_element(self, value, input_index=0):
        self.emit(value + 1)


class KeepOdd(Operator):
    fusible = True

    def process_element(self, value, input_index=0):
        if value % 2:
            self.emit(value)


class Sink(Operator):
    def __init__(self):
        self.out = []
        self.marks = []
        self.closed = False

    def process_element(self, value, input_index=0):
        self.out.append(value)

    def process_watermark(self, watermark, input_index=0):
        self.marks.append(watermark)

    def close(self):
        self.closed = True


def linear_plan():
    plan = Plan()
    plan.add_source("s")
    plan.add_operator("inc", AddOne(), ["s"])
    plan.add_operator("odd", KeepOdd(), ["inc"])
    sink = Sink()
    plan.add_operator("sink", sink, ["odd"])
    return plan, sink


class TestOperatorBasics:
    def test_collecting_emitter_buffers_and_drains(self):
        op = AddOne()
        op.open(OperatorContext())
        op.process_element(1)
        op.process_element(2)
        assert op.ctx.emitter.drain() == [2, 3]
        assert op.ctx.emitter.drain() == []

    def test_fused_operator_runs_members_in_order(self):
        fused = FusedOperator([AddOne(), KeepOdd()])
        assert fused.fusible
        out = CollectingEmitter()
        fused.open(OperatorContext(emitter=out))
        for value in (1, 2, 3, 4):
            fused.process_element(value)
        assert out.drain() == [3, 5]

    def test_fused_operator_flattens_nested_chains(self):
        fused = FusedOperator([FusedOperator([AddOne(), AddOne()]), KeepOdd()])
        assert len(fused.members) == 3


class TestPlanExecution:
    def test_push_flows_to_completion(self):
        plan, sink = linear_plan()
        plan.open()
        for value in range(5):
            plan.push("s", value)
        assert sink.out == [1, 3, 5]

    def test_fusion_preserves_results(self):
        plain, plain_sink = linear_plan()
        plain.open()
        fused, fused_sink = linear_plan()
        assert fused.fuse() == 1  # inc+odd collapse; sink is not fusible
        assert fused.node_names() == ["odd", "sink"]
        fused.open()
        for value in range(10):
            plain.push("s", value)
            fused.push("s", value)
        assert fused_sink.out == plain_sink.out

    def test_close_cascades_in_plan_order(self):
        plan, sink = linear_plan()
        plan.open()
        plan.close()
        assert sink.closed

    def test_unknown_input_channel_rejected(self):
        plan = Plan()
        plan.add_source("s")
        with pytest.raises(ValueError):
            plan.add_operator("op", AddOne(), ["nope"])

    def test_duplicate_channel_rejected(self):
        plan = Plan()
        plan.add_source("s")
        with pytest.raises(ValueError):
            plan.add_source("s")

    def test_plan_records_unified_operator_counters(self):
        obs.enable()
        plan, _sink = linear_plan()
        plan.open(layer="test")
        for value in range(4):
            plan.push("s", value)
        registry = obs.get_registry()
        records_in = registry.get("exec.operator.records_in",
                                  operator="inc", layer="test")
        assert records_in.value == 4
        records_out = registry.get("exec.operator.records_out",
                                   operator="odd", layer="test")
        assert records_out.value == 2  # 1 and 3 survive the filter


class TestWatermarkPropagation:
    def two_input_plan(self):
        plan = Plan()
        plan.add_source("a")
        plan.add_source("b")
        sink = Sink()
        plan.add_operator("sink", sink, ["a", "b"])
        return plan, sink

    def test_combined_watermark_is_min_over_inputs(self):
        plan, sink = self.two_input_plan()
        plan.open()
        plan.advance_watermark("a", 5)
        assert sink.marks == []  # b still at the initial -1
        plan.advance_watermark("b", 3)
        assert sink.marks == [3]
        plan.advance_watermark("b", 7)
        assert sink.marks == [3, 5]

    def test_watermark_never_regresses(self):
        plan, sink = self.two_input_plan()
        plan.open()
        plan.advance_watermark("a", 5)
        plan.advance_watermark("b", 5)
        plan.advance_watermark("a", 2)  # stale mark: ignored
        assert sink.marks == [5]

    def test_watermark_propagates_through_operators(self):
        plan = Plan()
        plan.add_source("s")
        plan.add_operator("inc", AddOne(), ["s"])
        sink = Sink()
        plan.add_operator("sink", sink, ["inc"])
        plan.open()
        plan.advance_watermark("s", 9)
        assert sink.marks == [9]

    def test_initial_watermark_of_source_is_honoured(self):
        plan = Plan()
        plan.add_source("s", initial_watermark=-12)
        sink = Sink()
        plan.add_operator("sink", sink, ["s"])
        plan.open()
        plan.advance_watermark("s", -11)
        assert sink.marks == [-11]
