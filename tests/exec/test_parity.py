"""Kernel vs legacy parity: each layer's Figure-4 query, byte-identical.

Every API layer can execute either through its legacy machinery or the
shared push-based kernel; these tests pin the two paths to identical
results — values, timestamps, windows and pane metadata included.
"""

from repro.core import BoundedOutOfOrderness, Schema
from repro.core.windows import TumblingWindow
from repro.cql import CQLEngine
from repro.dataflow import (
    AccumulationMode,
    AfterCount,
    AfterWatermark,
    FixedWindows,
    Pipeline,
    Repeatedly,
    Sessions,
)
from repro.dsl import LSMBackend, StreamEnvironment, SumAggregate
from repro.dsms import DSMSEngine
from repro.runtime import JobRunner

from tests.exec.test_state import reduce_graph

OBS = Schema(["id", "room", "temp"])

ROWS = [
    ({"id": 1, "room": "a", "temp": 35}, 0),
    ({"id": 2, "room": "b", "temp": 10}, 1),
    ({"id": 3, "room": "a", "temp": 31}, 3),
    ({"id": 4, "room": "b", "temp": 40}, 5),
    ({"id": 5, "room": "a", "temp": 28}, 6),
    ({"id": 6, "room": "b", "temp": 33}, 9),
]

CQL_QUERIES = [
    "SELECT ISTREAM id FROM Obs [Rows 2] WHERE temp > 30",
    "SELECT room, MAX(temp) FROM Obs [Range 4] GROUP BY room",
    "SELECT RSTREAM id, temp FROM Obs [Now]",
]


def run_cql(text, kernel):
    engine = CQLEngine()
    engine.register_stream("Obs", OBS)
    query = engine.register_query(text, kernel=kernel)
    query.start()
    emitted = []
    for row, t in ROWS:
        emitted.extend(query.push("Obs", row, t))
    emitted.extend(query.advance_to(12))
    snapshots = [(t, sorted(bag, key=repr))
                 for t, bag in query.as_relation().snapshots()]
    return emitted, snapshots


class TestCQLParity:
    def test_every_query_shape_matches_instant_by_instant(self):
        for text in CQL_QUERIES:
            legacy = run_cql(text, kernel=False)
            kernel = run_cql(text, kernel=True)
            assert kernel == legacy, text


class TestDSMSParity:
    def run(self, kernel):
        dsms = DSMSEngine(kernel=kernel)
        dsms.register_stream("Obs", OBS)
        handle = dsms.register_query(
            "hot", "SELECT id FROM Obs [Range 100] WHERE temp > 30")
        for row, t in ROWS:
            dsms.ingest("Obs", row, t)
        dsms.run_until_idle()
        return sorted(r["id"] for r in handle.store_state())

    def test_store_state_matches(self):
        assert self.run(kernel=True) == self.run(kernel=False)


def dataflow_pipeline():
    p = Pipeline()
    (p.create([("a", 1), ("a", 5), ("b", 12), ("a", 13), ("b", 2),
               ("a", 25), ("b", 26)],
              watermark=BoundedOutOfOrderness(3))
     .map(lambda v: (v, 1))
     .window_into(FixedWindows(10))
     .group_by_key()
     .collect("out"))
    return p


def windowed_values(result, label):
    return [(wv.value, wv.timestamp, tuple(wv.windows),
             wv.pane.timing.name, wv.pane.index)
            for wv in result[label]]


class TestDataflowParity:
    def test_fixed_windows_with_late_data(self):
        legacy = dataflow_pipeline().run(kernel=False)
        kernel = dataflow_pipeline().run(kernel=True)
        assert windowed_values(kernel, "out") == \
            windowed_values(legacy, "out")
        assert kernel.dropped_late == legacy.dropped_late
        assert kernel.panes_by_timing == legacy.panes_by_timing

    def test_sessions_with_early_firings(self):
        def build():
            p = Pipeline()
            (p.create([("a", 1), ("a", 3), ("b", 20), ("a", 22), ("a", 24)],
                      watermark=BoundedOutOfOrderness(2))
             .map(lambda v: (v, 1))
             .window_into(Sessions(5),
                          trigger=AfterWatermark(
                              early=Repeatedly(AfterCount(1))),
                          accumulation=AccumulationMode.ACCUMULATING)
             .combine_per_key(sum)
             .collect("out"))
            return p

        assert windowed_values(build().run(kernel=True), "out") == \
            windowed_values(build().run(kernel=False), "out")


def dsl_program(kernel):
    env = StreamEnvironment(parallelism=2, state_backend=LSMBackend,
                            kernel=kernel)
    events = [(("a", 1), 0), (("b", 2), 1), (("a", 3), 4), (("b", 1), 7),
              (("a", 2), 11), (("b", 5), 13)]
    (env.from_collection(events)
        .key_by(lambda v: v[0])
        .window(TumblingWindow(5))
        .aggregate(SumAggregate(lambda v: v[1]))
        .sink("sums"))
    return env.execute().values("sums")


class TestRuntimeParity:
    def test_job_runner_kernel_vs_legacy(self):
        kernel = JobRunner(reduce_graph([True]), kernel=True).run()
        legacy = JobRunner(reduce_graph([True]), kernel=False).run()
        assert kernel.values("sink") == legacy.values("sink")

    def test_job_runner_parity_under_recovery(self):
        kernel = JobRunner(reduce_graph([False], fail_at=4),
                           checkpoint_interval=1, kernel=True).run()
        legacy = JobRunner(reduce_graph([False], fail_at=4),
                           checkpoint_interval=1, kernel=False).run()
        assert kernel.recoveries == legacy.recoveries == 1
        assert kernel.values("sink") == legacy.values("sink")

    def test_dsl_windowed_aggregation_parity(self):
        assert dsl_program(kernel=True) == dsl_program(kernel=False)
