"""Tier-1 bounded differential fuzz: fixed seeds, <60 s, must run clean.

This is the CI face of the harness — 500 CQL cases plus 200 core-window
cases, deterministic under seed 0.  A failure here means two evaluators
disagree on some (query, stream) pair: the report carries the shrunk
counterexample.
"""

import json

import pytest

from repro.difftest import fuzz
from repro.difftest.__main__ import main as difftest_main


@pytest.mark.difftest
def test_bounded_seeded_fuzz_is_clean(tmp_path):
    report = fuzz(seed=0, cases=500, core_cases=200, bench_dir=tmp_path)
    detail = "\n".join(
        [str(d) for _, d in report.failures]
        + [str(d) for _, d in report.core_failures]
        + report.consistency_problems)
    assert report.clean, f"{report.summary()}\n{detail}"
    assert report.elapsed_seconds < 60

    payload = json.loads(
        (tmp_path / "BENCH_difftest_fuzz.json").read_text())
    assert payload["name"] == "difftest_fuzz"
    assert payload["cql_cases"] == 500
    assert payload["core_cases"] == 200
    assert payload["failures"] == 0
    assert "obs" in payload


@pytest.mark.difftest
def test_fuzz_is_deterministic_per_seed():
    first = fuzz(seed=7, cases=40, core_cases=20)
    second = fuzz(seed=7, cases=40, core_cases=20)
    assert first.clean and second.clean
    assert [(c.query, c.streams) for c, _ in first.failures] == \
        [(c.query, c.streams) for c, _ in second.failures]


@pytest.mark.difftest
def test_cli_exit_code_clean(capsys):
    code = difftest_main(["--cases", "30", "--core-cases", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out
