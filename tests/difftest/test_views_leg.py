"""The kernel-views oracle leg: seeded DAG cases vs recompute-from-base."""

import random

import pytest

from repro.views.operators import DeltaAggregateOp
from repro.difftest import emit_view_repro, gen_view_case, run_view_case
from repro.difftest.runner import fuzz

pytestmark = pytest.mark.views


def test_seeded_sweep_is_clean():
    rng = random.Random(0)
    for seed in range(60):
        case = gen_view_case(rng, seed=seed)
        divergence = run_view_case(case)
        assert divergence is None, (seed, divergence)


def test_generation_is_deterministic_per_seed():
    first = gen_view_case(random.Random(42), seed=42)
    second = gen_view_case(random.Random(42), seed=42)
    assert first.views == second.views
    assert first.initial == second.initial
    assert first.events == second.events


def test_cases_exercise_the_interesting_events():
    rng = random.Random(3)
    kinds = set()
    for seed in range(40):
        case = gen_view_case(rng, seed=seed)
        kinds |= {event[0] for event in case.events}
    assert {"apply", "tick", "refresh", "suspend", "resume",
            "crash"} <= kinds


def test_leg_catches_a_broken_aggregate(monkeypatch):
    """Dropping retractions inside the kernel must be reported."""
    original = DeltaAggregateOp.process_batch

    def lossy(self, batch):
        kept = [d for d in batch if d.weight > 0]
        return original(self, kept)

    monkeypatch.setattr(DeltaAggregateOp, "process_batch", lossy)
    rng = random.Random(0)
    caught = 0
    for seed in range(40):
        case = gen_view_case(rng, seed=seed)
        try:
            if run_view_case(case) is not None:
                caught += 1
        except Exception:
            caught += 1  # over-retraction surfacing as an error also counts
    assert caught > 0


def test_fuzz_reports_view_cases(tmp_path):
    report = fuzz(seed=5, cases=0, core_cases=0, view_cases=10,
                  repro_dir=str(tmp_path))
    assert report.view_cases == 10
    assert report.clean
    assert "10 view cases" in report.summary()


def test_emit_view_repro_round_trips(tmp_path):
    case = gen_view_case(random.Random(1), seed=1)
    path = tmp_path / "test_repro_views_0.py"
    emit_view_repro(case, None, str(path))
    text = path.read_text()
    assert repr(case.views) in text
    assert repr(case.events) in text
    scope = {}
    exec(compile(text, str(path), "exec"), scope)
    scope["test_view_counterexample"]()  # the emitted case replays clean
