"""Shrinker unit behaviour: ddmin, query simplification, repro emission."""

import pytest

from repro.difftest import Case, emit_repro, run_case
from repro.difftest.generators import CoreWindowCase
from repro.difftest.oracle import Divergence, run_core_window_case
from repro.difftest.shrinker import (
    _ddmin,
    _window_expr,
    emit_core_repro,
    shrink_case,
    shrink_core_case,
)


class TestDdmin:
    def test_minimises_to_single_culprit(self):
        failing = {7}
        result = _ddmin(list(range(20)),
                        lambda items: failing <= set(items))
        assert result == [7]

    def test_minimises_pair_of_culprits(self):
        failing = {3, 17}
        result = _ddmin(list(range(24)),
                        lambda items: failing <= set(items))
        assert sorted(result) == [3, 17]

    def test_keeps_all_when_everything_needed(self):
        items = [1, 2, 3]
        assert _ddmin(list(items), lambda c: c == items) == items


class TestCqlShrinking:
    def _failing_case(self):
        # A synthetic oracle below treats any case containing temp == 30
        # as failing, so real evaluator behaviour does not matter here.
        rows = [({"id": i, "room": "a", "temp": 30 if i == 4 else 1}, i)
                for i in range(8)]
        return Case(query="ISTREAM SELECT id, temp FROM Obs [Range 9]",
                    streams={"Obs": rows, "Alerts": []})

    @staticmethod
    def _oracle(case):
        hot = any(row["temp"] == 30
                  for rows in case.streams.values() for row, _ in rows)
        return Divergence("executor", "synthetic") if hot else None

    def test_shrinks_streams_and_query(self):
        case = self._failing_case()
        shrunk, divergence = shrink_case(case, self._oracle(case),
                                         oracle=self._oracle)
        assert divergence.kind == "executor"
        assert shrunk.total_rows() == 1
        # The R2S prefix and the wide window are irrelevant to the
        # synthetic failure, so query simplification strips both.
        assert "ISTREAM" not in shrunk.query
        assert "[Range 1]" in shrunk.query

    def test_preserves_divergence_kind(self):
        case = self._failing_case()

        def flipping(candidate):
            # Fewer than 2 rows -> a different kind; shrinking must not
            # chase it below that point.
            hot = self._oracle(candidate)
            if hot is None:
                return None
            if candidate.total_rows() < 2:
                return Divergence("dsms", "different bug")
            return hot

        shrunk, divergence = shrink_case(case, flipping(case),
                                         oracle=flipping)
        assert divergence.kind == "executor"
        assert shrunk.total_rows() == 2


class TestReproEmission:
    def test_emitted_file_is_runnable_and_passes_on_fixed_code(self, tmp_path):
        case = Case(
            query="SELECT COUNT(temp) AS n FROM Obs [Range 2]",
            streams={"Obs": [({"id": 0, "room": "a", "temp": None}, 0)],
                     "Alerts": []})
        assert run_case(case) is None
        path = emit_repro(case, Divergence("executor", "example"),
                          tmp_path / "test_repro_example.py")
        text = path.read_text()
        assert case.query in text
        namespace: dict = {}
        exec(compile(text, str(path), "exec"), namespace)
        namespace["test_shrunk_counterexample"]()

    def test_core_repro_uses_constructor_expressions(self, tmp_path):
        from repro.core.windows import SteppedRangeWindow

        window = SteppedRangeWindow(4, 3)
        assert _window_expr(window) == "SteppedRangeWindow(4, 3)"
        case = CoreWindowCase(window=window,
                              rows=[({"id": 0, "v": 1}, 2)])
        assert run_core_window_case(case) is None
        path = emit_core_repro(case, Divergence("core-sparse", "example"),
                               tmp_path / "test_repro_core.py")
        namespace: dict = {}
        text = path.read_text()
        exec(compile(text, str(path), "exec"), namespace)
        namespace["test_shrunk_core_counterexample"]()

    def test_core_shrink_minimises_rows(self):
        from repro.core.windows import SlidingWindow

        window = SlidingWindow(3, 7, 5)
        rows = [({"id": i, "v": 0}, t) for i, t in enumerate([0, 1, 5, 9])]
        case = CoreWindowCase(window=window, rows=rows)

        def oracle_rows(candidate_rows):
            return run_core_window_case(
                CoreWindowCase(window=window, rows=candidate_rows))

        # On fixed code there is nothing to shrink — returned unchanged.
        clean = run_core_window_case(case)
        assert clean is None
        unchanged, _ = shrink_core_case(
            case, Divergence("core-sparse", "not reproducible"))
        assert unchanged.rows == rows


@pytest.mark.difftest
def test_window_expr_covers_every_generated_window():
    import random

    from repro.difftest.generators import gen_core_window

    rng = random.Random(0)
    for _ in range(100):
        window = gen_core_window(rng)
        expression = _window_expr(window)
        assert type(window).__name__ in expression
