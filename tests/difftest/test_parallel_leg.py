"""Deterministic regressions for the kernel-parallel oracle leg."""

from repro.difftest.generators import Case, build_engine, build_streams
from repro.difftest.oracle import _kernel_parallel_leg, run_case
from repro.plan.parallel import partition_scheme
from repro.cql import reference_evaluate


GROUPED = ("SELECT room, COUNT(*) AS n FROM Obs [Range 4] "
           "GROUP BY room")
STRIDED = ("SELECT id, COUNT(*) AS n FROM Obs [Range 6] "
           "GROUP BY id")


def engaged(query: str) -> bool:
    """True when the parallel leg will actually run (not skip)."""
    return partition_scheme(build_engine().plan(query)) is not None


def test_grouped_case_is_clean():
    assert engaged(GROUPED)
    case = Case(query=GROUPED, streams={"Obs": [
        ({"id": i, "room": "ab"[i % 2], "temp": i}, i // 2)
        for i in range(12)]})
    assert run_case(case) is None


def test_strided_int_keys_are_clean():
    # Keys 0, 4, 8, 12, 16: the pre-fix int-passthrough hash put every
    # one of them on replica 0 of any power-of-two fission.
    assert engaged(STRIDED)
    case = Case(query=STRIDED, streams={"Obs": [
        ({"id": 4 * (i % 5), "room": "a", "temp": i}, i)
        for i in range(15)]})
    assert run_case(case) is None


def test_r2s_case_is_clean():
    query = ("SELECT ISTREAM room, MAX(temp) AS m FROM Obs [Range 3] "
             "GROUP BY room")
    assert engaged(query)
    case = Case(query=query, streams={"Obs": [
        ({"id": i, "room": "ab"[i % 2], "temp": i % 7}, i)
        for i in range(10)]})
    assert run_case(case) is None


def test_unpartitionable_query_skips_leg():
    query = "SELECT COUNT(*) AS n FROM Obs [Range 4]"
    assert not engaged(query)
    case = Case(query=query, streams={"Obs": [
        ({"id": i, "room": "a", "temp": i}, i) for i in range(6)]})
    streams = build_streams(case)
    engine = build_engine()
    truth = reference_evaluate(engine.plan(query, optimize=False),
                               engine.catalog, streams)
    assert _kernel_parallel_leg(case, streams, truth,
                                is_r2s=False) is None
