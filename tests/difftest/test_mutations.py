"""Mutation smoke-check: the oracle must catch every seeded bug.

For each mutant the harness fuzzes until a divergence appears, shrinks
it, emits a standalone pytest repro, and verifies the repro actually
fails under the mutant and passes on the fixed code — the full
counterexample lifecycle, per injected bug class.
"""

import importlib.util
import random

import pytest

from repro.difftest import (
    MUTANTS,
    emit_core_repro,
    emit_repro,
    gen_case,
    gen_core_window_case,
    run_case,
    run_core_window_case,
    shrink_case,
    shrink_core_case,
)

#: Detection budget per mutant.  Empirically the slowest mutant to catch
#: (state-log-coalesce) falls within ~120 seed-0 cases; 600 gives slack
#: without letting a broken oracle burn minutes.
BUDGET = 600


def _find_divergence(leg: str, rng: random.Random):
    for _ in range(BUDGET):
        if leg == "cql":
            case = gen_case(rng)
            divergence = run_case(case)
        else:
            case = gen_core_window_case(rng)
            divergence = run_core_window_case(case)
        if divergence is not None:
            return case, divergence
    return None, None


def _load_test(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    (test_fn,) = [getattr(module, name) for name in dir(module)
                  if name.startswith("test_")]
    return test_fn


@pytest.mark.difftest
@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_oracle_catches_mutant_and_repro_roundtrips(name, tmp_path):
    factory, leg = MUTANTS[name]
    with factory():
        case, divergence = _find_divergence(leg, random.Random(0))
        assert divergence is not None, (
            f"oracle missed mutant {name!r} within {BUDGET} cases")
        if leg == "cql":
            case, divergence = shrink_case(case, divergence)
            path = emit_repro(case, divergence,
                              tmp_path / "test_repro_mutant.py")
        else:
            case, divergence = shrink_core_case(case, divergence)
            path = emit_core_repro(case, divergence,
                                   tmp_path / "test_repro_mutant.py")
        # The emitted repro must fail while the bug is present...
        repro = _load_test(path)
        with pytest.raises(AssertionError):
            repro()
    # ...and pass on the fixed code.
    repro = _load_test(path)
    repro()


@pytest.mark.difftest
def test_shrunk_counterexamples_are_small():
    """Shrinking must actually minimise: the known state-log mutant case
    lands well under the generated stream sizes."""
    factory, _leg = MUTANTS["state-log-coalesce"]
    with factory():
        case, divergence = _find_divergence("cql", random.Random(0))
        assert divergence is not None
        original_rows = case.total_rows()
        shrunk, _ = shrink_case(case, divergence)
        assert shrunk.total_rows() <= original_rows
        assert shrunk.total_rows() <= 8
