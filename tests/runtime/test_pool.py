"""Tests for the worker pool and fissioned multi-process execution."""

import os

import pytest

from repro.core import PlanError, Schema
from repro.cql import ContinuousQuery, CQLEngine
from repro.runtime import (
    CollectSinkOperator,
    ForwardPartitioner,
    HashPartitioner,
    JobGraph,
    JobRunner,
    KeyByOperator,
    WorkerPool,
    fission_job,
    run_job_partitioned,
    run_partitioned_recorded,
)
from repro.runtime.pool import _fork_available
from tests.runtime.test_job import CountOperator, word_source

needs_fork = pytest.mark.skipif(not _fork_available(),
                                reason="platform cannot fork()")


# Worker payloads must be importable by name, not closures.
def _square(x):
    return x * x


def _worker_pid(_task):
    return os.getpid()


def _identity_key(value):
    return value


def _make_keyby():
    return KeyByOperator(_identity_key)


class TestWorkerPool:
    def test_inline_backend_maps_in_order(self):
        with WorkerPool(3, backend="inline") as pool:
            assert pool.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_single_worker_auto_resolves_inline(self):
        assert WorkerPool(1).backend == "inline"

    @needs_fork
    def test_auto_resolves_process_for_many_workers(self):
        assert WorkerPool(4).backend == "process"

    def test_bad_arguments_rejected(self):
        with pytest.raises(PlanError):
            WorkerPool(0)
        with pytest.raises(PlanError):
            WorkerPool(2, backend="threads")

    @pytest.mark.multiproc
    @needs_fork
    def test_process_backend_runs_outside_parent(self):
        with WorkerPool(2, backend="process") as pool:
            pids = pool.map(_worker_pid, [0, 1])
        assert all(pid != os.getpid() for pid in pids)

    @pytest.mark.multiproc
    @needs_fork
    def test_pool_sizes_by_workers_not_first_task_count(self):
        """Regression: the cached fork pool used to be sized
        min(workers, len(tasks)) at first use, silently capping every
        later, larger map() at the first call's task count."""
        with WorkerPool(4, backend="process") as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]  # small first map
            assert pool._pool._processes == 4
            tasks = list(range(8))
            assert pool.map(_square, tasks) == [x * x for x in tasks]
            assert pool._pool._processes == 4

    @pytest.mark.multiproc
    @needs_fork
    def test_process_backend_matches_inline(self):
        tasks = list(range(8))
        with WorkerPool(2, backend="process") as pool:
            forked = pool.map(_square, tasks)
        with WorkerPool(2, backend="inline") as pool:
            assert pool.map(_square, tasks) == forked


# ---------------------------------------------------------------------------
# Fissioned CQL runs
# ---------------------------------------------------------------------------


GROUPED = ("SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 5] "
           "GROUP BY room")

BATCHES = [
    (0, {"Obs": [{"id": 1, "room": "kitchen", "temp": 20},
                 {"id": 2, "room": "lab", "temp": 31}]}),
    (1, {"Obs": [{"id": 3, "room": "kitchen", "temp": 22}]}),
    (3, {"Obs": [{"id": 4, "room": "hall", "temp": 19},
                 {"id": 5, "room": "lab", "temp": 33}]}),
    (7, {"Obs": [{"id": 6, "room": "kitchen", "temp": 25}]}),
]


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.register_stream("Obs", Schema(["id", "room", "temp"]))
    engine.register_stream("Metered", Schema(["meter", "watts"]))
    return engine


def serial_reference(plan, catalog, batches):
    query = ContinuousQuery(plan, catalog)
    emissions = list(query.start())
    for t, arrivals in batches:
        emissions.extend(query.push_batch(t, arrivals))
    emissions.extend(query.finish())
    return emissions, query.current()


def emission_key(emission):
    return (emission.timestamp, repr(emission.record))


class TestPartitionedRecorded:
    def test_inline_run_matches_serial(self, engine):
        plan = engine.plan(GROUPED)
        expected, state = serial_reference(plan, engine.catalog, BATCHES)
        result = run_partitioned_recorded(plan, engine.catalog, BATCHES,
                                          parallelism=3, backend="inline")
        assert sorted(result.emissions, key=emission_key) \
            == sorted(expected, key=emission_key)
        assert result.state == state
        assert sum(result.partition_loads) == 6
        assert result.backend == "inline"

    @pytest.mark.multiproc
    @needs_fork
    def test_process_run_matches_serial(self, engine):
        plan = engine.plan(GROUPED)
        expected, state = serial_reference(plan, engine.catalog, BATCHES)
        result = run_partitioned_recorded(plan, engine.catalog, BATCHES,
                                          parallelism=3, backend="process")
        assert sorted(result.emissions, key=emission_key) \
            == sorted(expected, key=emission_key)
        assert result.state == state
        assert result.backend == "process"

    def test_strided_int_keys_balance(self, engine):
        # 0, 4, 8, … used to collapse onto worker 0 pre-hash-fix.
        plan = engine.plan("SELECT meter, SUM(watts) AS w "
                           "FROM Metered [Range 100] GROUP BY meter")
        batches = [(0, {"Metered": [{"meter": 4 * i, "watts": 1}
                                    for i in range(16)]})]
        result = run_partitioned_recorded(plan, engine.catalog, batches,
                                          parallelism=4, backend="inline",
                                          finish=False)
        assert sum(result.partition_loads) == 16
        assert all(load > 0 for load in result.partition_loads), \
            f"starved partition: {result.partition_loads}"

    def test_unpartitionable_plan_rejected(self, engine):
        plan = engine.plan("SELECT COUNT(*) AS n FROM Obs [Range 5]")
        with pytest.raises(PlanError):
            run_partitioned_recorded(plan, engine.catalog, BATCHES,
                                     parallelism=2)


# ---------------------------------------------------------------------------
# Fissioned job runs
# ---------------------------------------------------------------------------


WORDS = ["a", "b", "a", "c", "b", "a", "d", "a", "c", "b"]


def wordcount_graph():
    graph = JobGraph("wordcount")
    graph.add_source("src", word_source(WORDS, 2))
    graph.add_operator("key", _make_keyby, 2)
    graph.add_operator("count", CountOperator, 2)
    graph.add_operator("sink", CollectSinkOperator, 1)
    graph.connect("src", "key", ForwardPartitioner)
    graph.connect("key", "count", HashPartitioner)
    graph.connect("count", "sink", HashPartitioner)
    graph.mark_sink("sink")
    return graph


class TestJobFission:
    def test_fission_splits_records_disjointly(self):
        jobs = fission_job(wordcount_graph(), 3)
        assert len(jobs) == 3
        total = []
        for job in jobs:
            for subtask_records in job.sources["src"].records:
                total.extend(subtask_records)
        # Every record lands in exactly one partition…
        assert sorted(total) == sorted(
            record for chunk in word_source(WORDS, 2) for record in chunk)
        # …and the same word never straddles two partitions.
        placements = {}
        for index, job in enumerate(jobs):
            for subtask_records in job.sources["src"].records:
                for value, _key, _ts in subtask_records:
                    assert placements.setdefault(value, index) == index

    def test_fission_copies_topology(self):
        jobs = fission_job(wordcount_graph(), 2)
        original = wordcount_graph()
        for job in jobs:
            assert set(job.vertices) == set(original.vertices)
            assert len(job.edges) == len(original.edges)
            assert job.sinks == original.sinks

    def test_inline_job_matches_serial(self):
        serial = JobRunner(wordcount_graph()).run()
        merged = run_job_partitioned(wordcount_graph(), 3, backend="inline")
        assert merged.values("sink") == serial.values("sink")
        assert merged.messages_processed > 0

    @pytest.mark.multiproc
    @needs_fork
    def test_process_job_matches_serial(self):
        serial = JobRunner(wordcount_graph()).run()
        merged = run_job_partitioned(wordcount_graph(), 2, backend="process")
        assert merged.values("sink") == serial.values("sink")
