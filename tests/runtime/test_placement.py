"""Tests for operator placement and fission advice (Section 4.2)."""

import pytest

from repro.core import PlanError
from repro.runtime import JobGraph, MapOperator
from repro.runtime.placement import (
    ComputeNode,
    Network,
    advise_fission,
    bottlenecks,
    place,
)


def linear_graph(n_ops=3, parallelism=1):
    graph = JobGraph()
    graph.add_source("src", [[("x", None, 0)]])
    previous = "src"
    for i in range(n_ops):
        name = f"op{i}"
        graph.add_operator(name, lambda: MapOperator(lambda v: v),
                           parallelism)
        graph.connect(previous, name)
        previous = name
    return graph


def two_host_network(latency=10.0):
    network = Network([ComputeNode("edge", 2), ComputeNode("cloud", 4)],
                      default_latency=latency)
    return network


class TestNetwork:
    def test_same_host_is_free(self):
        network = two_host_network()
        assert network.latency("edge", "edge") == 0.0
        assert network.latency("edge", "cloud") == 10.0

    def test_explicit_link_latency(self):
        network = two_host_network()
        network.set_latency("edge", "cloud", 3.5)
        assert network.latency("cloud", "edge") == 3.5

    def test_invalid_networks(self):
        with pytest.raises(PlanError):
            Network([])
        with pytest.raises(PlanError):
            Network([ComputeNode("a", 1), ComputeNode("a", 1)])
        with pytest.raises(PlanError):
            ComputeNode("x", 0)


class TestPlacement:
    def test_colocation_when_capacity_allows(self):
        graph = linear_graph(n_ops=2)
        network = Network([ComputeNode("big", 8)])
        placement = place(graph, network)
        assert placement.cost == 0.0
        assert set(placement.assignment.values()) == {"big"}

    def test_capacity_forces_spreading(self):
        graph = linear_graph(n_ops=3)  # 4 vertices incl. source
        network = Network([ComputeNode("edge", 2),
                           ComputeNode("cloud", 3)])
        placement = place(graph, network)
        # Neither host fits the whole chain, so it must be cut — and the
        # exact solver cuts the linear chain exactly once.
        hosts = set(placement.assignment.values())
        assert hosts == {"edge", "cloud"}
        assert placement.cost == 10.0

    def test_pinning_respected(self):
        graph = linear_graph(n_ops=2)
        network = two_host_network()
        placement = place(graph, network, pinned={"src": "edge"})
        assert placement.host_of("src") == "edge"

    def test_hot_edge_stays_local(self):
        # Edge src->op0 is 100x hotter than op0->op1: the cut must land
        # on the cold edge.
        graph = linear_graph(n_ops=2)
        network = Network([ComputeNode("a", 2), ComputeNode("b", 2)])
        rates = {("src", "op0"): 100.0, ("op0", "op1"): 1.0}
        placement = place(graph, network, rates=rates,
                          pinned={"src": "a", "op1": "b"})
        assert placement.host_of("op0") == "a"
        assert placement.cost == 10.0

    def test_insufficient_slots_rejected(self):
        graph = linear_graph(n_ops=4)
        with pytest.raises(PlanError, match="slots"):
            place(graph, Network([ComputeNode("tiny", 2)]))

    def test_bad_pin_rejected(self):
        graph = linear_graph(n_ops=1)
        network = two_host_network()
        with pytest.raises(PlanError):
            place(graph, network, pinned={"ghost": "edge"})
        with pytest.raises(PlanError):
            place(graph, network, pinned={"src": "mars"})

    def test_greedy_close_to_exact_on_small_graph(self):
        graph = linear_graph(n_ops=4)
        network = two_host_network()
        exact = place(graph, network)
        greedy = place(graph, network, exhaustive_limit=0)
        assert greedy.method == "greedy"
        assert greedy.cost <= exact.cost * 3  # same order of magnitude
        # Greedy placements are always feasible.
        hosts = list(greedy.assignment.values())
        assert hosts.count("edge") <= 2 and hosts.count("cloud") <= 4


class TestFission:
    def test_bottleneck_detected_and_scaled(self):
        graph = linear_graph(n_ops=2, parallelism=2)
        advice = advise_fission(
            graph,
            input_rates={"op0": 10.0, "op1": 1.0},
            unit_costs={"op0": 0.5, "op1": 0.1},
            target_utilisation=0.8)
        by_name = {a.vertex: a for a in advice}
        # op0: load 5.0 over parallelism 2 → utilisation 2.5: bottleneck.
        assert by_name["op0"].utilisation == pytest.approx(2.5)
        assert by_name["op0"].recommended_parallelism == 7  # ceil(5/0.8)
        assert by_name["op1"].recommended_parallelism == 2  # unchanged
        assert [a.vertex for a in bottlenecks(advice)] == ["op0"]

    def test_invalid_target(self):
        with pytest.raises(PlanError):
            advise_fission(linear_graph(), {}, {}, target_utilisation=0)
