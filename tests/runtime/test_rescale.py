"""Tests for live rescale (repro.runtime.rescale): checkpoint-driven
state migration of a running PartitionedQuery, zero output divergence."""

import pytest

from repro.core import PlanError, Schema, StateError
from repro.cql import ContinuousQuery, CQLEngine
from repro.cql.parallel import PartitionedQuery
from repro.runtime.rescale import RescaleError, RescaleReport

GROUPED = ("SELECT ISTREAM room, COUNT(*) AS n FROM Obs [Range 5] "
           "GROUP BY room")
RSTREAM_GROUPED = ("SELECT RSTREAM room, MAX(temp) AS m FROM Obs [Range 4] "
                   "GROUP BY room")
KEY_PROJECTED_AWAY = ("SELECT COUNT(*) AS n FROM Obs [Range 5] "
                      "GROUP BY room")
STREAM_JOIN = ("SELECT ISTREAM O.room, O.id, A.level FROM Obs O [Range 5], "
               "Alerts A [Range 5] WHERE O.room = A.room")
RELATION_JOIN = ("SELECT ISTREAM O.room, O.id, R.floor "
                 "FROM Obs O [Range 5], Rooms R WHERE O.room = R.room")

ROOMS = ["kitchen", "lab", "hall", "attic", "cellar"]

#: Per-instant Obs batches spreading keys across the hash space, with
#: gaps so window expirations fire between arrivals.
OBS_BATCHES = [
    (t, {"Obs": [{"id": t * 10 + i, "room": ROOMS[(t + i) % len(ROOMS)],
                  "temp": 15 + (t * 7 + i * 3) % 25}
                 for i in range(1 + t % 3)]})
    for t in [0, 1, 2, 4, 7, 8, 11, 14, 15, 18]
]


@pytest.fixture
def engine():
    engine = CQLEngine()
    engine.catalog.register_stream("Obs", Schema(["id", "room", "temp"]))
    engine.catalog.register_stream("Alerts", Schema(["room", "level"]))
    engine.catalog.register_relation("Rooms", Schema(["room", "floor"]), [])
    return engine


def outputs(query):
    stream = query.emitted_stream()
    return (stream.timestamps(), stream.values(),
            sorted(query.current().items(), key=repr))


def run_with_rescales(plan, catalog, batches, schedule,
                      start_width=1):
    """Drive a PartitionedQuery, rescaling at the scheduled positions."""
    query = PartitionedQuery(plan, catalog, parallelism=start_width)
    reports = []
    query.start()
    for position, (t, arrivals) in enumerate(batches):
        if position in schedule:
            reports.append(query.rescale(schedule[position]))
        query.push_batch(t, arrivals)
    query.finish()
    return query, reports


def serial_control(plan, catalog, batches):
    query = ContinuousQuery(plan, catalog)
    query.start()
    for t, arrivals in batches:
        query.push_batch(t, arrivals)
    query.finish()
    return query


class TestStateMigration:
    def test_grouped_aggregate_1_4_2_matches_serial(self, engine):
        plan = engine.plan(GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        query, reports = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {3: 4, 7: 2})
        assert outputs(query) == outputs(control)
        assert query.parallelism == 2
        assert [r.parallelism_to for r in reports] == [4, 2]

    def test_downscale_4_to_2(self, engine):
        plan = engine.plan(GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        query, [report] = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {5: 2}, start_width=4)
        assert outputs(query) == outputs(control)
        assert report.parallelism_from == 4
        assert report.parallelism_to == 2

    def test_stream_stream_join_rescale(self, engine):
        plan = engine.plan(STREAM_JOIN)
        batches = [
            (t, {"Obs": [{"id": t, "room": ROOMS[t % 4], "temp": 20}],
                 "Alerts": [{"room": ROOMS[(t + 1) % 4], "level": t}]})
            for t in range(8)
        ]
        control = serial_control(plan, engine.catalog, batches)
        query, reports = run_with_rescales(
            plan, engine.catalog, batches, {2: 3, 5: 2})
        assert outputs(query) == outputs(control)
        assert sum(r.migrated_entries for r in reports) > 0

    def test_key_projected_away_uses_driver_reconstruction(self, engine):
        # The spine above the aggregate projects the routing key away, so
        # the driver state must be recomputed per target, not split.
        # Relation-mode only: the maintained state is a disjoint union
        # even when output rows collide in value (see the delta-merge
        # soundness test below for why streamed output is different).
        plan = engine.plan(KEY_PROJECTED_AWAY)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        query, _ = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {4: 3})
        assert sorted(query.current().items(), key=repr) \
            == sorted(control.current().items(), key=repr)
        assert query.as_relation() == control.as_relation()

    def test_delta_stream_without_output_key_is_not_partitionable(
            self, engine):
        """Soundness fix: an ISTREAM/DSTREAM query whose projection drops
        the partition key must not fission — output rows from different
        partitions can collide in value, and cross-key cancellation the
        serial bag performs never happens in the concatenated merge."""
        from repro.plan.parallel import partition_scheme
        for text in (
            "SELECT ISTREAM COUNT(*) AS n FROM Obs [Range 5] "
            "GROUP BY room",
            "SELECT ISTREAM O.id, A.level FROM Obs O [Range 5], "
            "Alerts A [Range 5] WHERE O.room = A.room",
        ):
            assert partition_scheme(engine.plan(text)) is None, text
        # The relation-mode twin stays partitionable: state merges as a
        # disjoint-by-key bag union regardless of what the output names.
        assert partition_scheme(engine.plan(KEY_PROJECTED_AWAY)) is not None

    def test_relation_updates_after_rescale(self, engine):
        plan = engine.plan(RELATION_JOIN)
        obs = [(t, {"Obs": [{"id": t, "room": ROOMS[t % 3], "temp": 20}]})
               for t in range(6)]

        def drive(query, rescale_at=None):
            query.start()
            query.update_relation("Rooms", {"room": "kitchen", "floor": 1},
                                  1, 0)
            for position, (t, arrivals) in enumerate(obs):
                if position == rescale_at:
                    query.rescale(3)
                query.push_batch(t, arrivals)
                if position == 2:
                    query.update_relation(
                        "Rooms", {"room": "lab", "floor": 2}, 1, t)
            query.finish()
            return query

        control = drive(ContinuousQuery(plan, engine.catalog))
        rescaled = drive(
            PartitionedQuery(plan, engine.catalog, parallelism=1),
            rescale_at=4)
        assert outputs(rescaled) == outputs(control)

    def test_as_relation_history_survives_rescale(self, engine):
        plan = engine.plan(GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        query, _ = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {3: 4, 7: 2})
        assert query.as_relation() == control.as_relation()

    def test_rstream_replicas_match_serial(self, engine):
        """Regression for the RSTREAM merge bug: a replica that stays
        quiet at an instant another replica logged must still re-emit its
        state, or merged output loses rows when keys split across
        replicas."""
        plan = engine.plan(RSTREAM_GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        for width in (2, 4):
            query = PartitionedQuery(plan, engine.catalog, parallelism=width)
            query.start()
            for t, arrivals in OBS_BATCHES:
                query.push_batch(t, arrivals)
            query.finish()
            assert outputs(query) == outputs(control), f"width {width}"

    def test_event_time_frontier_survives_rescale(self, engine):
        """Window expirations fire at the same instants after migration:
        every target replica inherits the union agenda, so the merged
        event-time frontier is still the minimum across partitions."""
        plan = engine.plan(GROUPED)

        def drive(query, rescale_to=None):
            query.start()
            for t, arrivals in OBS_BATCHES[:5]:
                query.push_batch(t, arrivals)
            if rescale_to is not None:
                query.rescale(rescale_to)
            # No further arrivals: only agenda work (expirations) fires.
            query.advance_to(40)
            query.finish()
            return query

        control = drive(ContinuousQuery(plan, engine.catalog))
        rescaled = drive(PartitionedQuery(plan, engine.catalog,
                                          parallelism=1), rescale_to=4)
        assert outputs(rescaled) == outputs(control)

    def test_rstream_rescale_matches_serial(self, engine):
        plan = engine.plan(RSTREAM_GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        query, _ = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {3: 4, 7: 2})
        assert outputs(query) == outputs(control)


class TestAdoption:
    def test_adopt_keeps_running_state_then_rescales(self, engine):
        plan = engine.plan(GROUPED)
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        serial = ContinuousQuery(plan, engine.catalog)
        serial.start()
        for t, arrivals in OBS_BATCHES[:4]:
            serial.push_batch(t, arrivals)
        query = PartitionedQuery.adopt(serial)
        assert query.parallelism == 1
        query.rescale(3)
        for t, arrivals in OBS_BATCHES[4:]:
            query.push_batch(t, arrivals)
        query.finish()
        assert outputs(query) == outputs(control)

    def test_adopt_rejects_unpartitionable_plan(self, engine):
        plan = engine.plan("SELECT COUNT(*) AS n FROM Obs [Range 5]")
        with pytest.raises(PlanError, match="not key-partitionable"):
            PartitionedQuery.adopt(ContinuousQuery(plan, engine.catalog))


class TestRescaleEdges:
    def test_same_width_is_a_noop(self, engine):
        plan = engine.plan(GROUPED)
        query = PartitionedQuery(plan, engine.catalog, parallelism=2)
        replicas = query.replicas()
        report = query.rescale(2)
        assert isinstance(report, RescaleReport)
        assert report.migrated_entries == 0
        assert query.replicas() == replicas  # untouched, not rebuilt

    def test_rescale_before_any_input(self, engine):
        plan = engine.plan(GROUPED)
        query = PartitionedQuery(plan, engine.catalog, parallelism=1)
        report = query.rescale(4)
        assert report.instant is None
        query.start()
        for t, arrivals in OBS_BATCHES:
            query.push_batch(t, arrivals)
        query.finish()
        control = serial_control(plan, engine.catalog, OBS_BATCHES)
        assert outputs(query) == outputs(control)

    def test_nonpositive_width_rejected(self, engine):
        plan = engine.plan(GROUPED)
        query = PartitionedQuery(plan, engine.catalog, parallelism=1)
        with pytest.raises(RescaleError):
            query.rescale(0)

    def test_rescale_error_is_a_state_error(self):
        assert issubclass(RescaleError, StateError)

    def test_failed_rescale_leaves_query_at_old_width(self, engine):
        # [Rows n] partitioned windows pass the scheme check but carry a
        # global-order FIFO; rescale must refuse without touching the
        # query.  Force the condition through the snapshot payload shape.
        plan = engine.plan(GROUPED)
        query = PartitionedQuery(plan, engine.catalog, parallelism=2)
        query.start()
        for t, arrivals in OBS_BATCHES[:3]:
            query.push_batch(t, arrivals)
        before = outputs(query)
        # Stage an arrival mid-instant by hand: quiescence must reject it.
        source = next(op for _, op in query.replicas()[0].operators()
                      if hasattr(op, "_staged"))
        source._staged.append(object())
        with pytest.raises(RescaleError, match="staged"):
            query.rescale(4)
        source._staged.pop()
        assert query.parallelism == 2
        assert outputs(query) == before

    def test_report_shape(self, engine):
        plan = engine.plan(GROUPED)
        query, [report] = run_with_rescales(
            plan, engine.catalog, OBS_BATCHES, {5: 3})
        assert report.parallelism_from == 1
        assert report.parallelism_to == 3
        assert report.instant is not None
        assert report.migrated_entries > 0
        assert report.seconds >= 0.0
