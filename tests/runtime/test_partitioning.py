"""Property tests for the Partitioner family (the routing layer the
Exchange/fission machinery stands on)."""

import os
import subprocess
import sys

import pytest

from repro.core.errors import StateError
from repro.runtime import (
    BroadcastPartitioner,
    ForwardPartitioner,
    HashPartitioner,
    RebalancePartitioner,
    default_hash,
)


class TestHashPartitioner:
    def test_deterministic_for_equal_keys(self):
        part = HashPartitioner()
        for key in ["a", "b", 7, (1, "x"), None, 3.5]:
            assert part.route(None, key, 5) == part.route(None, key, 5)

    def test_single_target_per_record(self):
        part = HashPartitioner()
        for key in range(100):
            targets = part.route(None, key, 7)
            assert len(targets) == 1
            assert 0 <= targets[0] < 7

    def test_key_fn_overrides_record_key(self):
        part = HashPartitioner(key_fn=lambda value: value["k"])
        routed = part.route({"k": "x"}, "ignored", 4)
        assert routed == (default_hash("x") % 4,)

    def test_strided_int_keys_not_starved(self):
        """Keys 0, 4, 8, … across 4 subtasks must not collapse onto one
        partition (the `key % downstream` stride bug)."""
        part = HashPartitioner()
        counts = [0] * 4
        for key in range(0, 512, 4):
            counts[part.route(None, key, 4)[0]] += 1
        assert min(counts) > 0
        # Near-uniform spread: no partition holds more than half the keys.
        assert max(counts) < sum(counts) / 2

    def test_all_partitions_covered_no_starvation(self):
        """Distribution property: over a mixed key population every
        downstream width from 2 to 8 covers all of its partitions."""
        part = HashPartitioner()
        keys = [f"user-{i}" for i in range(64)] + list(range(64)) \
            + [(i, "t") for i in range(64)]
        for width in range(2, 9):
            hit = {part.route(None, key, width)[0] for key in keys}
            assert hit == set(range(width)), f"width {width} starved"

    def test_routing_stable_across_processes(self):
        """Hash routing must agree between processes with different
        PYTHONHASHSEED values — the cross-process contract partitioned
        workers rely on (worker N must see exactly the keys the router
        sent to partition N)."""
        keys = ["alpha", "beta", 0, 4, 8, 1 << 40, (2, "x"), None]
        local = [HashPartitioner().route(None, key, 5)[0] for key in keys]
        script = (
            "from repro.runtime import HashPartitioner\n"
            "keys = ['alpha', 'beta', 0, 4, 8, 1 << 40, (2, 'x'), None]\n"
            "print([HashPartitioner().route(None, k, 5)[0] for k in keys])\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script], env=env, text=True,
            capture_output=True, check=True)
        assert out.stdout.strip() == repr(local)


class TestBroadcastPartitioner:
    def test_reaches_every_subtask(self):
        part = BroadcastPartitioner()
        for width in range(1, 9):
            assert tuple(part.route("v", "k", width)) == tuple(range(width))


class TestForwardPartitioner:
    def test_subtask_i_to_subtask_i(self):
        part = ForwardPartitioner()
        part.upstream_index = 3
        assert part.route("v", "k", 4) == (3,)

    def test_requires_equal_parallelism(self):
        part = ForwardPartitioner()
        part.upstream_index = 2
        with pytest.raises(StateError):
            part.route("v", "k", 2)

    def test_is_the_fusible_edge(self):
        assert ForwardPartitioner().is_forward
        assert not HashPartitioner().is_forward
        assert not BroadcastPartitioner().is_forward
        assert not RebalancePartitioner().is_forward


class TestRebalancePartitioner:
    def test_round_robin(self):
        part = RebalancePartitioner()
        routed = [part.route("v", None, 3)[0] for _ in range(6)]
        assert routed == [0, 1, 2, 0, 1, 2]

    def test_width_alternation_keeps_cycles(self):
        """One instance shared across edges of different widths must keep
        a round-robin position per width — the old code rebuilt the cycle
        on every width change, so alternating calls always returned 0."""
        part = RebalancePartitioner()
        wide = []
        narrow = []
        for _ in range(4):
            wide.append(part.route("v", None, 4)[0])
            narrow.append(part.route("v", None, 2)[0])
        assert wide == [0, 1, 2, 3]
        assert narrow == [0, 1, 0, 1]

    def test_no_subtask_starved(self):
        part = RebalancePartitioner()
        counts = [0] * 5
        for _ in range(50):
            counts[part.route("v", None, 5)[0]] += 1
        assert counts == [10] * 5
