"""Tests for broker log compaction (changelog topics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import Table, table_from_changelog
from repro.runtime import Broker, replay, replay_compacted


@pytest.fixture
def broker():
    broker = Broker()
    broker.create_topic("changelog", partitions=2)
    return broker


class TestCompaction:
    def test_latest_record_per_key_survives(self, broker):
        broker.produce("changelog", "v1", key="a", timestamp=1)
        broker.produce("changelog", "v2", key="a", timestamp=2)
        broker.produce("changelog", "w1", key="b", timestamp=3)
        compacted = list(replay_compacted(broker, "changelog"))
        by_key = {r.key: r.value for r in compacted}
        assert by_key == {"a": "v2", "b": "w1"}

    def test_tombstone_removes_key(self, broker):
        broker.produce("changelog", "v1", key="a", timestamp=1)
        broker.produce("changelog", None, key="a", timestamp=2)
        assert list(replay_compacted(broker, "changelog")) == []

    def test_offset_order_preserved(self, broker):
        for i in range(10):
            broker.produce("changelog", i, key=i % 3, partition=0)
        compacted = broker.topic("changelog").partitions[0].compacted()
        offsets = [r.offset for r in compacted]
        assert offsets == sorted(offsets)

    def test_compaction_does_not_mutate_the_log(self, broker):
        broker.produce("changelog", "v1", key="a")
        broker.produce("changelog", "v2", key="a")
        list(replay_compacted(broker, "changelog"))
        assert len(list(replay(broker, "changelog"))) == 2


class TestChangelogTopicBootstrap:
    """The duality's storage side: a table rebuilt from its changelog
    topic equals the same table rebuilt from the compacted topic."""

    def bootstrap(self, records):
        table = {}
        for record in sorted(records, key=lambda r: r.timestamp):
            if record.value is None:
                table.pop(record.key, None)
            else:
                table[record.key] = record.value
        return table

    def test_full_vs_compacted_bootstrap(self, broker):
        table = Table()
        events = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", None)]
        t = 0
        for key, value in events:
            t += 1
            if value is None:
                table.delete(key, t)
            else:
                table.upsert(key, value, t)
        for change in table.changelog():
            broker.produce("changelog", change.new, key=change.key,
                           timestamp=change.timestamp)
        full = self.bootstrap(replay(broker, "changelog"))
        compacted = self.bootstrap(replay_compacted(broker, "changelog"))
        assert full == compacted == table.snapshot()


events = st.lists(st.tuples(
    st.integers(min_value=0, max_value=4),
    st.one_of(st.none(), st.integers(min_value=0, max_value=99))),
    max_size=50)


@settings(max_examples=60, deadline=None)
@given(ops=events)
def test_property_compacted_bootstrap_equals_full(ops):
    broker = Broker()
    broker.create_topic("log", partitions=3)
    model: dict[int, int] = {}
    for t, (key, value) in enumerate(ops):
        broker.produce("log", value, key=key, timestamp=t)
        if value is None:
            model.pop(key, None)
        else:
            model[key] = value

    def fold(records):
        out: dict[int, int] = {}
        for record in sorted(records, key=lambda r: r.timestamp):
            if record.value is None:
                out.pop(record.key, None)
            else:
                out[record.key] = record.value
        return out

    assert fold(replay(broker, "log")) == model
    assert fold(replay_compacted(broker, "log")) == model
