"""Tests for the deterministic actor system."""

import pytest

from repro.core import StateError
from repro.runtime import Actor, ActorSystem, FunctionActor


class Echo(Actor):
    def __init__(self):
        super().__init__()
        self.seen = []

    def receive(self, message, sender):
        self.seen.append(message)


class TestSpawnAndTell:
    def test_message_delivery(self):
        system = ActorSystem()
        echo = Echo()
        ref = system.spawn("echo", echo)
        ref.tell("hello")
        system.run_until_idle()
        assert echo.seen == ["hello"]

    def test_duplicate_name_rejected(self):
        system = ActorSystem()
        system.spawn("a", Echo())
        with pytest.raises(StateError):
            system.spawn("a", Echo())

    def test_unknown_ref(self):
        with pytest.raises(StateError):
            ActorSystem().ref("ghost")

    def test_mailbox_is_fifo(self):
        system = ActorSystem()
        echo = Echo()
        ref = system.spawn("echo", echo)
        for i in range(5):
            ref.tell(i)
        system.run_until_idle()
        assert echo.seen == [0, 1, 2, 3, 4]


class TestInteraction:
    def test_actor_replies_via_context(self):
        system = ActorSystem()
        log = []

        def ping(message, ctx):
            ctx.tell("pong", f"got {message}")

        system.spawn("ping", FunctionActor(ping))
        system.spawn("pong", FunctionActor(
            lambda m, ctx: log.append(m)))
        system.ref("ping").tell("x")
        system.run_until_idle()
        assert log == ["got x"]

    def test_spawn_from_actor(self):
        system = ActorSystem()
        children = []

        def parent(message, ctx):
            child = ctx.spawn("child", Echo())
            children.append(child.name)

        system.spawn("parent", FunctionActor(parent))
        system.ref("parent").tell("go")
        system.run_until_idle()
        assert children == ["child"]
        assert "child" in system.actor_names

    def test_stop_drops_messages(self):
        system = ActorSystem()
        echo = Echo()
        ref = system.spawn("echo", echo)
        system.stop("echo")
        ref.tell("ignored")
        system.run_until_idle()
        assert echo.seen == []

    def test_counts(self):
        system = ActorSystem()
        ref = system.spawn("echo", Echo())
        ref.tell(1)
        ref.tell(2)
        assert system.pending() == 2
        processed = system.run_until_idle()
        assert processed == 2
        assert system.messages_processed == 2
        assert system.messages_delivered == 2

    def test_quiescence_guard(self):
        system = ActorSystem()

        def storm(message, ctx):
            ctx.tell("storm", message)  # sends to itself forever

        system.spawn("storm", FunctionActor(storm))
        system.ref("storm").tell("go")
        with pytest.raises(StateError, match="quiesce"):
            system.run_until_idle(max_messages=100)
