"""Tests for the LSM key-value store, incl. a model-based hypothesis check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StateError
from repro.runtime import LSMStore, MemTable, SortedRun, TOMBSTONE


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put("b", 2)
        table.put("a", 1)
        assert table.get("a") == 1
        assert list(table.items()) == [("a", 1), ("b", 2)]

    def test_overwrite(self):
        table = MemTable()
        table.put("k", 1)
        table.put("k", 2)
        assert table.get("k") == 2
        assert len(table) == 1

    def test_scan(self):
        table = MemTable()
        for key in "aceg":
            table.put(key, key.upper())
        assert list(table.scan("b", "f")) == [("c", "C"), ("e", "E")]


class TestSortedRun:
    def test_get_binary_search(self):
        run = SortedRun([("a", 1), ("c", 3)])
        assert run.get("c") == 3
        assert run.get("b") is None
        assert "a" in run
        assert "b" not in run

    def test_unsorted_rejected(self):
        with pytest.raises(StateError):
            SortedRun([("b", 1), ("a", 2)])


class TestLSMStore:
    def test_basic_put_get_delete(self):
        store = LSMStore()
        store.put("k", "v")
        assert store.get("k") == "v"
        store.delete("k")
        assert store.get("k") is None
        assert "k" not in store

    def test_flush_on_memtable_limit(self):
        store = LSMStore(memtable_limit=2)
        store.put("a", 1)
        assert store.flushes == 0
        store.put("b", 2)
        assert store.flushes == 1
        assert store.memtable_size == 0
        assert store.get("a") == 1  # still readable from the run

    def test_newest_run_wins(self):
        store = LSMStore(memtable_limit=1)
        store.put("k", "old")
        store.put("k", "new")
        assert store.run_count == 2
        assert store.get("k") == "new"

    def test_tombstone_shadows_older_value(self):
        store = LSMStore(memtable_limit=1)
        store.put("k", "v")   # flushed to run
        store.delete("k")     # tombstone flushed to newer run
        assert store.get("k") is None

    def test_compaction_merges_and_drops_tombstones(self):
        store = LSMStore(memtable_limit=1, max_runs=2)
        store.put("a", 1)
        store.put("b", 2)
        store.delete("a")  # third flush triggers compaction
        assert store.run_count == 1
        assert store.compactions == 1
        assert list(store.items()) == [("b", 2)]

    def test_scan_merges_levels(self):
        store = LSMStore(memtable_limit=2)
        store.put("a", 1)
        store.put("b", 2)   # flushed
        store.put("b", 20)  # newer, in memtable
        store.put("c", 3)
        assert list(store.scan("a", "z")) == [("a", 1), ("b", 20), ("c", 3)]

    def test_len_counts_live_keys(self):
        store = LSMStore(memtable_limit=2)
        store.put("a", 1)
        store.put("b", 2)
        store.delete("a")
        assert len(store) == 1

    def test_cannot_store_tombstone(self):
        store = LSMStore()
        with pytest.raises(StateError):
            store.put("k", TOMBSTONE)

    def test_default_on_missing(self):
        assert LSMStore().get("missing", 42) == 42

    def test_recover_equals_original(self):
        store = LSMStore(memtable_limit=3)
        for i in range(7):
            store.put(f"k{i}", i)
        store.delete("k0")
        recovered = store.recover()
        assert list(recovered.items()) == list(store.items())

    def test_invalid_parameters(self):
        with pytest.raises(StateError):
            LSMStore(memtable_limit=0)
        with pytest.raises(StateError):
            LSMStore(max_runs=0)


# ---------------------------------------------------------------------------
# Model check: the LSM store behaves exactly like a dict
# ---------------------------------------------------------------------------

operations = st.lists(
    st.tuples(st.sampled_from(["put", "delete", "flush"]),
              st.integers(min_value=0, max_value=20),
              st.integers(min_value=0, max_value=99)),
    max_size=120)


@settings(max_examples=60, deadline=None)
@given(ops=operations,
       memtable_limit=st.integers(min_value=1, max_value=8),
       max_runs=st.integers(min_value=1, max_value=4))
def test_lsm_store_matches_dict_model(ops, memtable_limit, max_runs):
    store = LSMStore(memtable_limit=memtable_limit, max_runs=max_runs)
    model: dict[int, int] = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        else:
            store.flush()
        assert store.get(key) == model.get(key)
    assert list(store.items()) == sorted(model.items())
    assert list(store.scan(5, 15)) == sorted(
        (k, v) for k, v in model.items() if 5 <= k < 15)
    recovered = store.recover()
    assert list(recovered.items()) == sorted(model.items())
