"""Tests for job graphs, chaining, parallel execution and recovery."""

import pytest

from repro.core import PlanError
from repro.exec import OperatorContext
from repro.runtime import (
    BroadcastPartitioner,
    ChainedOperator,
    CollectSinkOperator,
    Element,
    FailOnceOperator,
    FilterOperator,
    ForwardPartitioner,
    HashPartitioner,
    JobGraph,
    JobRunner,
    KeyByOperator,
    MapOperator,
    RebalancePartitioner,
    StreamOperator,
    chain_operators,
)


class CountOperator(StreamOperator):
    """Running count per key — the canonical stateful operator."""

    def open(self, ctx):
        super().open(ctx)
        self.counts = {}

    def process(self, element):
        self.counts[element.key] = self.counts.get(element.key, 0) + 1
        yield Element((element.key, self.counts[element.key]),
                      element.key, element.timestamp)

    def snapshot(self):
        return dict(self.counts)

    def restore(self, state):
        self.counts = dict(state)


def word_source(words, subtasks=2):
    chunks = [[] for _ in range(subtasks)]
    for i, word in enumerate(words):
        chunks[i % subtasks].append((word, None, i))
    return chunks


def wordcount_graph(fuse, fail_at=0, parallelism=2):
    graph = JobGraph("wordcount")
    graph.add_source("src", word_source(
        ["a", "b", "a", "c", "b", "a", "d", "a"], parallelism))
    graph.add_operator("key", lambda: KeyByOperator(lambda v: v),
                       parallelism)
    if fail_at:
        graph.add_operator("chaos", lambda: FailOnceOperator(fail_at, fuse),
                           parallelism)
    graph.add_operator("count", CountOperator, parallelism)
    graph.add_operator("sink", CollectSinkOperator, 1)
    graph.connect("src", "key", ForwardPartitioner)
    if fail_at:
        graph.connect("key", "chaos", ForwardPartitioner)
        graph.connect("chaos", "count", HashPartitioner)
    else:
        graph.connect("key", "count", HashPartitioner)
    graph.connect("count", "sink", HashPartitioner)
    graph.mark_sink("sink")
    return graph


EXPECTED = sorted([("a", 1), ("a", 2), ("a", 3), ("a", 4),
                   ("b", 1), ("b", 2), ("c", 1), ("d", 1)])


class TestBasicExecution:
    def test_wordcount(self):
        result = JobRunner(wordcount_graph([True])).run()
        assert sorted(result.values("sink")) == EXPECTED

    def test_parallelism_one(self):
        result = JobRunner(wordcount_graph([True], parallelism=1)).run()
        assert sorted(result.values("sink")) == EXPECTED

    def test_map_filter_pipeline(self):
        graph = JobGraph()
        graph.add_source("src", [[(i, None, i) for i in range(10)]])
        graph.add_operator("double", lambda: MapOperator(lambda v: v * 2))
        graph.add_operator("big", lambda: FilterOperator(lambda v: v > 8))
        graph.add_operator("sink", CollectSinkOperator)
        graph.connect("src", "double")
        graph.connect("double", "big")
        graph.connect("big", "sink")
        graph.mark_sink("sink")
        result = JobRunner(graph).run()
        assert sorted(result.values("sink")) == [10, 12, 14, 16, 18]

    def test_broadcast_edge(self):
        graph = JobGraph()
        graph.add_source("src", [[(1, None, 0)]])
        graph.add_operator("sink", CollectSinkOperator, parallelism=3)
        graph.connect("src", "sink", BroadcastPartitioner)
        graph.mark_sink("sink")
        result = JobRunner(graph, chaining=False).run()
        assert result.values("sink") == [1, 1, 1]

    def test_rebalance_edge_distributes(self):
        graph = JobGraph()
        graph.add_source("src", [[(i, None, i) for i in range(6)]])
        graph.add_operator("sink", CollectSinkOperator, parallelism=2)
        graph.connect("src", "sink", RebalancePartitioner)
        graph.mark_sink("sink")
        result = JobRunner(graph, chaining=False).run()
        assert sorted(result.values("sink")) == list(range(6))


class TestGraphValidation:
    def test_forward_edge_parallelism_mismatch(self):
        graph = JobGraph()
        graph.add_source("src", [[("x", None, 0)]])
        graph.add_operator("op", lambda: MapOperator(lambda v: v), 2)
        graph.connect("src", "op", ForwardPartitioner)
        with pytest.raises(PlanError, match="parallelism"):
            graph.validate()

    def test_cycle_detected(self):
        graph = JobGraph()
        graph.add_operator("a", lambda: MapOperator(lambda v: v))
        graph.add_operator("b", lambda: MapOperator(lambda v: v))
        graph.connect("a", "b")
        graph.connect("b", "a")
        with pytest.raises(PlanError, match="cycle"):
            graph.validate()

    def test_unknown_vertices(self):
        graph = JobGraph()
        with pytest.raises(PlanError):
            graph.connect("x", "y")
        with pytest.raises(PlanError):
            graph.mark_sink("x")

    def test_duplicate_vertex(self):
        graph = JobGraph()
        graph.add_operator("a", lambda: MapOperator(lambda v: v))
        with pytest.raises(PlanError):
            graph.add_operator("a", lambda: MapOperator(lambda v: v))


class TestChaining:
    def build(self):
        graph = JobGraph()
        graph.add_source("src", [[(i, None, i) for i in range(20)]])
        graph.add_operator("m1", lambda: MapOperator(lambda v: v + 1))
        graph.add_operator("m2", lambda: MapOperator(lambda v: v * 2))
        graph.add_operator("sink", CollectSinkOperator)
        graph.connect("src", "m1")
        graph.connect("m1", "m2")
        graph.connect("m2", "sink")
        graph.mark_sink("sink")
        return graph

    def test_chained_graph_is_smaller(self):
        chained = chain_operators(self.build())
        assert len(chained.vertices) == 1
        assert "m1+m2+sink" in chained.vertices

    def test_chaining_preserves_results(self):
        # Results stay addressable under the original sink name even when
        # the sink vertex was fused into a chain.
        unchained = JobRunner(self.build(), chaining=False).run()
        chained = JobRunner(self.build(), chaining=True).run()
        assert sorted(unchained.values("sink")) == \
            sorted(chained.values("sink"))

    def test_chaining_reduces_messages(self):
        unchained = JobRunner(self.build(), chaining=False).run()
        chained = JobRunner(self.build(), chaining=True).run()
        assert chained.messages_processed < unchained.messages_processed

    def test_hash_edges_not_fused(self):
        graph = wordcount_graph([True])
        chained = chain_operators(graph)
        # The hash edges around "count" survive chaining.
        assert any(v.startswith("count") or v == "count"
                   for v in chained.vertices)

    def test_chained_operator_cascades(self):
        chain = ChainedOperator([
            MapOperator(lambda v: v + 1),
            FilterOperator(lambda v: v % 2 == 0),
            MapOperator(lambda v: v * 10),
        ])
        chain.open(OperatorContext())
        assert [e.value for e in chain.process(Element(1))] == [20]
        assert [e.value for e in chain.process(Element(2))] == []


class TestCheckpointingAndRecovery:
    def test_checkpoints_complete(self):
        result = JobRunner(wordcount_graph([True]),
                           checkpoint_interval=2).run()
        assert result.completed_checkpoints  # at least one completed
        assert sorted(result.values("sink")) == EXPECTED

    def test_recovery_is_exactly_once(self):
        clean = JobRunner(wordcount_graph([True]),
                          checkpoint_interval=1).run()
        failed = JobRunner(wordcount_graph([False], fail_at=3),
                           checkpoint_interval=1).run()
        assert failed.recoveries == 1
        assert sorted(failed.values("sink")) == \
            sorted(clean.values("sink"))

    def test_recovery_without_checkpoints_restarts_from_scratch(self):
        # interval=None means no barriers: recovery replays everything;
        # exactly-once still holds because no epoch was ever committed
        # before the failure (all output was pending).
        clean = JobRunner(wordcount_graph([True])).run()
        failed = JobRunner(wordcount_graph([False], fail_at=3)).run()
        assert failed.recoveries == 1
        assert sorted(failed.values("sink")) == \
            sorted(clean.values("sink"))

    def test_restart_budget_exhausted(self):
        class AlwaysFail(StreamOperator):
            def process(self, element):
                from repro.runtime import JobFailure
                raise JobFailure("boom")

        graph = JobGraph()
        graph.add_source("src", [[(1, None, 0)]])
        graph.add_operator("bad", AlwaysFail)
        graph.connect("src", "bad")
        from repro.runtime import JobFailure
        with pytest.raises(JobFailure):
            JobRunner(graph, max_restarts=2).run()
