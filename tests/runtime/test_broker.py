"""Tests for the Kafka-style broker substitute."""

import pytest

from repro.core import BrokerError
from repro.runtime import Broker, ConsumerGroup, default_hash, replay


@pytest.fixture
def broker():
    broker = Broker()
    broker.create_topic("events", partitions=3)
    return broker


class TestTopics:
    def test_create_and_lookup(self, broker):
        assert broker.topic("events").partition_count == 3
        assert broker.topic_names() == ["events"]

    def test_duplicate_topic_rejected(self, broker):
        with pytest.raises(BrokerError):
            broker.create_topic("events")

    def test_unknown_topic(self, broker):
        with pytest.raises(BrokerError):
            broker.topic("nope")

    def test_zero_partitions_rejected(self, broker):
        with pytest.raises(BrokerError):
            broker.create_topic("bad", partitions=0)


class TestProduceFetch:
    def test_offsets_increase_per_partition(self, broker):
        r1 = broker.produce("events", "a", key="k", timestamp=1)
        r2 = broker.produce("events", "b", key="k", timestamp=2)
        assert r1.partition == r2.partition  # same key, same partition
        assert (r1.offset, r2.offset) == (0, 1)

    def test_key_routing_is_deterministic(self, broker):
        partitions = {broker.produce("events", i, key="fixed").partition
                      for i in range(10)}
        assert len(partitions) == 1

    def test_keyless_round_robin(self, broker):
        partitions = [broker.produce("events", i).partition
                      for i in range(6)]
        assert sorted(set(partitions)) == [0, 1, 2]

    def test_fetch_from_offset(self, broker):
        for i in range(5):
            broker.produce("events", i, key="k")
        partition = broker.produce("events", 5, key="k").partition
        records = broker.fetch("events", partition, 2)
        assert [r.value for r in records] == [2, 3, 4, 5]

    def test_fetch_with_max(self, broker):
        for i in range(5):
            broker.produce("events", i, partition=0)
        records = broker.fetch("events", 0, 0, max_records=2)
        assert [r.value for r in records] == [0, 1]

    def test_explicit_partition_bounds_checked(self, broker):
        with pytest.raises(BrokerError):
            broker.produce("events", "x", partition=7)

    def test_negative_offset_rejected(self, broker):
        with pytest.raises(BrokerError):
            broker.fetch("events", 0, -1)

    def test_end_offsets(self, broker):
        broker.produce("events", "x", partition=1)
        assert broker.end_offsets("events") == [0, 1, 0]

    def test_replay_covers_everything(self, broker):
        for i in range(9):
            broker.produce("events", i)
        assert sorted(r.value for r in replay(broker, "events")) == \
            list(range(9))


class TestConsumerGroups:
    def test_single_member_gets_all_partitions(self, broker):
        group = ConsumerGroup(broker, "g", ["events"])
        assignment = group.join("m1")
        assert len(assignment) == 3

    def test_rebalance_splits_partitions(self, broker):
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        group.join("m2")
        a1 = group.assignment("m1")
        a2 = group.assignment("m2")
        assert len(a1) + len(a2) == 3
        assert not set(a1) & set(a2)

    def test_poll_advances_position(self, broker):
        broker.produce("events", "a", partition=0)
        broker.produce("events", "b", partition=0)
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        first = group.poll("m1")
        assert [r.value for r in first] == ["a", "b"]
        assert group.poll("m1") == []

    def test_uncommitted_reads_replay_after_rebalance(self, broker):
        broker.produce("events", "a", partition=0)
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        group.poll("m1")          # read but do not commit
        group.join("m2")          # rebalance resets to committed offsets
        polled = group.poll("m1") + group.poll("m2")
        assert [r.value for r in polled] == ["a"]

    def test_committed_reads_survive_rebalance(self, broker):
        broker.produce("events", "a", partition=0)
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        group.poll("m1")
        group.commit("m1")
        group.join("m2")
        assert group.poll("m1") + group.poll("m2") == []

    def test_lag(self, broker):
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        broker.produce("events", "a", partition=0)
        broker.produce("events", "b", partition=1)
        assert group.lag() == 2
        group.poll("m1")
        group.commit("m1")
        assert group.lag() == 0

    def test_duplicate_member_rejected(self, broker):
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        with pytest.raises(BrokerError):
            group.join("m1")

    def test_member_leave_rebalances(self, broker):
        group = ConsumerGroup(broker, "g", ["events"])
        group.join("m1")
        group.join("m2")
        group.leave("m2")
        assert len(group.assignment("m1")) == 3


class TestDefaultHash:
    def test_stable_across_calls(self):
        assert default_hash("stream") == default_hash("stream")

    def test_none_is_zero(self):
        assert default_hash(None) == 0

    def test_int_keys_are_mixed(self):
        # Raw passthrough (the old behaviour) made `key % partitions`
        # inherit the key space's stride: keys 0, 4, 8, … across 4
        # partitions all hit partition 0.  Ints hash like every other
        # type now.
        assert default_hash(42) == default_hash(42)
        spread = {default_hash(k) % 4 for k in range(0, 64, 4)}
        assert spread == {0, 1, 2, 3}

    def test_strided_int_keys_spread_across_partitions(self):
        counts = [0, 0, 0, 0]
        for key in range(0, 400, 4):
            counts[default_hash(key) % 4] += 1
        # Near-uniform: every partition sees a meaningful share.
        assert all(count >= 10 for count in counts)
