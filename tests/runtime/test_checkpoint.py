"""Regression tests for the checkpoint coordinator.

Two bugs fixed here:

* **Dual-role completeness** — a participant that is both a source and a
  stateful operator used to mark a checkpoint complete with only its
  offset report, so restore silently dropped its state.  Expectations
  are now tracked per role.
* **Barrier-id reuse after restore** — a restarted job's replaying
  sources re-derived old barrier ids and re-opened snapshots that were
  already recovery points.  The coordinator now retires ids at or below
  the restored checkpoint and discards partial snapshots from the
  crashed attempt.
"""

import pytest

from repro.core import StateError
from repro.runtime.checkpoint import CheckpointCoordinator, \
    CheckpointSnapshot


SRC = ("src", 0)
OP = ("op", 0)


class TestDualRoleCompleteness:
    def coordinator(self):
        # "src" plays both roles: it must report its offset AND its state.
        return CheckpointCoordinator(2, sources={SRC},
                                     operators={SRC, OP})

    def test_offset_report_alone_does_not_complete(self):
        coordinator = self.coordinator()
        coordinator.report_source(1, "src", 0, 4)
        coordinator.report_operator(1, "op", 0, {"n": 1})
        # Regression: the union of reported keys used to cover the flat
        # expected set here, completing the checkpoint without src's state.
        assert coordinator.latest_complete() is None

    def test_both_roles_reported_completes_with_state_kept(self):
        coordinator = self.coordinator()
        coordinator.report_source(1, "src", 0, 4)
        coordinator.report_operator(1, "op", 0, {"n": 1})
        coordinator.report_operator(1, "src", 0, {"buffered": [7]})
        latest = coordinator.latest_complete()
        assert latest is not None and latest.checkpoint_id == 1
        assert latest.operator_state[SRC] == {"buffered": [7]}
        assert latest.source_offsets[SRC] == 4
        assert latest.duration is not None

    def test_snapshot_expected_union_is_preserved_for_display(self):
        snapshot = CheckpointSnapshot(1, expected_operators={SRC, OP},
                                      expected_sources={SRC})
        assert snapshot.expected == {SRC, OP}

    def test_interval_must_be_positive(self):
        with pytest.raises(StateError):
            CheckpointCoordinator(0)


class TestRestoreFloor:
    def coordinator(self):
        coordinator = CheckpointCoordinator(2, sources={SRC},
                                            operators={OP})
        for checkpoint_id in (1, 2):
            coordinator.report_source(checkpoint_id, "src", 0,
                                      checkpoint_id * 2)
            coordinator.report_operator(checkpoint_id, "op", 0,
                                        {"upto": checkpoint_id})
        # Checkpoint 3 is the crashed attempt's partial work: the barrier
        # reached the source but died before the operator aligned.
        coordinator.report_source(3, "src", 0, 6)
        return coordinator

    def test_partial_and_newer_snapshots_are_discarded(self):
        coordinator = self.coordinator()
        coordinator.reset_for_restore(2)
        assert coordinator.completed_ids() == [1, 2]
        # Replaying sources recount record 6: barrier 3 is re-derived
        # fresh, not merged into the dead partial snapshot.
        coordinator.report_source(3, "src", 0, 6)
        coordinator.report_operator(3, "op", 0, {"upto": 3})
        assert coordinator.latest_complete().checkpoint_id == 3

    def test_retired_barrier_ids_are_not_reinjected(self):
        coordinator = self.coordinator()
        coordinator.reset_for_restore(2)
        # Replay re-passes the record counts that produced barriers 1-2.
        assert coordinator.barrier_due(2) is None
        assert coordinator.barrier_due(4) is None
        # Regression: these used to come due again and re-open completed
        # snapshots with replay-time reports.
        assert coordinator.barrier_due(6) == 3

    def test_restart_from_scratch_discards_everything(self):
        coordinator = self.coordinator()
        coordinator.reset_for_restore(None)
        assert coordinator.completed_ids() == []
        assert coordinator.barrier_due(2) == 1   # numbering starts over
