"""Tests for the experiment harness and workload generators."""

import json

import pytest

import repro.obs as obs
from repro.bench import (
    ExperimentTable,
    assert_dominates,
    assert_monotone,
    bench_result,
    obs_snapshot,
    out_of_order_readings,
    person_rows,
    rdf_sensor_triples,
    room_observations,
    social_edges,
    timed,
    transactions,
    write_bench_json,
    zipfian_keys,
)


class TestExperimentTable:
    def test_render_aligns_columns(self):
        table = ExperimentTable("demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 123456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_wrong_arity_rejected(self):
        table = ExperimentTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = ExperimentTable("demo", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_float_formatting(self):
        table = ExperimentTable("demo", ["v"])
        table.add_row(0.123456)
        table.add_row(12345.678)
        text = table.render()
        assert "0.123" in text
        assert "12,345.7" in text


class TestAssertions:
    def test_monotone(self):
        assert_monotone([1, 2, 3])
        assert_monotone([3, 2, 1], increasing=False)
        assert_monotone([1, 0.95, 2], increasing=True, tolerance=0.1)
        with pytest.raises(AssertionError):
            assert_monotone([1, 3, 2])

    def test_dominates(self):
        assert_dominates([1, 2], [10, 20], factor=2)
        with pytest.raises(AssertionError):
            assert_dominates([6, 2], [10, 20], factor=2)

    def test_timed_returns_result_and_duration(self):
        result, seconds = timed(lambda: sum(range(100)))
        assert result == 4950
        assert seconds >= 0


class TestBenchResult:
    def test_obs_snapshot_captures_registry_and_traces(self):
        obs.enable()
        obs.get_registry().counter("bench.demo").inc(3)
        with obs.get_tracer().span("bench.run"):
            pass
        snapshot = obs_snapshot()
        assert snapshot["enabled"] is True
        assert any(m["name"] == "bench.demo" and m["value"] == 3
                   for m in snapshot["metrics"])
        assert snapshot["traces"][0]["name"] == "bench.run"

    def test_obs_snapshot_disabled_still_reports_metrics(self):
        obs.get_registry().counter("bench.demo").inc()
        snapshot = obs_snapshot()
        assert snapshot["enabled"] is False
        assert "traces" not in snapshot
        assert len(snapshot["metrics"]) == 1

    def test_bench_result_attaches_obs_and_table(self):
        table = ExperimentTable("demo", ["n", "seconds"])
        table.add_row(100, 0.5)
        result = bench_result("fig3", table=table, rows=100)
        assert result["name"] == "fig3"
        assert result["rows"] == 100
        assert result["table"]["columns"] == ["n", "seconds"]
        assert result["table"]["rows"] == [[100, 0.5]]
        assert "obs" in result

    def test_write_bench_json(self, tmp_path):
        obs.get_registry().counter("bench.rows").inc(7)
        path = write_bench_json(bench_result("demo"), tmp_path)
        assert path.name == "BENCH_demo.json"
        payload = json.loads(path.read_text())
        assert payload["name"] == "demo"
        assert any(m["name"] == "bench.rows" and m["value"] == 7
                   for m in payload["obs"]["metrics"])

    def test_write_bench_json_requires_name(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json({"rows": 1}, tmp_path)

    def test_write_bench_json_defaults_obs_section(self, tmp_path):
        path = write_bench_json({"name": "bare"}, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["obs"]["enabled"] is False


class TestWorkloads:
    def test_room_observations_deterministic(self):
        assert room_observations(20) == room_observations(20)
        assert room_observations(20, seed=1) != room_observations(20,
                                                                  seed=2)

    def test_room_observations_shape(self):
        rows = room_observations(30, persons=5, rooms=2)
        timestamps = [t for _, t in rows]
        assert timestamps == sorted(timestamps)
        assert all(0 <= row["id"] < 5 for row, _ in rows)
        assert all(row["room"] in ("room0", "room1") for row, _ in rows)

    def test_person_rows_cover_ids(self):
        rows = person_rows(7)
        assert [r["id"] for r in rows] == list(range(7))

    def test_transactions_heavy_tail(self):
        rows = transactions(500)
        large = sum(1 for row, _ in rows if row["amount"] > 100)
        assert 0.05 < large / len(rows) < 0.35

    def test_out_of_order_bounded(self):
        arrivals = out_of_order_readings(100, disorder=5)
        max_seen = -1
        for (_, _), event_time in arrivals:
            # Lateness relative to the running maximum is bounded.
            assert max_seen - event_time <= 5
            max_seen = max(max_seen, event_time)

    def test_out_of_order_zero_disorder_is_sorted(self):
        arrivals = out_of_order_readings(50, disorder=0)
        times = [t for _, t in arrivals]
        assert times == sorted(times)

    def test_social_edges_no_self_loops(self):
        for src, label, dst, _ in social_edges(100):
            assert src != dst
            assert label in ("follows", "likes", "blocks")

    def test_rdf_sensor_triples_time_ordered(self):
        triples = rdf_sensor_triples(40)
        times = [t for _, t in triples]
        assert times == sorted(times)

    def test_zipfian_keys_skewed(self):
        keys = zipfian_keys(2000, keys=10)
        assert all(0 <= k < 10 for k in keys)
        # The hottest key dominates.
        assert keys.count(0) > keys.count(9) * 2
