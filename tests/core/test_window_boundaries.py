"""Direct boundary tests for the window edge cases the oracle exercises.

Covers the satellite bugs: sliding windows with nonzero offset and gappy
``slide > size`` parameters (where the sparse S2R change-log used to keep
elements visible forever), and SteppedRangeWindow's boundary helpers at
exact slide boundaries.
"""

import pytest

from repro.core import Schema, Stream
from repro.core.operators import stream_to_relation
from repro.core.relation import Bag
from repro.core.windows import (
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
)

SCHEMA = Schema(["id", "v"])


def _stream(pairs):
    return Stream.of_records(
        SCHEMA, [({"id": i, "v": 0}, t) for i, t in enumerate(pairs)])


class TestSlidingWindowAssignScope:
    @pytest.mark.parametrize("size,slide,offset", [
        (3, 1, 0), (3, 2, 1), (5, 2, 0), (1, 1, 0),
        (3, 7, 5),   # gappy: slide > size, nonzero offset
        (2, 9, 4),   # gappy
        (4, 4, 3),   # tumbling degenerate with offset
    ])
    def test_assign_is_exactly_boundary_windows_containing_element(
            self, size, slide, offset):
        window = SlidingWindow(size, slide, offset)
        boundaries = [b for b in range(-2 * slide - size, 60)
                      if (b - window.offset) % slide == 0]
        for e in range(0, 30):
            truth = [(b, b + size) for b in boundaries if b <= e < b + size]
            got = [(w.start, w.end) for w in window.assign(e)]
            assert got == truth, (size, slide, offset, e)

    @pytest.mark.parametrize("size,slide,offset", [
        (3, 1, 0), (3, 2, 1), (5, 2, 0), (3, 7, 5), (2, 9, 4), (4, 4, 3),
    ])
    def test_scope_is_latest_boundary_window(self, size, slide, offset):
        window = SlidingWindow(size, slide, offset)
        for t in range(0, 30):
            scope = window.scope(t)
            assert (scope.start - window.offset) % slide == 0
            assert scope.start <= t < scope.start + slide
            assert scope.end == scope.start + size

    @pytest.mark.parametrize("size,slide,offset", [
        (3, 1, 0), (3, 2, 1), (5, 2, 0), (3, 7, 5), (2, 9, 4), (4, 4, 3),
    ])
    def test_scope_and_assign_agree_on_visibility(self, size, slide, offset):
        """An element is visible at τ exactly when one of its assigned
        windows is the window in force — the two views must never
        disagree, offset or not, gappy or not."""
        window = SlidingWindow(size, slide, offset)
        stream = _stream([0, 1, 2, 5, 5, 9, 12, 20])
        for tau in range(0, 45):
            in_force = window.scope(tau)
            scope_view = Bag(e.value for e in stream.up_to(tau)
                             if e.timestamp in in_force)
            assign_view = Bag(
                e.value for e in stream.up_to(tau)
                if any(w == in_force for w in window.assign(e.timestamp)))
            assert scope_view == assign_view, (size, slide, offset, tau)

    def test_expiry_boundary_is_first_boundary_after_element(self):
        window = SlidingWindow(3, 7, 5)
        # Boundaries sit at ..., 5, 12, 19, ... (offset 5 mod 7).
        assert window.expiry_boundary(5) == 12
        assert window.expiry_boundary(11) == 12
        assert window.expiry_boundary(12) == 19
        # For gappy windows the expiry exceeds t + size — the historical
        # bug capped it there and never expired anything.
        assert window.expiry_boundary(5) > 5 + window.size

    def test_gappy_window_elements_expire_in_sparse_changelog(self):
        """Regression: slide > size kept elements visible forever because
        no expiry instant fell inside ``(t, t + size]``."""
        window = SlidingWindow(3, 7, 5)
        stream = _stream([5, 6])
        sparse = stream_to_relation(stream, window)
        dense = stream_to_relation(stream, window, instants=range(40))
        for t in range(40):
            assert sparse.at(t) == dense.at(t), t
        # Concretely: both elements visible at t=11, gone at t=12.
        assert len(sparse.at(11)) == 2
        assert len(sparse.at(12)) == 0

    def test_nonzero_offset_sparse_matches_dense(self):
        window = SlidingWindow(4, 3, 2)
        stream = _stream([0, 0, 1, 4, 7, 7, 13])
        sparse = stream_to_relation(stream, window)
        dense = stream_to_relation(stream, window, instants=range(40))
        for t in range(40):
            assert sparse.at(t) == dense.at(t), t


class TestSteppedRangeBoundaries:
    @pytest.mark.parametrize("range_,slide", [
        (1, 1), (2, 2), (4, 2), (2, 4), (3, 5), (5, 3), (6, 6),
    ])
    def test_helpers_match_scope_ground_truth(self, range_, slide):
        window = SteppedRangeWindow(range_, slide)
        for e in range(0, 4 * slide + range_ + 2):
            visible = [tau for tau in range(0, 8 * slide + 2 * range_)
                       if e in window.scope(tau)]
            first = window.first_boundary_covering(e)
            expiry = window.expiry_boundary(e)
            if visible:
                assert first == visible[0], (range_, slide, e)
                assert expiry == visible[-1] + 1, (range_, slide, e)
            else:
                assert first >= expiry, (range_, slide, e)

    @pytest.mark.parametrize("range_,slide", [(2, 2), (4, 2), (3, 3)])
    def test_element_at_exact_slide_boundary(self, range_, slide):
        """An element landing exactly on a slide boundary becomes visible
        at that same boundary (enter == its own timestamp) and expires at
        the boundary ceiling of ``t + range``."""
        window = SteppedRangeWindow(range_, slide)
        for k in range(0, 5):
            t = k * slide
            assert window.first_boundary_covering(t) == t
            assert t in window.scope(t)
            expiry = window.expiry_boundary(t)
            assert expiry % slide == 0
            assert t not in window.scope(expiry)
            assert t in window.scope(expiry - slide)

    def test_expiry_at_boundary_is_not_off_by_one(self):
        window = SteppedRangeWindow(2, 2)
        # Element at t=2: visible via boundaries 2 (scope [1,3)) and
        # nothing later — expiry boundary is 4, not 6.
        assert window.first_boundary_covering(2) == 2
        assert window.expiry_boundary(2) == 4
        assert 2 in window.scope(3)      # boundary still 2 at tau=3
        assert 2 not in window.scope(4)  # scope [3,5) at tau=4


class TestTumblingOffsetBoundaries:
    @pytest.mark.parametrize("size,offset", [(4, 0), (4, 1), (3, 2), (5, 5)])
    def test_assign_unique_and_aligned(self, size, offset):
        window = TumblingWindow(size, offset)
        for e in range(0, 25):
            (assigned,) = window.assign(e)
            assert e in assigned
            assert (assigned.start - window.offset) % size == 0
            assert window.scope(e) == assigned

    def test_sparse_matches_dense_with_offset(self):
        window = TumblingWindow(4, 3)
        stream = _stream([0, 2, 3, 3, 6, 11])
        sparse = stream_to_relation(stream, window)
        dense = stream_to_relation(stream, window, instants=range(30))
        for t in range(30):
            assert sparse.at(t) == dense.at(t), t
