"""Tests for schemas and records."""

import pytest

from repro.core import Record, Schema, SchemaError, records_from_dicts


@pytest.fixture
def person_schema():
    return Schema(["id", "name", "age"], [int, str, int])


class TestSchema:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_type_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "b"], [int])

    def test_index_of_exact(self, person_schema):
        assert person_schema.index_of("name") == 1

    def test_index_of_suffix_resolution(self):
        schema = Schema(["P.id", "P.name"])
        assert schema.index_of("id") == 0

    def test_index_of_ambiguous(self):
        schema = Schema(["P.id", "O.id"])
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.index_of("id")

    def test_index_of_unknown(self, person_schema):
        with pytest.raises(SchemaError, match="unknown"):
            person_schema.index_of("salary")

    def test_contains(self, person_schema):
        assert "name" in person_schema
        assert "salary" not in person_schema

    def test_qualify(self, person_schema):
        qualified = person_schema.qualify("P")
        assert qualified.fields == ("P.id", "P.name", "P.age")
        # Already-qualified fields are untouched.
        assert qualified.qualify("Q").fields == qualified.fields

    def test_unqualified(self):
        schema = Schema(["P.id", "P.name"]).unqualified()
        assert schema.fields == ("id", "name")

    def test_concat(self, person_schema):
        other = Schema(["city"])
        assert person_schema.concat(other).fields == (
            "id", "name", "age", "city")

    def test_project_preserves_types(self, person_schema):
        projected = person_schema.project(["age", "id"])
        assert projected.fields == ("age", "id")
        assert projected.types == (int, int)

    def test_validate_arity(self, person_schema):
        with pytest.raises(SchemaError):
            person_schema.validate((1, "x"))

    def test_validate_types(self, person_schema):
        with pytest.raises(SchemaError):
            person_schema.validate(("oops", "x", 3))

    def test_validate_accepts_none_values(self, person_schema):
        person_schema.validate((1, None, None))

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))
        assert Schema(["a"]) != Schema(["b"])


class TestRecord:
    def test_access_by_name_and_index(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record["name"] == "ada"
        assert record[0] == 1

    def test_from_mapping(self, person_schema):
        record = Record.from_mapping(
            person_schema, {"id": 1, "name": "ada", "age": 36})
        assert record.values == (1, "ada", 36)

    def test_from_mapping_missing_field(self, person_schema):
        with pytest.raises(SchemaError, match="missing"):
            Record.from_mapping(person_schema, {"id": 1})

    def test_get_with_default(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record.get("salary", 0) == 0

    def test_equality_depends_on_field_names(self):
        a = Record(Schema(["x"]), (1,))
        b = Record(Schema(["y"]), (1,))
        assert a != b
        assert a == Record(Schema(["x"]), (1,))

    def test_hashable(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record in {record}

    def test_project(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record.project(["name"]).values == ("ada",)

    def test_concat(self):
        left = Record(Schema(["a"]), (1,))
        right = Record(Schema(["b"]), (2,))
        combined = left.concat(right)
        assert combined.values == (1, 2)
        assert combined.schema.fields == ("a", "b")

    def test_key(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record.key(["age", "id"]) == (36, 1)

    def test_as_dict(self, person_schema):
        record = Record(person_schema, (1, "ada", 36))
        assert record.as_dict() == {"id": 1, "name": "ada", "age": 36}

    def test_with_schema_relabels(self):
        record = Record(Schema(["a"]), (1,))
        relabeled = record.with_schema(Schema(["b"]))
        assert relabeled["b"] == 1

    def test_with_schema_arity_checked(self):
        record = Record(Schema(["a"]), (1,))
        with pytest.raises(SchemaError):
            record.with_schema(Schema(["b", "c"]))

    def test_records_from_dicts(self, person_schema):
        rows = [{"id": 1, "name": "ada", "age": 36},
                {"id": 2, "name": "bob", "age": 41}]
        records = records_from_dicts(person_schema, rows)
        assert [r["name"] for r in records] == ["ada", "bob"]
