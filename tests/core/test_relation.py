"""Tests for bags and time-varying relations (paper Definition 3.1)."""

import pytest

from repro.core import Bag, TimeError, TimeVaryingRelation


class TestBag:
    def test_multiplicity(self):
        bag = Bag(["a", "a", "b"])
        assert bag.count("a") == 2
        assert len(bag) == 3
        assert bag.support_size == 2

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Bag.from_counts({"a": -1})

    def test_from_counts_drops_zero(self):
        bag = Bag.from_counts({"a": 0, "b": 2})
        assert "a" not in bag
        assert bag.count("b") == 2

    def test_add_and_discard(self):
        bag = Bag()
        bag.add("x", 3)
        assert bag.discard("x") == 1
        assert bag.count("x") == 2
        assert bag.discard("x", 5) == 2
        assert "x" not in bag

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            Bag().add("x", -1)

    def test_iteration_respects_multiplicity(self):
        assert sorted(Bag(["a", "a", "b"])) == ["a", "a", "b"]

    def test_union_is_additive(self):
        assert Bag(["a"]).union(Bag(["a", "b"])) == Bag(["a", "a", "b"])

    def test_difference_is_monus(self):
        assert Bag(["a", "a", "b"]).difference(Bag(["a", "c"])) == \
            Bag(["a", "b"])

    def test_intersection_is_min(self):
        assert Bag(["a", "a", "b"]).intersection(Bag(["a", "b", "b"])) == \
            Bag(["a", "b"])

    def test_max_union(self):
        assert Bag(["a", "a"]).max_union(Bag(["a", "b"])) == \
            Bag(["a", "a", "b"])

    def test_distinct(self):
        assert Bag(["a", "a", "b"]).distinct() == Bag(["a", "b"])

    def test_subbag(self):
        assert Bag(["a"]) <= Bag(["a", "a", "b"])
        assert not Bag(["a", "a", "a"]) <= Bag(["a", "a"])

    def test_map_merges_collisions(self):
        bag = Bag([1, -1, 2]).map(abs)
        assert bag.count(1) == 2

    def test_filter(self):
        assert Bag([1, 2, 3]).filter(lambda v: v > 1) == Bag([2, 3])

    def test_copy_is_independent(self):
        bag = Bag(["a"])
        clone = bag.copy()
        clone.add("b")
        assert "b" not in bag

    def test_hashable(self):
        assert hash(Bag(["a", "a"])) == hash(Bag(["a", "a"]))


class TestTimeVaryingRelation:
    def test_empty_before_first_change(self):
        tvr = TimeVaryingRelation()
        tvr.set_at(10, Bag(["x"]))
        assert tvr.at(9) == Bag()
        assert tvr.at(10) == Bag(["x"])

    def test_at_between_change_points(self):
        tvr = TimeVaryingRelation.from_snapshots(
            [(0, Bag(["a"])), (10, Bag(["b"]))])
        assert tvr.at(5) == Bag(["a"])
        assert tvr.at(10) == Bag(["b"])
        assert tvr.at(100) == Bag(["b"])

    def test_change_points_must_increase(self):
        tvr = TimeVaryingRelation()
        tvr.set_at(5, Bag(["a"]))
        with pytest.raises(TimeError):
            tvr.set_at(5, Bag(["b"]))

    def test_coalesce_merges_identical_states(self):
        tvr = TimeVaryingRelation()
        tvr.set_at(0, Bag(["a"]))
        tvr.set_at(5, Bag(["a"]))  # coalesced away
        assert tvr.change_points() == [0]

    def test_no_coalesce_keeps_explicit_snapshots(self):
        tvr = TimeVaryingRelation()
        tvr.set_at(0, Bag(["a"]))
        tvr.set_at(5, Bag(["a"]), coalesce=False)
        assert tvr.change_points() == [0, 5]

    def test_pointwise_equality(self):
        a = TimeVaryingRelation.from_snapshots(
            [(0, Bag(["x"])), (10, Bag(["y"]))])
        b = TimeVaryingRelation.from_snapshots(
            [(0, Bag(["x"])), (5, Bag(["x"])), (10, Bag(["y"]))])
        assert a == b  # the redundant change point at 5 doesn't matter

    def test_pointwise_inequality(self):
        a = TimeVaryingRelation.from_snapshots([(0, Bag(["x"]))])
        b = TimeVaryingRelation.from_snapshots([(0, Bag(["y"]))])
        assert a != b

    def test_lift_unary(self):
        tvr = TimeVaryingRelation.from_snapshots(
            [(0, Bag([1, 2])), (10, Bag([3]))])
        doubled = tvr.lift(lambda bag: bag.map(lambda v: v * 2))
        assert doubled.at(0) == Bag([2, 4])
        assert doubled.at(10) == Bag([6])

    def test_lift_binary_uses_union_of_change_points(self):
        left = TimeVaryingRelation.from_snapshots([(0, Bag(["l"]))])
        right = TimeVaryingRelation.from_snapshots([(5, Bag(["r"]))])
        combined = left.lift(Bag.union, right)
        assert combined.at(0) == Bag(["l"])
        assert combined.at(5) == Bag(["l", "r"])

    def test_restricted_sampling(self):
        tvr = TimeVaryingRelation.from_snapshots([(0, Bag(["a"]))])
        samples = tvr.restricted([0, 7])
        assert samples == [(0, Bag(["a"])), (7, Bag(["a"]))]
