"""Tests for the Stream abstraction (paper Definition 2.2)."""

import pytest

from repro.core import Schema, Stream, TimeError, TimeKind, merge_streams


@pytest.fixture
def stream():
    return Stream.from_pairs([("a", 1), ("b", 3), ("c", 3), ("d", 7)])


class TestAppend:
    def test_event_time_allows_contemporary_data(self):
        s = Stream(kind=TimeKind.EVENT_TIME)
        s.append("a", 5)
        s.append("b", 5)
        assert len(s) == 2

    def test_event_time_rejects_regression(self):
        s = Stream(kind=TimeKind.EVENT_TIME)
        s.append("a", 5)
        with pytest.raises(TimeError):
            s.append("b", 4)

    def test_processing_time_rejects_ties(self):
        s = Stream(kind=TimeKind.PROCESSING_TIME)
        s.append("a", 5)
        with pytest.raises(TimeError):
            s.append("b", 5)

    def test_extend(self):
        s = Stream()
        s.extend([("a", 1), ("b", 2)])
        assert s.values() == ["a", "b"]


class TestAccessors:
    def test_len_iter_getitem(self, stream):
        assert len(stream) == 4
        assert [e.value for e in stream] == ["a", "b", "c", "d"]
        assert stream[1].value == "b"
        assert stream[1].timestamp == 3

    def test_min_max_timestamp(self, stream):
        assert stream.min_timestamp == 1
        assert stream.max_timestamp == 7

    def test_empty_stream_min_max(self):
        s = Stream()
        assert s.min_timestamp is None
        assert s.max_timestamp is None

    def test_distinct_timestamps(self, stream):
        assert stream.distinct_timestamps() == [1, 3, 7]

    def test_at_returns_bag_for_instant(self, stream):
        # S(3) is the finite set of tuples stamped 3 (Definition 2.2).
        assert stream.at(3) == ["b", "c"]
        assert stream.at(2) == []

    def test_between_half_open(self, stream):
        assert [e.value for e in stream.between(1, 3)] == ["a"]
        assert [e.value for e in stream.between(1, 4)] == ["a", "b", "c"]


class TestPrefix:
    def test_up_to_includes_boundary(self, stream):
        prefix = stream.up_to(3)
        assert prefix.values() == ["a", "b", "c"]

    def test_up_to_before_start_is_empty(self, stream):
        assert len(stream.up_to(0)) == 0

    def test_up_to_is_a_copy(self, stream):
        prefix = stream.up_to(3)
        prefix.append("x", 10)
        assert len(stream) == 4

    def test_prefixes_are_nested(self, stream):
        # The append-only model: S up to t1 is a prefix of S up to t2.
        early = stream.up_to(3).values()
        late = stream.up_to(7).values()
        assert late[:len(early)] == early


class TestTransforms:
    def test_map_preserves_timestamps(self, stream):
        mapped = stream.map(str.upper)
        assert mapped.values() == ["A", "B", "C", "D"]
        assert mapped.timestamps() == stream.timestamps()

    def test_filter(self, stream):
        kept = stream.filter(lambda v: v in ("b", "d"))
        assert kept.values() == ["b", "d"]
        assert kept.timestamps() == [3, 7]


class TestMerge:
    def test_merge_orders_by_timestamp(self):
        s1 = Stream.from_pairs([("a", 1), ("c", 5)])
        s2 = Stream.from_pairs([("b", 3)])
        merged = merge_streams(s1, s2)
        assert merged.values() == ["a", "b", "c"]

    def test_merge_requires_same_kind(self):
        s1 = Stream(kind=TimeKind.EVENT_TIME)
        s2 = Stream(kind=TimeKind.PROCESSING_TIME)
        with pytest.raises(TimeError):
            merge_streams(s1, s2)

    def test_merge_empty_args_rejected(self):
        with pytest.raises(TimeError):
            merge_streams()

    def test_of_records(self):
        schema = Schema(["room", "temp"])
        s = Stream.of_records(schema, [({"room": 1, "temp": 20.5}, 10)])
        assert s[0].value["room"] == 1
        assert s.schema == schema
