"""Tests for the time domain primitives (paper Definition 2.1)."""

import pytest

from repro.core import (
    Interval,
    LogicalClock,
    TimeError,
    TimeKind,
    check_progression,
    hours,
    millis,
    minutes,
    seconds,
)


class TestUnits:
    def test_millis_is_identity_on_ints(self):
        assert millis(42) == 42

    def test_seconds(self):
        assert seconds(2) == 2_000

    def test_minutes_matches_listing1_range(self):
        # Listing 1 uses [Range 15 min].
        assert minutes(15) == 900_000

    def test_hours(self):
        assert hours(1) == 3_600_000

    def test_fractional_units_truncate(self):
        assert seconds(1.5) == 1_500
        assert minutes(0.5) == 30_000


class TestProgression:
    def test_first_timestamp_always_ok(self):
        check_progression(None, 0, TimeKind.EVENT_TIME)
        check_progression(None, 0, TimeKind.PROCESSING_TIME)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(TimeError):
            check_progression(None, -1, TimeKind.EVENT_TIME)

    def test_event_time_allows_ties(self):
        check_progression(5, 5, TimeKind.EVENT_TIME)

    def test_event_time_rejects_regression(self):
        with pytest.raises(TimeError):
            check_progression(5, 4, TimeKind.EVENT_TIME)

    def test_processing_time_rejects_ties(self):
        with pytest.raises(TimeError):
            check_progression(5, 5, TimeKind.PROCESSING_TIME)

    def test_processing_time_strictly_increases(self):
        check_progression(5, 6, TimeKind.PROCESSING_TIME)


class TestInterval:
    def test_half_open_membership(self):
        window = Interval(10, 20)
        assert 10 in window
        assert 19 in window
        assert 20 not in window
        assert 9 not in window

    def test_empty_interval_allowed_but_contains_nothing(self):
        empty = Interval(5, 5)
        assert 5 not in empty
        assert empty.length == 0

    def test_reversed_interval_rejected(self):
        with pytest.raises(TimeError):
            Interval(10, 5)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(5, 15))
        assert not Interval(0, 10).overlaps(Interval(10, 20))

    def test_union_span(self):
        assert Interval(0, 5).union_span(Interval(10, 12)) == Interval(0, 12)

    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 5).intersect(Interval(5, 10)) is None

    def test_ordering(self):
        assert Interval(0, 5) < Interval(1, 2)
        assert Interval(0, 5) < Interval(0, 6)


class TestLogicalClock:
    def test_tick_advances_by_step(self):
        clock = LogicalClock(start=100, step=10)
        assert clock.now() == 100
        assert clock.tick() == 110
        assert clock.tick(3) == 140

    def test_advance_to(self):
        clock = LogicalClock()
        clock.advance_to(50)
        assert clock.now() == 50

    def test_cannot_go_backwards(self):
        clock = LogicalClock(start=10)
        with pytest.raises(TimeError):
            clock.advance_to(5)
        with pytest.raises(TimeError):
            clock.tick(-1)

    def test_zero_step_rejected(self):
        with pytest.raises(TimeError):
            LogicalClock(step=0)

    def test_instants_iterator(self):
        clock = LogicalClock(start=0, step=5)
        instants = clock.instants()
        assert [next(instants) for _ in range(3)] == [0, 5, 10]
