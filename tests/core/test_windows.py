"""Tests for window operators (paper Definition 2.4, Section 4.1.3)."""

import pytest

from repro.core import (
    CountWindow,
    LandmarkWindow,
    NowWindow,
    PartitionedWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    StreamElement,
    TumblingWindow,
    UnboundedWindow,
    Window,
    WindowError,
    merge_sessions,
    window_contents,
)


class TestTumbling:
    def test_partitions_time(self):
        w = TumblingWindow(size=10)
        assert w.assign(0) == [Window(0, 10)]
        assert w.assign(9) == [Window(0, 10)]
        assert w.assign(10) == [Window(10, 20)]

    def test_offset(self):
        w = TumblingWindow(size=10, offset=3)
        assert w.assign(3) == [Window(3, 13)]
        assert w.assign(2) == [Window(-7, 3)]

    def test_scope_equals_assign(self):
        w = TumblingWindow(size=10)
        assert w.scope(25) == Window(20, 30)

    def test_invalid_size(self):
        with pytest.raises(WindowError):
            TumblingWindow(size=0)

    def test_not_merging(self):
        assert not TumblingWindow(size=10).is_merging


class TestSliding:
    def test_element_belongs_to_overlapping_windows(self):
        w = SlidingWindow(size=10, slide=5)
        assert w.assign(7) == [Window(0, 10), Window(5, 15)]

    def test_degenerates_to_tumbling_when_slide_equals_size(self):
        w = SlidingWindow(size=10, slide=10)
        assert w.assign(7) == [Window(0, 10)]

    def test_sampling_window_when_slide_exceeds_size(self):
        w = SlidingWindow(size=5, slide=10)
        assert w.assign(12) == [Window(10, 15)]
        assert w.assign(7) == []  # falls in the gap

    def test_scope_latest_boundary(self):
        w = SlidingWindow(size=10, slide=5)
        assert w.scope(12) == Window(10, 20)

    def test_invalid_params(self):
        with pytest.raises(WindowError):
            SlidingWindow(size=0, slide=5)
        with pytest.raises(WindowError):
            SlidingWindow(size=5, slide=0)


class TestRange:
    def test_scope_covers_last_r_ticks_inclusive(self):
        w = RangeWindow(range_=15)
        scope = w.scope(100)
        assert 100 in scope
        assert 86 in scope
        assert 85 not in scope

    def test_scope_clamps_at_zero(self):
        assert RangeWindow(range_=100).scope(5) == Window(0, 6)

    def test_assign_not_supported(self):
        with pytest.raises(WindowError):
            RangeWindow(range_=15).assign(0)


class TestNowUnboundedLandmark:
    def test_now_single_instant(self):
        assert NowWindow().scope(42) == Window(42, 43)

    def test_unbounded_covers_everything_so_far(self):
        assert UnboundedWindow().scope(42) == Window(0, 43)

    def test_landmark_grows_from_fixed_point(self):
        w = LandmarkWindow(landmark=10)
        assert w.scope(42) == Window(10, 43)
        # Before the landmark the window is empty.
        assert w.scope(5).length == 0


class TestSessions:
    def test_proto_windows_extend_by_gap(self):
        w = SessionWindow(gap=5)
        assert w.assign(10) == [Window(10, 15)]
        assert w.is_merging

    def test_merge_overlapping_sessions(self):
        merged = merge_sessions(
            [Window(0, 5), Window(3, 8), Window(20, 25)])
        assert merged == [Window(0, 8), Window(20, 25)]

    def test_merge_adjacent_sessions(self):
        # Touching proto-windows belong to the same session.
        assert merge_sessions([Window(0, 5), Window(5, 10)]) == \
            [Window(0, 10)]

    def test_merge_empty(self):
        assert merge_sessions([]) == []

    def test_scope_unsupported(self):
        with pytest.raises(WindowError):
            SessionWindow(gap=5).scope(0)


class TestCountWindow:
    def test_last_n_elements(self):
        w = CountWindow(rows=2)
        elements = [StreamElement(v, t) for t, v in enumerate("abc")]
        assert [e.value for e in w.select(elements)] == ["b", "c"]

    def test_fewer_than_n(self):
        w = CountWindow(rows=5)
        elements = [StreamElement("a", 0)]
        assert [e.value for e in w.select(elements)] == ["a"]

    def test_invalid_rows(self):
        with pytest.raises(WindowError):
            CountWindow(rows=0)


class TestPartitionedWindow:
    def test_last_n_per_key_in_stream_order(self):
        w = PartitionedWindow(key_fn=lambda v: v[0], rows=1)
        elements = [
            StreamElement(("a", 1), 0),
            StreamElement(("b", 2), 1),
            StreamElement(("a", 3), 2),
        ]
        selected = w.select(elements)
        assert [e.value for e in selected] == [("b", 2), ("a", 3)]

    def test_rows_greater_than_history(self):
        w = PartitionedWindow(key_fn=lambda v: v, rows=10)
        elements = [StreamElement("x", 0), StreamElement("x", 1)]
        assert len(w.select(elements)) == 2


class TestWindowContents:
    def test_filters_by_interval(self):
        elements = [StreamElement("a", 1), StreamElement("b", 5)]
        assert [e.value
                for e in window_contents(elements, Window(0, 5))] == ["a"]
