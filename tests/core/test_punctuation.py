"""Tests for watermarks and punctuations."""

import pytest

from repro.core import (
    FINAL_WATERMARK,
    AscendingWatermarks,
    BoundedOutOfOrderness,
    PeriodicWatermarks,
    Punctuation,
    Watermark,
    WatermarkTracker,
)


class TestWatermark:
    def test_ordering(self):
        assert Watermark(5) < Watermark(6)

    def test_final(self):
        assert FINAL_WATERMARK.is_final
        assert not Watermark(100).is_final


class TestAscending:
    def test_trails_max_by_one(self):
        gen = AscendingWatermarks()
        assert gen.observe(10) == Watermark(9)
        assert gen.observe(12) == Watermark(11)

    def test_no_emission_on_stale_timestamp(self):
        gen = AscendingWatermarks()
        gen.observe(10)
        assert gen.observe(5) is None
        assert gen.current() == Watermark(9)

    def test_initial_current(self):
        assert AscendingWatermarks().current() == Watermark(-1)


class TestBoundedOutOfOrderness:
    def test_watermark_lags_by_bound(self):
        gen = BoundedOutOfOrderness(bound=3)
        assert gen.observe(10) == Watermark(6)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedOutOfOrderness(bound=-1)

    def test_late_element_does_not_regress_watermark(self):
        gen = BoundedOutOfOrderness(bound=0)
        gen.observe(10)
        gen.observe(3)
        assert gen.current() == Watermark(9)


class TestPeriodic:
    def test_emits_every_period(self):
        gen = PeriodicWatermarks(AscendingWatermarks(), period=3)
        assert gen.observe(1) is None
        assert gen.observe(2) is None
        assert gen.observe(3) == Watermark(2)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicWatermarks(AscendingWatermarks(), period=0)


class TestTracker:
    def test_combined_is_minimum(self):
        tracker = WatermarkTracker(channels=2)
        assert tracker.update(0, Watermark(10)) is None  # other still at -1
        assert tracker.update(1, Watermark(5)) == Watermark(5)
        assert tracker.current() == Watermark(5)

    def test_regression_ignored(self):
        tracker = WatermarkTracker(channels=1)
        tracker.update(0, Watermark(10))
        assert tracker.update(0, Watermark(4)) is None
        assert tracker.current() == Watermark(10)

    def test_needs_positive_channels(self):
        with pytest.raises(ValueError):
            WatermarkTracker(channels=0)


class TestPunctuation:
    def test_predicate_scope(self):
        punct = Punctuation(
            describes=lambda v: v["room"] == 42, label="room-42-done")
        assert punct.matches({"room": 42})
        assert not punct.matches({"room": 7})
