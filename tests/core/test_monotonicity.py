"""Tests for static monotonicity analysis and the incremental rewrite."""

import pytest

from repro.core import (
    AppendOnlyLog,
    Bag,
    IncrementalSPJ,
    MonotonicityClass,
    classify_operator,
    classify_plan,
)


class FakeNode:
    """Minimal PlanNode for the classifier."""

    def __init__(self, op_name, *children):
        self.op_name = op_name
        self.children = children


class TestClassifyOperator:
    @pytest.mark.parametrize("name", [
        "select", "project", "join", "union", "distinct", "SCAN"])
    def test_preserving(self, name):
        assert classify_operator(name) is MonotonicityClass.MONOTONIC

    @pytest.mark.parametrize("name", [
        "difference", "aggregate", "window", "dstream", "limit"])
    def test_breaking(self, name):
        assert classify_operator(name) is MonotonicityClass.NON_MONOTONIC

    def test_growing_windows_preserve(self):
        assert classify_operator("unbounded_window") is \
            MonotonicityClass.MONOTONIC
        assert classify_operator("landmark_window") is \
            MonotonicityClass.MONOTONIC

    def test_unknown(self):
        assert classify_operator("frobnicate") is MonotonicityClass.UNKNOWN


class TestClassifyPlan:
    def test_pure_spj_plan_is_monotonic(self):
        plan = FakeNode("project",
                        FakeNode("select",
                                 FakeNode("join",
                                          FakeNode("scan"),
                                          FakeNode("scan"))))
        assert classify_plan(plan) is MonotonicityClass.MONOTONIC

    def test_single_breaking_operator_poisons_plan(self):
        plan = FakeNode("project", FakeNode("aggregate", FakeNode("scan")))
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC

    def test_breaking_at_root(self):
        plan = FakeNode("difference", FakeNode("scan"), FakeNode("scan"))
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC

    def test_unknown_is_conservative(self):
        plan = FakeNode("project", FakeNode("mystery", FakeNode("scan")))
        assert classify_plan(plan) is MonotonicityClass.UNKNOWN

    def test_non_monotonic_beats_unknown(self):
        plan = FakeNode("mystery", FakeNode("aggregate", FakeNode("scan")))
        assert classify_plan(plan) is MonotonicityClass.NON_MONOTONIC


class TestIncrementalSPJ:
    @pytest.fixture
    def spj(self):
        return IncrementalSPJ(
            left_predicate=lambda v: v["amount"] > 10,
            right_predicate=lambda v: True,
            left_key=lambda v: v["user"],
            right_key=lambda v: v["user"],
            project_fn=lambda l, r: (l["amount"], r["city"]),
        )

    def test_emits_only_new_results(self, spj):
        assert spj.on_left({"user": 1, "amount": 50}) == []
        produced = spj.on_right({"user": 1, "city": "lyon"})
        assert produced == [(50, "lyon")]
        # A second matching left arrival joins with the existing right.
        produced = spj.on_left({"user": 1, "amount": 99})
        assert produced == [(99, "lyon")]

    def test_predicate_filters_before_indexing(self, spj):
        assert spj.on_left({"user": 1, "amount": 5}) == []
        assert spj.on_right({"user": 1, "city": "lyon"}) == []
        assert spj.state_size == 1  # only the right tuple was indexed

    def test_matches_one_shot_reference(self, spj):
        lefts = [{"user": u, "amount": a}
                 for u, a in [(1, 50), (2, 5), (1, 20), (3, 30)]]
        rights = [{"user": u, "city": c}
                  for u, c in [(1, "lyon"), (3, "paris"), (1, "nice")]]
        for left in lefts:
            spj.on_left(left)
        for right in rights:
            spj.on_right(right)
        assert spj.result == spj.one_shot(lefts, rights)

    def test_interleaved_arrivals_match_one_shot(self, spj):
        arrivals = [
            ("l", {"user": 1, "amount": 11}),
            ("r", {"user": 1, "city": "a"}),
            ("l", {"user": 1, "amount": 12}),
            ("r", {"user": 1, "city": "b"}),
        ]
        for side, value in arrivals:
            if side == "l":
                spj.on_left(value)
            else:
                spj.on_right(value)
        lefts = [v for s, v in arrivals if s == "l"]
        rights = [v for s, v in arrivals if s == "r"]
        assert spj.result == spj.one_shot(lefts, rights)
        assert len(spj.result) == 4

    def test_duplicate_results_accumulate_in_bag(self):
        spj = IncrementalSPJ(
            left_predicate=lambda v: True, right_predicate=lambda v: True,
            left_key=lambda v: 0, right_key=lambda v: 0,
            project_fn=lambda l, r: "match")
        spj.on_left("x")
        spj.on_right("y")
        spj.on_right("z")
        assert spj.result == Bag(["match", "match"])


class TestAppendOnlyLog:
    def test_subscribers_notified_per_append(self):
        log = AppendOnlyLog()
        seen = []
        log.subscribe(lambda v, t: seen.append((v, t)))
        log.append("a", 1)
        log.append("b", 2)
        assert seen == [("a", 1), ("b", 2)]
        assert log.entries() == [("a", 1), ("b", 2)]

    def test_time_regression_rejected(self):
        log = AppendOnlyLog()
        log.append("a", 5)
        with pytest.raises(ValueError):
            log.append("b", 4)
