"""Tests for the continuous-semantics formulations (paper Defs 2.3, §3.1-3.2)."""

import pytest

from repro.core import (
    Bag,
    Stream,
    babcock_sellis_evaluation,
    continuous_evaluation,
    count_query,
    distinct_query,
    divergence_profile,
    empirically_monotonic,
    filter_query,
    join_query,
    max_query,
    semantics_agree,
    window_filter_query,
)


@pytest.fixture
def numbers():
    return Stream.from_pairs([(3, 0), (7, 2), (1, 4), (9, 6), (5, 8)])


class TestContinuousEvaluation:
    def test_terry_semantics_is_prefix_query(self, numbers):
        result = continuous_evaluation(filter_query(lambda v: v > 2), numbers)
        assert result.at(0) == Bag([3])
        assert result.at(2) == Bag([3, 7])
        assert result.at(8) == Bag([3, 7, 9, 5])

    def test_default_instants_are_arrivals(self, numbers):
        result = continuous_evaluation(count_query(), numbers)
        assert result.change_points() == [0, 2, 4, 6, 8]

    def test_count_query_single_row(self, numbers):
        result = continuous_evaluation(count_query(), numbers)
        assert result.at(4) == Bag([3])
        assert result.at(8) == Bag([5])


class TestBabcockSellis:
    def test_union_accumulates(self, numbers):
        result = babcock_sellis_evaluation(count_query(), numbers)
        # All historical counts survive in the union semantics.
        assert result.at(8) == Bag([1, 2, 3, 4, 5])

    def test_union_is_set_style(self, numbers):
        result = babcock_sellis_evaluation(
            filter_query(lambda v: True), numbers)
        # Duplicates clamped: each value appears once even though it is in
        # every subsequent prefix result.
        assert result.at(8) == Bag([3, 7, 1, 9, 5])


class TestMonotonicity:
    def test_filter_is_monotonic(self, numbers):
        assert empirically_monotonic(filter_query(lambda v: v > 2), numbers)

    def test_join_is_monotonic(self, numbers):
        query = join_query(left_of=lambda v: v % 2 == 1,
                           join_key=lambda v: v % 3)
        assert empirically_monotonic(query, numbers)

    def test_distinct_is_monotonic(self, numbers):
        assert empirically_monotonic(distinct_query(), numbers)

    def test_count_is_not_monotonic(self, numbers):
        assert not empirically_monotonic(count_query(), numbers)

    def test_max_is_not_monotonic(self, numbers):
        assert not empirically_monotonic(max_query(), numbers)

    def test_windowed_filter_is_not_monotonic(self, numbers):
        assert not empirically_monotonic(
            window_filter_query(lambda v: True, range_=3), numbers)


class TestEquivalence:
    """Barbarà: union semantics == per-instant semantics iff monotonic."""

    def test_agree_for_monotonic(self, numbers):
        assert semantics_agree(filter_query(lambda v: v > 2), numbers)

    def test_diverge_for_non_monotonic(self, numbers):
        assert not semantics_agree(count_query(), numbers)

    def test_divergence_profile_zero_for_monotonic(self, numbers):
        profile = divergence_profile(
            filter_query(lambda v: v % 2 == 1), numbers)
        assert all(stale == 0 for _, stale in profile)

    def test_divergence_profile_grows_for_count(self, numbers):
        profile = divergence_profile(count_query(), numbers)
        # At instant i the union retains i stale counts.
        assert [stale for _, stale in profile] == [0, 1, 2, 3, 4]

    def test_empty_stream(self):
        empty = Stream()
        assert semantics_agree(count_query(), empty)
        assert divergence_profile(count_query(), empty) == []
