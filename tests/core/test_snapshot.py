"""Tests for timeslice and snapshot reducibility (paper Definition 3.2)."""

import pytest

from repro.core import (
    Bag,
    LogicalStream,
    TimeError,
    ValidityElement,
    check_snapshot_reducibility,
    logical_duplicate_elimination,
    logical_first_n,
    logical_join,
    logical_project,
    logical_select,
    logical_union,
    reducibility_counterexample,
    timeslice,
)


@pytest.fixture
def readings():
    # Values valid during [start, end).
    return LogicalStream([
        ValidityElement(10, 0, 5),
        ValidityElement(20, 2, 8),
        ValidityElement(30, 6, 12),
    ])


class TestTimeslice:
    def test_snapshot_at_instant(self, readings):
        assert timeslice(readings, 3) == Bag([10, 20])
        assert timeslice(readings, 6) == Bag([20, 30])
        assert timeslice(readings, 100) == Bag()

    def test_from_windowed_builder(self):
        stream = LogicalStream.from_windowed([("a", 0), ("b", 4)], lifetime=5)
        assert timeslice(stream, 4) == Bag(["a", "b"])
        assert timeslice(stream, 5) == Bag(["b"])

    def test_empty_validity_rejected(self):
        with pytest.raises(TimeError):
            ValidityElement("x", 5, 5)

    def test_relevant_instants(self, readings):
        assert readings.relevant_instants() == [0, 2, 5, 6, 8, 12]


class TestReducibleOperators:
    """Each temporal operator is checked against Definition 3.2."""

    def test_selection_is_reducible(self, readings):
        assert check_snapshot_reducibility(
            lambda s: logical_select(s, lambda v: v > 15),
            lambda b: b.filter(lambda v: v > 15),
            [readings])

    def test_projection_is_reducible(self, readings):
        assert check_snapshot_reducibility(
            lambda s: logical_project(s, lambda v: v // 10),
            lambda b: b.map(lambda v: v // 10),
            [readings])

    def test_union_is_reducible(self, readings):
        other = LogicalStream([ValidityElement(99, 1, 7)])
        assert check_snapshot_reducibility(
            logical_union, Bag.union, [readings, other])

    def test_join_is_reducible(self, readings):
        other = LogicalStream([
            ValidityElement(1, 1, 10),
            ValidityElement(2, 3, 4),
        ])
        on = lambda l, r: (l + r) % 2 == 1  # noqa: E731

        def bag_join(lb, rb):
            out = Bag()
            for l in lb:
                for r in rb:
                    if on(l, r):
                        out.add((l, r))
            return out

        assert check_snapshot_reducibility(
            lambda a, b: logical_join(a, b, on),
            bag_join, [readings, other])

    def test_duplicate_elimination_is_reducible(self):
        stream = LogicalStream([
            ValidityElement("x", 0, 5),
            ValidityElement("x", 3, 9),   # overlapping copy
            ValidityElement("x", 20, 25),  # disjoint copy
            ValidityElement("y", 1, 2),
        ])
        assert check_snapshot_reducibility(
            logical_duplicate_elimination, Bag.distinct, [stream])

    def test_join_validity_is_interval_intersection(self):
        left = LogicalStream([ValidityElement("l", 0, 10)])
        right = LogicalStream([ValidityElement("r", 5, 15)])
        joined = logical_join(left, right, lambda a, b: True)
        (element,) = joined.elements()
        assert (element.start, element.end) == (5, 10)

    def test_disjoint_validity_produces_no_join_result(self):
        left = LogicalStream([ValidityElement("l", 0, 5)])
        right = LogicalStream([ValidityElement("r", 5, 10)])
        assert len(logical_join(left, right, lambda a, b: True)) == 0


class TestNonReducibleOperator:
    """first-n depends on arrival order, so Definition 3.2 must fail."""

    def test_first_n_is_not_reducible(self):
        stream = LogicalStream([
            ValidityElement("early", 0, 3),
            ValidityElement("late", 5, 9),
        ])

        def bag_first_1(bag):
            items = sorted(bag, key=repr)
            return Bag(items[:1])

        assert not check_snapshot_reducibility(
            lambda s: logical_first_n(s, 1), bag_first_1, [stream])

    def test_counterexample_is_concrete(self):
        stream = LogicalStream([
            ValidityElement("early", 0, 3),
            ValidityElement("late", 5, 9),
        ])

        def bag_first_1(bag):
            items = sorted(bag, key=repr)
            return Bag(items[:1])

        witness = reducibility_counterexample(
            lambda s: logical_first_n(s, 1), bag_first_1, [stream])
        assert witness is not None
        t, lhs, rhs = witness
        # At t=5 the temporal first-1 kept only "early" (already expired),
        # while the snapshot-level first-1 sees "late".
        assert t == 5
        assert lhs == Bag()
        assert rhs == Bag(["late"])

    def test_counterexample_none_for_reducible(self, ):
        stream = LogicalStream([ValidityElement(1, 0, 5)])
        assert reducibility_counterexample(
            lambda s: logical_select(s, lambda v: True),
            lambda b: b.filter(lambda v: True),
            [stream]) is None
