"""Property-based tests for window-operator invariants (Def. 2.4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NowWindow,
    RangeWindow,
    SessionWindow,
    SlidingWindow,
    SteppedRangeWindow,
    TumblingWindow,
    UnboundedWindow,
    merge_sessions,
)

timestamps = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=1, max_value=500)


@settings(max_examples=100, deadline=None)
@given(t=timestamps, size=sizes, offset=st.integers(0, 499))
def test_tumbling_assign_contains_element(t, size, offset):
    (window,) = TumblingWindow(size, offset).assign(t)
    assert t in window
    assert window.length == size


@settings(max_examples=100, deadline=None)
@given(t=timestamps, size=sizes, offset=st.integers(0, 499))
def test_tumbling_windows_partition_time(t, size, offset):
    """Adjacent instants land in the same or the adjacent window — never
    in overlapping ones."""
    assigner = TumblingWindow(size, offset)
    (a,) = assigner.assign(t)
    (b,) = assigner.assign(t + 1)
    assert a == b or a.end == b.start


@settings(max_examples=100, deadline=None)
@given(t=timestamps, size=sizes, slide=sizes)
def test_sliding_assign_contains_element_in_every_window(t, size, slide):
    windows = SlidingWindow(size, slide).assign(t)
    assert all(t in w for w in windows)
    # Number of covering windows is ceil(size / slide) when slide divides
    # the axis cleanly; never more.
    assert len(windows) <= -(-size // slide)
    assert all(w.length == size for w in windows)


@settings(max_examples=100, deadline=None)
@given(t=timestamps, size=sizes, slide=sizes)
def test_sliding_windows_are_aligned_and_distinct(t, size, slide):
    windows = SlidingWindow(size, slide).assign(t)
    starts = [w.start for w in windows]
    assert starts == sorted(set(starts))
    assert all((s - windows[0].start) % slide == 0 for s in starts)


@settings(max_examples=100, deadline=None)
@given(t=timestamps, range_=sizes)
def test_range_scope_contains_now_and_spans_range(t, range_):
    scope = RangeWindow(range_).scope(t)
    assert t in scope
    assert scope.end == t + 1
    assert scope.length <= range_


@settings(max_examples=100, deadline=None)
@given(t=timestamps, range_=sizes, slide=sizes)
def test_stepped_range_boundaries_bracket_element(t, range_, slide):
    window = SteppedRangeWindow(range_, slide)
    enter = window.first_boundary_covering(t)
    exit_ = window.expiry_boundary(t)
    assert enter % slide == 0 and exit_ % slide == 0
    assert enter >= t
    assert t not in window.scope(exit_)
    if enter < exit_:
        # Visible from the enter boundary until just before expiry.
        assert t in window.scope(enter)
        assert t in window.scope(exit_ - slide)
    else:
        # range < slide can leave sampling gaps: the element falls between
        # reported windows and is never visible at any boundary.
        assert range_ < slide
        boundary = 0
        while boundary <= t + range_ + slide:
            assert t not in window.scope(boundary)
            boundary += slide


@settings(max_examples=100, deadline=None)
@given(t=timestamps)
def test_now_and_unbounded_scopes(t):
    assert NowWindow().scope(t).length == 1
    unbounded = UnboundedWindow().scope(t)
    assert unbounded.start == 0
    assert t in unbounded


@settings(max_examples=100, deadline=None)
@given(ts=st.lists(timestamps, min_size=1, max_size=30),
       gap=st.integers(min_value=1, max_value=100))
def test_session_merging_invariants(ts, gap):
    assigner = SessionWindow(gap)
    sessions = merge_sessions([assigner.assign(t)[0] for t in ts])
    # Each element lies in exactly one session.
    for t in ts:
        assert sum(1 for s in sessions if t in s) == 1
    # Sessions are disjoint, ordered, and separated by more than... at
    # least not overlapping; and each spans a multiple of nothing but is
    # at least `gap` long.
    for a, b in zip(sessions, sessions[1:]):
        assert a.end <= b.start
    assert all(s.length >= gap for s in sessions)
    # Merging is idempotent.
    assert merge_sessions(sessions) == sessions
