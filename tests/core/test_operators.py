"""Tests for the S2R / R2R / R2S operator trichotomy (paper Figure 2)."""

import pytest

from repro.core import (
    AggregateKind,
    AggregateSpec,
    Bag,
    CountWindow,
    R2SKind,
    RangeWindow,
    Record,
    Schema,
    Stream,
    TumblingWindow,
    UnboundedWindow,
    aggregate,
    cross,
    difference,
    distinct,
    dstream,
    equijoin,
    extend,
    intersection,
    istream,
    join,
    now,
    project,
    relation_to_stream,
    rstream,
    select,
    stream_to_relation,
    unbounded,
    union,
)


@pytest.fixture
def number_stream():
    return Stream.from_pairs([(1, 0), (2, 5), (3, 10), (4, 15)])


READING = Schema(["room", "temp"])


@pytest.fixture
def reading_relation():
    stream = Stream.of_records(READING, [
        ({"room": "A", "temp": 20}, 0),
        ({"room": "B", "temp": 25}, 1),
        ({"room": "A", "temp": 22}, 2),
    ])
    return unbounded(stream)


class TestS2R:
    def test_unbounded_accumulates(self, number_stream):
        relation = unbounded(number_stream)
        assert relation.at(0) == Bag([1])
        assert relation.at(15) == Bag([1, 2, 3, 4])

    def test_now_holds_only_current_instant(self, number_stream):
        relation = now(number_stream)
        assert relation.at(5) == Bag([2])
        assert relation.at(6) == Bag()

    def test_range_window_expires_tuples(self, number_stream):
        relation = stream_to_relation(number_stream, RangeWindow(range_=6))
        assert relation.at(5) == Bag([1, 2])   # 0 and 5 within range 6 of 5
        assert relation.at(10) == Bag([2, 3])  # 0 expired at instant 6
        assert relation.at(6) == Bag([2])

    def test_tumbling_window_resets_at_boundary(self, number_stream):
        relation = stream_to_relation(number_stream, TumblingWindow(size=10))
        assert relation.at(5) == Bag([1, 2])
        assert relation.at(10) == Bag([3])

    def test_count_window(self, number_stream):
        relation = stream_to_relation(number_stream, CountWindow(rows=2))
        assert relation.at(15) == Bag([3, 4])
        assert relation.at(0) == Bag([1])

    def test_explicit_instants(self, number_stream):
        relation = stream_to_relation(
            number_stream, UnboundedWindow(), instants=[7])
        assert relation.change_points() == [7]
        assert relation.at(7) == Bag([1, 2])


class TestR2R:
    def test_select(self, reading_relation):
        hot = select(reading_relation, lambda r: r["temp"] > 21)
        assert len(hot.at(2)) == 2
        assert len(hot.at(0)) == 0

    def test_project_keeps_duplicates(self, reading_relation):
        rooms = project(reading_relation, ["room"])
        room_a = Record(Schema(["room"]), ("A",))
        assert rooms.at(2).count(room_a) == 2

    def test_distinct(self, reading_relation):
        rooms = distinct(project(reading_relation, ["room"]))
        assert len(rooms.at(2)) == 2

    def test_union_difference_intersection(self):
        from repro.core import TimeVaryingRelation
        left = TimeVaryingRelation.from_snapshots([(0, Bag(["x", "y"]))])
        right = TimeVaryingRelation.from_snapshots([(0, Bag(["y"]))])
        assert union(left, right).at(0) == Bag(["x", "y", "y"])
        assert difference(left, right).at(0) == Bag(["x"])
        assert intersection(left, right).at(0) == Bag(["y"])

    def test_cross_product_counts(self):
        from repro.core import TimeVaryingRelation
        sa = Schema(["a"])
        sb = Schema(["b"])
        left = TimeVaryingRelation.from_snapshots(
            [(0, Bag([Record(sa, (1,)), Record(sa, (1,))]))], schema=sa)
        right = TimeVaryingRelation.from_snapshots(
            [(0, Bag([Record(sb, (9,))]))], schema=sb)
        product = cross(left, right)
        assert len(product.at(0)) == 2
        assert product.schema.fields == ("a", "b")

    def test_theta_join(self):
        from repro.core import TimeVaryingRelation
        sa = Schema(["a"])
        sb = Schema(["b"])
        left = TimeVaryingRelation.from_snapshots(
            [(0, Bag([Record(sa, (1,)), Record(sa, (5,))]))], schema=sa)
        right = TimeVaryingRelation.from_snapshots(
            [(0, Bag([Record(sb, (3,))]))], schema=sb)
        result = join(left, right, on=lambda l, r: l["a"] < r["b"])
        assert len(result.at(0)) == 1

    def test_equijoin_matches_listing1_shape(self):
        # Listing 1: Person P joined with RoomObservation O on id.
        from repro.core import TimeVaryingRelation
        person = Schema(["P.id", "P.name"])
        obs = Schema(["O.id", "O.room"])
        people = TimeVaryingRelation.from_snapshots([(0, Bag([
            Record(person, (1, "ada")), Record(person, (2, "bob"))]))],
            schema=person)
        observations = TimeVaryingRelation.from_snapshots([(0, Bag([
            Record(obs, (1, "r1")), Record(obs, (1, "r2"))]))], schema=obs)
        joined = equijoin(people, observations, ["P.id"], ["O.id"])
        assert len(joined.at(0)) == 2
        assert all(r["P.name"] == "ada" for r in joined.at(0))

    def test_aggregate_grouped(self, reading_relation):
        result = aggregate(
            reading_relation, ["room"],
            [AggregateSpec(AggregateKind.AVG, "temp", "avg_temp"),
             AggregateSpec(AggregateKind.COUNT, None, "n")])
        rows = {r["room"]: r for r in result.at(2)}
        assert rows["A"]["avg_temp"] == 21
        assert rows["A"]["n"] == 2
        assert rows["B"]["n"] == 1

    def test_aggregate_global_empty_input_yields_zero_count(self):
        from repro.core import TimeVaryingRelation
        empty = TimeVaryingRelation.from_snapshots(
            [(0, Bag())], schema=READING)
        result = aggregate(
            empty, [], [AggregateSpec(AggregateKind.COUNT, None, "n")])
        (row,) = list(result.at(0))
        assert row["n"] == 0

    def test_aggregate_min_max_sum(self, reading_relation):
        result = aggregate(
            reading_relation, [],
            [AggregateSpec(AggregateKind.MIN, "temp", "lo"),
             AggregateSpec(AggregateKind.MAX, "temp", "hi"),
             AggregateSpec(AggregateKind.SUM, "temp", "total")])
        (row,) = list(result.at(2))
        assert (row["lo"], row["hi"], row["total"]) == (20, 25, 67)

    def test_extend_adds_computed_column(self, reading_relation):
        extended = extend(
            reading_relation, lambda r: r["temp"] * 9 / 5 + 32, "fahrenheit")
        temps = {r["temp"]: r["fahrenheit"] for r in extended.at(2)}
        assert temps[20] == 68.0


class TestR2S:
    def test_istream_emits_insertions_once(self, number_stream):
        relation = unbounded(number_stream)
        inserted = istream(relation)
        assert inserted.values() == [1, 2, 3, 4]
        assert inserted.timestamps() == [0, 5, 10, 15]

    def test_dstream_emits_expirations(self, number_stream):
        relation = stream_to_relation(number_stream, RangeWindow(range_=6))
        deleted = dstream(relation)
        assert deleted.values() == [1, 2, 3, 4]
        # Each value expires exactly range ticks after its arrival.
        assert deleted.timestamps() == [6, 11, 16, 21]

    def test_rstream_emits_full_state_each_change(self, number_stream):
        relation = unbounded(number_stream)
        everything = rstream(relation)
        # 1 + 2 + 3 + 4 emissions across the four change points.
        assert len(everything) == 10

    def test_roundtrip_istream_of_unbounded_recovers_stream(
            self, number_stream):
        # ISTREAM([Range Unbounded] S) == S — the CQL identity.
        recovered = istream(unbounded(number_stream))
        assert recovered.values() == number_stream.values()
        assert recovered.timestamps() == number_stream.timestamps()

    def test_dispatch(self, number_stream):
        relation = unbounded(number_stream)
        assert relation_to_stream(relation, R2SKind.ISTREAM).values() == \
            istream(relation).values()
        assert relation_to_stream(relation, R2SKind.RSTREAM).values() == \
            rstream(relation).values()
        assert relation_to_stream(relation, R2SKind.DSTREAM).values() == \
            dstream(relation).values()
