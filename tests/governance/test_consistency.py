"""Tests for in-stream consistency enforcement (paper Section 7)."""

import pytest

from repro.core import StateError
from repro.governance import (
    DomainConstraint,
    MonotonicConstraint,
    RepairAction,
    StreamCleaner,
    UniqueKeyConstraint,
)


def domain(action=RepairAction.DROP, repair_fn=None):
    return DomainConstraint(
        "temp-range", lambda r: 0 <= r["temp"] <= 60,
        action=action, repair_fn=repair_fn)


class TestDomainConstraint:
    def test_drop(self):
        cleaner = StreamCleaner([domain()])
        assert cleaner.process({"temp": 200}, 0) is None
        assert cleaner.process({"temp": 20}, 1) == {"temp": 20}
        assert cleaner.stats.dropped == 1
        assert cleaner.stats.admitted == 1
        assert len(cleaner.quarantine) == 1

    def test_repair_clamps(self):
        cleaner = StreamCleaner([domain(
            action=RepairAction.REPAIR,
            repair_fn=lambda r: {**r, "temp": min(max(r["temp"], 0), 60)})])
        assert cleaner.process({"temp": 200}, 0) == {"temp": 60}
        assert cleaner.stats.repaired == 1
        # Repairs are still recorded in quarantine (audit).
        assert cleaner.quarantine[0].constraint == "temp-range"

    def test_pass_through_flags(self):
        cleaner = StreamCleaner([domain(action=RepairAction.PASS_THROUGH)])
        assert cleaner.process({"temp": 200}, 0) == {"temp": 200}
        assert cleaner.stats.flagged == 1

    def test_predicate_error_is_violation(self):
        cleaner = StreamCleaner([domain()])
        assert cleaner.process({"no_temp_field": 1}, 0) is None
        assert "predicate error" in cleaner.quarantine[0].detail

    def test_repair_requires_fn(self):
        with pytest.raises(StateError):
            DomainConstraint("x", lambda r: True,
                             action=RepairAction.REPAIR)


class TestUniqueKeyConstraint:
    def cleaner(self, window=10):
        return StreamCleaner([UniqueKeyConstraint(
            "pk", key_fn=lambda r: r["id"], window=window)])

    def test_duplicate_within_window_dropped(self):
        cleaner = self.cleaner()
        assert cleaner.process({"id": 1}, 0) is not None
        assert cleaner.process({"id": 1}, 5) is None
        assert cleaner.stats.dropped == 1

    def test_key_free_after_window(self):
        cleaner = self.cleaner(window=10)
        cleaner.process({"id": 1}, 0)
        assert cleaner.process({"id": 1}, 11) is not None

    def test_distinct_keys_pass(self):
        cleaner = self.cleaner()
        assert cleaner.process({"id": 1}, 0) is not None
        assert cleaner.process({"id": 2}, 0) is not None

    def test_dropped_duplicate_does_not_extend_window(self):
        cleaner = self.cleaner(window=10)
        cleaner.process({"id": 1}, 0)
        cleaner.process({"id": 1}, 9)    # dropped; must not refresh
        assert cleaner.process({"id": 1}, 11) is not None


class TestMonotonicConstraint:
    def cleaner(self, action=RepairAction.DROP):
        cleaner = StreamCleaner([MonotonicConstraint(
            "seq", key_fn=lambda r: r["sensor"],
            value_fn=lambda r: r["seq"], action=action)])
        return cleaner.with_last_good_key(lambda r: r["sensor"])

    def test_regression_dropped(self):
        cleaner = self.cleaner()
        cleaner.process({"sensor": "s1", "seq": 5}, 0)
        assert cleaner.process({"sensor": "s1", "seq": 3}, 1) is None
        assert cleaner.process({"sensor": "s1", "seq": 6}, 2) is not None

    def test_per_key_independence(self):
        cleaner = self.cleaner()
        cleaner.process({"sensor": "s1", "seq": 5}, 0)
        assert cleaner.process({"sensor": "s2", "seq": 1}, 1) is not None

    def test_last_good_substitution(self):
        cleaner = self.cleaner(action=RepairAction.LAST_GOOD)
        cleaner.process({"sensor": "s1", "seq": 5}, 0)
        out = cleaner.process({"sensor": "s1", "seq": 2}, 1)
        assert out == {"sensor": "s1", "seq": 5}
        assert cleaner.stats.substituted == 1

    def test_last_good_without_history_drops(self):
        cleaner = StreamCleaner([MonotonicConstraint(
            "seq", key_fn=lambda r: r["sensor"],
            value_fn=lambda r: r["seq"],
            action=RepairAction.LAST_GOOD)])
        cleaner.with_last_good_key(lambda r: r["sensor"])
        cleaner.process({"sensor": "s1", "seq": 5}, 0)
        cleaner2 = cleaner  # first regression for an unseen key path:
        out = cleaner2.process({"sensor": "s9", "seq": -1}, 1)
        assert out is not None  # -1 is the first value for s9: valid


class TestComposition:
    def test_constraints_check_in_order(self):
        cleaner = StreamCleaner([
            domain(action=RepairAction.REPAIR,
                   repair_fn=lambda r: {**r, "temp": 60}),
            UniqueKeyConstraint("pk", key_fn=lambda r: r["id"],
                                window=100),
        ]).with_last_good_key(lambda r: r["id"])
        assert cleaner.process({"id": 1, "temp": 99}, 0) == \
            {"id": 1, "temp": 60}
        assert cleaner.process({"id": 1, "temp": 20}, 1) is None  # dup
        assert cleaner.stats.repaired == 1
        assert cleaner.stats.dropped == 1
        assert cleaner.violation_rate == 1.0

    def test_cleaner_in_front_of_continuous_query(self):
        """The integration the paper asks for: cleanse, then query."""
        from repro.core import Schema
        from repro.cql import CQLEngine
        engine = CQLEngine()
        engine.register_stream("Obs", Schema(["id", "temp"]))
        query = engine.register_query(
            "SELECT AVG(temp) AS a FROM Obs [Range 100]")
        query.start()
        cleaner = StreamCleaner([domain()])
        arrivals = [({"id": 1, "temp": 20}, 1),
                    ({"id": 2, "temp": 9999}, 2),   # dirty: dropped
                    ({"id": 3, "temp": 40}, 3)]
        for row, t in arrivals:
            clean = cleaner.process(row, t)
            if clean is not None:
                query.push("Obs", clean, t)
        (answer,) = list(query.current())
        assert answer["a"] == 30  # the outlier never reached the query

    def test_empty_constraint_list_rejected(self):
        with pytest.raises(StateError):
            StreamCleaner([])
