"""Tests for cross-dialect query porting (paper Section 7)."""

import pytest

from repro.bench import OBSERVATION_SCHEMA, room_observations
from repro.core import Stream
from repro.cql import CQLEngine
from repro.governance import PortabilityError, port_sql_to_cql
from repro.sql import run_sql


class TestTranslation:
    def test_tumble_becomes_stepped_range(self):
        ported = port_sql_to_cql(
            "SELECT room, COUNT(*) AS n FROM Obs GROUP BY room, TUMBLE(10)")
        assert "[Range 10 Slide 10]" in ported.cql_text
        assert ported.sample_at_closes
        assert any(n.topic == "window boundaries" for n in ported.notes)

    def test_hop_becomes_range_slide(self):
        ported = port_sql_to_cql(
            "SELECT COUNT(*) AS n FROM Obs GROUP BY HOP(20, 5)")
        assert "[Range 20 Slide 5]" in ported.cql_text

    def test_where_and_having_carried_over(self):
        ported = port_sql_to_cql(
            "SELECT room, COUNT(*) AS n FROM Obs WHERE temp > 20 "
            "GROUP BY room, TUMBLE(10) HAVING COUNT(*) > 1")
        assert "WHERE" in ported.cql_text
        assert "HAVING" in ported.cql_text

    def test_emit_changes_maps_to_relation_query(self):
        ported = port_sql_to_cql(
            "SELECT room, COUNT(*) AS n FROM Obs GROUP BY room "
            "EMIT CHANGES")
        assert not ported.sample_at_closes
        assert "[Range" not in ported.cql_text

    def test_session_not_portable(self):
        with pytest.raises(PortabilityError, match="SESSION"):
            port_sql_to_cql(
                "SELECT COUNT(*) n FROM Obs GROUP BY SESSION(30)")

    def test_window_start_not_portable(self):
        with pytest.raises(PortabilityError, match="window_start"):
            port_sql_to_cql(
                "SELECT window_start, COUNT(*) n FROM Obs "
                "GROUP BY TUMBLE(10)")


class TestSemanticEquivalence:
    """The ported query computes the same answers, off boundaries."""

    WINDOW = 100

    def rows(self):
        # Nudge boundary-exact timestamps: the documented semantic gap.
        return [(row, t + 1 if t % self.WINDOW == 0 else t)
                for row, t in room_observations(80)]

    def test_tumbling_counts_agree(self):
        rows = self.rows()
        sql_text = (f"SELECT room, COUNT(*) AS n FROM Obs "
                    f"GROUP BY room, TUMBLE({self.WINDOW})")
        sql_result = {(r["room"], r["n"])
                      for r in run_sql(sql_text, OBSERVATION_SCHEMA,
                                       "Obs", rows)}

        ported = port_sql_to_cql(sql_text)
        engine = CQLEngine()
        engine.register_stream("Obs", OBSERVATION_SCHEMA)
        query = engine.register_query(ported.cql_text)
        query.run_recorded(
            {"Obs": Stream.of_records(OBSERVATION_SCHEMA, rows)})
        relation = query.as_relation()
        cql_result = set()
        horizon = rows[-1][1]
        boundary = self.WINDOW
        while boundary <= horizon + self.WINDOW:
            for record in relation.at(boundary):
                cql_result.add((record["room"], record["n"]))
            boundary += ported.window_slide
        assert sql_result == cql_result

    def test_emit_changes_final_state_agrees(self):
        rows = self.rows()
        sql_text = ("SELECT room, COUNT(*) AS n FROM Obs GROUP BY room "
                    "EMIT CHANGES")
        updates = run_sql(sql_text, OBSERVATION_SCHEMA, "Obs", rows)
        sql_final = {}
        for record in updates:
            sql_final[record["room"]] = record["n"]

        ported = port_sql_to_cql(sql_text)
        engine = CQLEngine()
        engine.register_stream("Obs", OBSERVATION_SCHEMA)
        query = engine.register_query(ported.cql_text)
        query.run_recorded(
            {"Obs": Stream.of_records(OBSERVATION_SCHEMA, rows)})
        cql_final = {r["room"]: r["n"] for r in query.current()}
        assert cql_final == sql_final
