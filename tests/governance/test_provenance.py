"""Tests for why-provenance in streaming pipelines (paper Section 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TumblingWindow
from repro.governance import WhyPipeline, blame, verify_witness


def sensor_pipeline():
    return (WhyPipeline()
            .filter(lambda r: r["temp"] is not None)
            .map(lambda r: {"room": r["room"], "temp": r["temp"]})
            .window_aggregate(TumblingWindow(10),
                              key_fn=lambda r: r["room"],
                              aggregate=lambda values: sum(
                                  v["temp"] for v in values)))


READINGS = [
    ({"room": "a", "temp": 10}, 1),
    ({"room": "b", "temp": 20}, 2),
    ({"room": "a", "temp": None}, 3),   # filtered out
    ({"room": "a", "temp": 5}, 8),
    ({"room": "a", "temp": 7}, 12),     # next window
]


class TestTracking:
    def test_map_filter_preserve_single_witness(self):
        outputs = (WhyPipeline()
                   .map(lambda v: v * 2)
                   .filter(lambda v: v > 2)
                   .run([(1, 0), (2, 1)]))
        (only,) = outputs
        assert only.value == 4
        assert only.why == frozenset([1])

    def test_flat_map_children_share_witness(self):
        outputs = WhyPipeline().flat_map(
            lambda v: [v, v + 1]).run([(10, 0)])
        assert [o.why for o in outputs] == [frozenset([0]), frozenset([0])]

    def test_window_aggregate_unions_witnesses(self):
        outputs = sensor_pipeline().run(READINGS)
        by_key = {(o.value[0], o.value[2].start): o for o in outputs}
        window_a0 = by_key[("a", 0)]
        assert window_a0.value[1] == 15          # 10 + 5; None filtered
        assert window_a0.why == frozenset([0, 3])
        assert by_key[("a", 10)].why == frozenset([4])

    def test_filtered_inputs_never_blamed(self):
        outputs = sensor_pipeline().run(READINGS)
        all_witnesses = frozenset().union(*(o.why for o in outputs))
        assert 2 not in all_witnesses  # the None reading


class TestWitnessReplay:
    def test_every_output_verifies(self):
        pipeline = sensor_pipeline()
        outputs = pipeline.run(READINGS)
        assert outputs
        for output in outputs:
            assert verify_witness(pipeline, READINGS, output)

    def test_corrupted_witness_fails_verification(self):
        pipeline = sensor_pipeline()
        (first, *_) = pipeline.run(READINGS)
        from repro.governance import Provenant
        corrupted = Provenant(first.value, first.timestamp,
                              first.why | frozenset([1]))
        assert not verify_witness(pipeline, READINGS, corrupted)


class TestBlame:
    def test_blame_selects_contributing_inputs(self):
        pipeline = sensor_pipeline()
        outputs = pipeline.run(READINGS)
        guilty = blame(outputs, lambda v: v[0] == "a" and v[1] > 10)
        assert guilty == frozenset([0, 3])

    def test_blame_empty_when_nothing_matches(self):
        outputs = sensor_pipeline().run(READINGS)
        assert blame(outputs, lambda v: v[1] > 10_000) == frozenset()


values = st.lists(st.tuples(
    st.sampled_from(["a", "b"]),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=40)), max_size=25)


@settings(max_examples=50, deadline=None)
@given(rows=values)
def test_property_witness_replay_reproduces_every_output(rows):
    inputs = [({"room": room, "temp": temp}, ts)
              for room, temp, ts in rows]
    pipeline = (WhyPipeline()
                .filter(lambda r: r["temp"] >= 10)
                .window_aggregate(TumblingWindow(15),
                                  key_fn=lambda r: r["room"],
                                  aggregate=len))
    for output in pipeline.run(inputs):
        assert verify_witness(pipeline, inputs, output)
