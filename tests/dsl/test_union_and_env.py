"""Tests for DataStream.union and multi-input vertices."""

import pytest

from repro.core import PlanError, TumblingWindow
from repro.dsl import CountAggregate, StreamEnvironment


class TestUnion:
    def test_union_merges_elements(self):
        env = StreamEnvironment()
        left = env.from_collection([(1, 0), (2, 1)])
        right = env.from_collection([(10, 0), (20, 1)])
        left.union(right).sink("all")
        assert sorted(env.execute().values("all")) == [1, 2, 10, 20]

    def test_union_of_three(self):
        env = StreamEnvironment(parallelism=2)
        a = env.from_collection([(1, 0)])
        b = env.from_collection([(2, 0)])
        c = env.from_collection([(3, 0)])
        a.union(b, c).map(lambda v: v * 10).sink("out")
        assert sorted(env.execute().values("out")) == [10, 20, 30]

    def test_union_then_keyed_window(self):
        env = StreamEnvironment(parallelism=2)
        sensors_a = env.from_collection(
            [(("k1", 1), 1), (("k2", 1), 5)])
        sensors_b = env.from_collection(
            [(("k1", 1), 3), (("k1", 1), 12)])
        (sensors_a.union(sensors_b)
         .key_by(lambda kv: kv[0])
         .window(TumblingWindow(10))
         .aggregate(CountAggregate())
         .sink("counts"))
        result = env.execute()
        counts = {(k, w.start): n for k, n, w in result.values("counts")}
        assert counts == {("k1", 0): 2, ("k2", 0): 1, ("k1", 10): 1}

    def test_union_watermark_is_minimum_of_inputs(self):
        # The slow source's watermark holds back window firing until both
        # inputs progressed — results must still be complete and correct.
        env = StreamEnvironment()
        fast = env.from_collection([(("k", 1), t) for t in (1, 2, 50)])
        slow = env.from_collection([(("k", 1), 4)])
        (fast.union(slow)
         .key_by(lambda kv: kv[0])
         .window(TumblingWindow(10))
         .aggregate(CountAggregate())
         .sink("out"))
        counts = {w.start: n for _, n, w in env.execute().values("out")}
        assert counts == {0: 3, 50: 1}

    def test_cross_environment_union_rejected(self):
        env1 = StreamEnvironment()
        env2 = StreamEnvironment()
        a = env1.from_collection([(1, 0)])
        b = env2.from_collection([(2, 0)])
        with pytest.raises(PlanError, match="environments"):
            a.union(b)
