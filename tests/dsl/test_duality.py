"""Tests for tables, changelogs and the stream/table duality (C9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StateError, Stream
from repro.dsl import (
    ChangeRecord,
    Table,
    changelog_of,
    compact,
    record_stream_of,
    table_from_changelog,
    table_from_record_stream,
)


class TestTable:
    def test_upsert_and_get(self):
        table = Table()
        table.upsert("a", 1, 0)
        table.upsert("a", 2, 1)
        assert table.get("a") == 2
        assert len(table) == 1

    def test_delete(self):
        table = Table()
        table.upsert("a", 1, 0)
        table.delete("a", 1)
        assert "a" not in table

    def test_delete_absent_rejected(self):
        with pytest.raises(StateError):
            Table().delete("ghost", 0)

    def test_none_value_rejected(self):
        with pytest.raises(StateError):
            Table().upsert("a", None, 0)

    def test_time_regression_rejected(self):
        table = Table()
        table.upsert("a", 1, 5)
        with pytest.raises(StateError):
            table.upsert("b", 2, 4)

    def test_changelog_records_old_and_new(self):
        table = Table()
        table.upsert("a", 1, 0)
        table.upsert("a", 2, 1)
        table.delete("a", 2)
        log = table.changelog()
        assert log[0] == ChangeRecord("a", None, 1, 0)
        assert log[1] == ChangeRecord("a", 1, 2, 1)
        assert log[2] == ChangeRecord("a", 2, None, 2)
        assert log[0].is_insert and log[1].is_update and log[2].is_delete


class TestTableDerivations:
    def test_map_values(self):
        table = Table()
        table.upsert("a", 2, 0)
        doubled = table.map_values(lambda v: v * 2)
        assert doubled.get("a") == 4

    def test_filter_update_out_produces_delete(self):
        table = Table()
        table.upsert("a", 10, 0)
        table.upsert("a", 1, 1)  # drops below the threshold
        filtered = table.filter(lambda v: v >= 5)
        assert "a" not in filtered
        # The changelog shows the insert followed by the delete.
        kinds = [(c.is_insert, c.is_delete) for c in filtered.changelog()]
        assert kinds == [(True, False), (False, True)]

    def test_group_aggregate_with_retraction(self):
        table = Table()
        table.upsert("u1", ("lyon", 10), 0)
        table.upsert("u2", ("lyon", 5), 1)
        table.upsert("u1", ("paris", 10), 2)  # moves groups
        sums = table.group_aggregate(
            key_fn=lambda key, value: value[0],
            add=lambda acc, value: acc + value[1],
            subtract=lambda acc, value: acc - value[1],
            initial=0)
        assert sums.get("lyon") == 5
        assert sums.get("paris") == 10

    def test_table_join(self):
        left = Table()
        left.upsert("a", 1, 0)
        left.upsert("b", 2, 1)
        right = Table()
        right.upsert("a", "x", 0)
        assert left.join(right) == {"a": (1, "x")}


class TestDuality:
    def test_changelog_round_trip(self):
        table = Table()
        table.upsert("a", 1, 0)
        table.upsert("b", 2, 1)
        table.delete("a", 2)
        rebuilt = table_from_changelog(changelog_of(table))
        assert rebuilt.snapshot() == table.snapshot()
        assert rebuilt.changelog() == table.changelog()

    def test_record_stream_to_table_latest_wins(self):
        stream = Stream.from_pairs([(("a", 1), 0), (("a", 2), 5)])
        table = table_from_record_stream(stream, key_fn=lambda v: v[0])
        assert table.get("a") == ("a", 2)

    def test_record_stream_to_table_with_fold(self):
        stream = Stream.from_pairs([(("a", 1), 0), (("a", 2), 5)])
        table = table_from_record_stream(
            stream, key_fn=lambda v: v[0],
            fold=lambda acc, v: acc + v[1], initial=0)
        assert table.get("a") == 3

    def test_record_stream_of_table(self):
        table = Table()
        table.upsert("a", 1, 3)
        table.delete("a", 7)
        stream = record_stream_of(table)
        assert list(zip(stream.values(), stream.timestamps())) == [
            (("a", 1), 3), (("a", None), 7)]

    def test_compaction_preserves_snapshot(self):
        table = Table()
        table.upsert("a", 1, 0)
        table.upsert("b", 9, 1)
        table.upsert("a", 2, 2)
        table.delete("b", 3)
        compacted = compact(changelog_of(table))
        assert table_from_changelog(compacted).snapshot() == \
            table.snapshot()
        assert len(compacted) < len(table.changelog())


# ---------------------------------------------------------------------------
# Property: duality laws under random operation sequences
# ---------------------------------------------------------------------------

ops = st.lists(st.tuples(
    st.sampled_from(["upsert", "delete"]),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=99)), max_size=60)


def apply_ops(operations):
    table = Table()
    t = 0
    for op, key, value in operations:
        if op == "upsert":
            table.upsert(key, value, t)
        elif key in table:
            table.delete(key, t)
        t += 1
    return table


@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_property_changelog_round_trip(operations):
    table = apply_ops(operations)
    rebuilt = table_from_changelog(changelog_of(table))
    assert rebuilt.snapshot() == table.snapshot()


@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_property_compaction_preserves_snapshot(operations):
    table = apply_ops(operations)
    compacted = compact(changelog_of(table))
    assert table_from_changelog(compacted).snapshot() == table.snapshot()


@settings(max_examples=40, deadline=None)
@given(operations=ops, cut=st.integers(min_value=0, max_value=60))
def test_property_prefix_fold_gives_point_in_time_view(operations, cut):
    table = apply_ops(operations)
    log = changelog_of(table)
    prefix_table = table_from_changelog(log[:cut])
    replay = apply_ops(operations[:0])  # empty
    # Folding the prefix equals applying the first `cut` operations that
    # actually produced changelog entries.
    expected = Table()
    for change in log[:cut]:
        if change.new is None:
            expected.delete(change.key, change.timestamp)
        else:
            expected.upsert(change.key, change.new, change.timestamp)
    assert prefix_table.snapshot() == expected.snapshot()
