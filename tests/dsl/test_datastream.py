"""Tests for the DataStream DSL (paper Listing 2 and Section 4.1.2)."""

import pytest

from repro.core import PlanError, SessionWindow, SlidingWindow, TumblingWindow
from repro.dsl import (
    AvgAggregate,
    CountAggregate,
    LSMBackend,
    StreamEnvironment,
    SumAggregate,
)


def keyed_values(result, label):
    return sorted((v[0], v[1]) for v in result.values(label))


class TestListing2:
    """The paper's Listing 2 program, verbatim shape."""

    TRANSACTIONS = [({"id": i, "amount": a}, i)
                    for i, a in enumerate([50, 150, 250, 30, 500])]

    def test_filter_then_map(self):
        env = StreamEnvironment()
        (env.from_collection(self.TRANSACTIONS)
         .filter(lambda t: t["amount"] > 100)
         .map(lambda t: f"TID:{t['id']}, Amount:{t['amount']}")
         .sink("out"))
        result = env.execute()
        assert result.values("out") == [
            "TID:1, Amount:150", "TID:2, Amount:250", "TID:4, Amount:500"]

    def test_same_results_any_parallelism(self):
        outputs = []
        for parallelism in (1, 2, 4):
            env = StreamEnvironment(parallelism=parallelism)
            (env.from_collection(self.TRANSACTIONS)
             .filter(lambda t: t["amount"] > 100)
             .map(lambda t: t["id"])
             .sink("out"))
            outputs.append(sorted(env.execute().values("out")))
        assert outputs[0] == outputs[1] == outputs[2]


class TestStatelessOps:
    def test_flat_map(self):
        env = StreamEnvironment()
        (env.from_collection([("a b", 0), ("c", 1)])
         .flat_map(str.split)
         .sink("words"))
        assert sorted(env.execute().values("words")) == ["a", "b", "c"]

    def test_rebalance_keeps_all_elements(self):
        env = StreamEnvironment(parallelism=3)
        (env.from_collection([(i, i) for i in range(12)])
         .rebalance()
         .sink("out"))
        assert sorted(env.execute().values("out")) == list(range(12))

    def test_invalid_parallelism(self):
        with pytest.raises(PlanError):
            StreamEnvironment(parallelism=0)


class TestKeyedOps:
    def test_running_reduce_emits_updates(self):
        env = StreamEnvironment()
        (env.from_collection([(("a", 1), 0), (("a", 2), 1), (("b", 5), 2)])
         .key_by(lambda kv: kv[0])
         .reduce(lambda acc, kv: (kv[0], acc[1] + kv[1]))
         .sink("out"))
        result = env.execute()
        updates = [v for _, v in
                   sorted((wv, wv) for wv in result.values("out"))]
        values = sorted(result.values("out"), key=repr)
        assert ("a", ("a", 1)) in values
        assert ("a", ("a", 3)) in values
        assert ("b", ("b", 5)) in values

    def test_keyed_state_is_partition_correct(self):
        # With parallelism 4, all updates of one key must see each other.
        env = StreamEnvironment(parallelism=4)
        data = [((f"k{i % 3}", 1), i) for i in range(30)]
        (env.from_collection(data)
         .key_by(lambda kv: kv[0])
         .reduce(lambda acc, kv: (kv[0], acc[1] + kv[1]))
         .sink("out"))
        result = env.execute()
        finals = {}
        for key, value in result.values("out"):
            finals[key] = max(finals.get(key, 0), value[1])
        assert finals == {"k0": 10, "k1": 10, "k2": 10}

    def test_process_function_with_state(self):
        from repro.runtime import Element

        def dedupe(op, element):
            if op.state.get(element.key) is None:
                op.state.put(element.key, True)
                yield element

        env = StreamEnvironment()
        (env.from_collection([(("a", 1), 0), (("a", 2), 1), (("b", 3), 2)])
         .key_by(lambda kv: kv[0])
         .process(dedupe)
         .sink("out"))
        assert sorted(env.execute().values("out")) == [("a", 1), ("b", 3)]


class TestWindowedAggregation:
    DATA = [(("a", 1), 1), (("b", 2), 2), (("a", 3), 5),
            (("a", 7), 12), (("b", 1), 13)]

    def run_windowed(self, aggregate, backend=None, window=None):
        from repro.dsl import DictBackend
        env = StreamEnvironment(parallelism=2,
                                state_backend=backend or DictBackend)
        (env.from_collection(self.DATA)
         .key_by(lambda kv: kv[0])
         .window(window or TumblingWindow(10))
         .aggregate(aggregate)
         .sink("out"))
        return env.execute()

    def test_tumbling_sum(self):
        result = self.run_windowed(SumAggregate(lambda kv: kv[1]))
        out = sorted((v[0], v[2].start, v[1])
                     for v in result.values("out"))
        assert out == [("a", 0, 4), ("a", 10, 7),
                       ("b", 0, 2), ("b", 10, 1)]

    def test_count(self):
        result = self.run_windowed(CountAggregate())
        out = sorted((v[0], v[2].start, v[1])
                     for v in result.values("out"))
        assert out == [("a", 0, 2), ("a", 10, 1),
                       ("b", 0, 1), ("b", 10, 1)]

    def test_avg(self):
        result = self.run_windowed(AvgAggregate(lambda kv: kv[1]))
        out = {(v[0], v[2].start): v[1] for v in result.values("out")}
        assert out[("a", 0)] == 2

    def test_sliding_window_duplicates_contribution(self):
        result = self.run_windowed(
            SumAggregate(lambda kv: kv[1]),
            window=SlidingWindow(size=10, slide=5))
        windows_for_a = [(v[2].start, v[1])
                         for v in result.values("out") if v[0] == "a"]
        # a@5 contributes to [0,10) and [5,15); a@12 also lands in [5,15).
        assert (0, 4) in windows_for_a
        assert (5, 10) in windows_for_a

    def test_lsm_backend_gives_same_results(self):
        dict_result = self.run_windowed(SumAggregate(lambda kv: kv[1]))
        lsm_result = self.run_windowed(SumAggregate(lambda kv: kv[1]),
                                       backend=LSMBackend)
        assert sorted(map(repr, dict_result.values("out"))) == \
            sorted(map(repr, lsm_result.values("out")))

    def test_window_reduce(self):
        env = StreamEnvironment()
        (env.from_collection(self.DATA)
         .key_by(lambda kv: kv[0])
         .window(TumblingWindow(10))
         .reduce(lambda a, b: (a[0], a[1] + b[1]))
         .sink("out"))
        result = env.execute()
        out = {(v[0], v[2].start): v[1] for v in result.values("out")}
        assert out[("a", 0)] == ("a", 4)


class TestCheckpointedDSL:
    def test_dsl_job_with_checkpoints(self):
        env = StreamEnvironment(parallelism=2, checkpoint_interval=2)
        (env.from_collection([((f"k{i % 2}", 1), i) for i in range(10)])
         .key_by(lambda kv: kv[0])
         .window(TumblingWindow(100))
         .aggregate(SumAggregate(lambda kv: kv[1]))
         .sink("out"))
        result = env.execute()
        assert result.completed_checkpoints
        totals = sorted((v[0], v[1]) for v in result.values("out"))
        assert totals == [("k0", 5), ("k1", 5)]
