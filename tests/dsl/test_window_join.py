"""Tests for the keyed window join (Flink-style stream-stream join)."""

import pytest

from repro.core import PlanError, SlidingWindow, TumblingWindow
from repro.dsl import StreamEnvironment


def run_join(orders, clicks, window=None, parallelism=1, combine=None):
    env = StreamEnvironment(parallelism=parallelism)
    left = env.from_collection(orders).key_by(lambda kv: kv[0])
    right = env.from_collection(clicks).key_by(lambda kv: kv[0])
    joined = left.window_join(
        right, window or TumblingWindow(10),
        combine=combine or (lambda o, c: (o[1], c[1])))
    joined.sink("out")
    return sorted(((k, pair, w.start)
                   for k, pair, w in env.execute().values("out")),
                  key=repr)


ORDERS = [(("u1", "o1"), 1), (("u2", "o2"), 3), (("u1", "o3"), 12)]
CLICKS = [(("u1", "c1"), 2), (("u1", "c2"), 5), (("u2", "c3"), 14)]


class TestWindowJoin:
    def test_pairs_within_same_key_and_window(self):
        results = run_join(ORDERS, CLICKS)
        assert results == sorted([
            ("u1", ("o1", "c1"), 0),
            ("u1", ("o1", "c2"), 0),
        ], key=repr)

    def test_no_pair_across_windows(self):
        # u1's o3 (t=12) and clicks at t=2/5 are in different windows.
        results = run_join(ORDERS, CLICKS)
        assert not any(pair == ("o3", "c1") for _, pair, _ in results)

    def test_no_pair_across_keys(self):
        results = run_join(ORDERS, CLICKS)
        assert not any(k == "u2" for k, _, _ in results)

    def test_cross_product_within_pane(self):
        orders = [(("k", f"o{i}"), i) for i in range(3)]
        clicks = [(("k", f"c{i}"), i + 3) for i in range(2)]
        results = run_join(orders, clicks)
        assert len(results) == 6  # 3 x 2

    def test_sliding_window_pairs_in_overlap(self):
        orders = [(("k", "o"), 2)]
        clicks = [(("k", "c"), 8)]
        results = run_join(orders, clicks,
                           window=SlidingWindow(10, 5))
        # Both in [0,10); only the order in [-5,5); only the click in
        # [5,15): exactly one shared window.
        assert [start for _, _, start in results] == [0]

    def test_parallelism_preserves_results(self):
        serial = run_join(ORDERS, CLICKS, parallelism=1)
        parallel = run_join(ORDERS, CLICKS, parallelism=4)
        assert serial == parallel

    def test_custom_combine(self):
        results = run_join(ORDERS, CLICKS,
                           combine=lambda o, c: f"{o[1]}+{c[1]}")
        assert ("u1", "o1+c1", 0) in results

    def test_cross_environment_join_rejected(self):
        env1 = StreamEnvironment()
        env2 = StreamEnvironment()
        left = env1.from_collection([(("k", 1), 0)]).key_by(
            lambda kv: kv[0])
        right = env2.from_collection([(("k", 2), 0)]).key_by(
            lambda kv: kv[0])
        with pytest.raises(PlanError, match="environments"):
            left.window_join(right, TumblingWindow(10))

    def test_matches_cql_reference(self):
        """The DSL window join agrees with CQL's windowed equi-join
        sampled at the same window close."""
        from repro.bench import OBSERVATION_SCHEMA
        from repro.core import Schema, Stream
        from repro.cql import CQLEngine

        orders = [(("u1", "o1"), 1), (("u1", "o2"), 4), (("u2", "o3"), 7)]
        clicks = [(("u1", "c1"), 3), (("u2", "c2"), 8), (("u1", "c3"), 9)]
        dsl_pairs = {(k, pair) for k, pair, _ in run_join(orders, clicks)}

        engine = CQLEngine()
        engine.register_stream("Orders", Schema(["user", "oid"]))
        engine.register_stream("Clicks", Schema(["user", "cid"]))
        query = engine.register_query(
            "SELECT O.user AS user, O.oid AS oid, C.cid AS cid "
            "FROM Orders O [Range 10 Slide 10], "
            "Clicks C [Range 10 Slide 10] WHERE O.user = C.user")
        query.run_recorded({
            "Orders": Stream.of_records(
                Schema(["user", "oid"]),
                [({"user": k, "oid": v}, t) for (k, v), t in orders]),
            "Clicks": Stream.of_records(
                Schema(["user", "cid"]),
                [({"user": k, "cid": v}, t) for (k, v), t in clicks]),
        })
        cql_pairs = {(r["user"], (r["oid"], r["cid"]))
                     for r in query.as_relation().at(10)}
        assert cql_pairs == dsl_pairs
