"""CREATE DYNAMIC TABLE surface syntax and its lowering."""

import pytest

from repro.core import ParseError, PlanError
from repro.core.records import Schema
from repro.cql.catalog import Catalog
from repro.plan.ir import RelationScan, StreamScan
from repro.sql import CreateDynamicTable, parse_statement
from repro.sql.lower import lower_statement

pytestmark = pytest.mark.views

QUERY = ("SELECT region, SUM(amount) AS total FROM orders "
         "GROUP BY region EMIT CHANGES")


class TestParse:
    def test_create_with_integer_lag(self):
        statement = parse_statement(
            f"CREATE DYNAMIC TABLE t TARGET_LAG = 3 AS {QUERY}")
        assert isinstance(statement, CreateDynamicTable)
        assert statement.name == "t"
        assert statement.target_lag == 3
        assert statement.select.source == "orders"

    def test_equals_is_optional(self):
        statement = parse_statement(
            f"CREATE DYNAMIC TABLE t TARGET_LAG 2 AS {QUERY}")
        assert statement.target_lag == 2

    def test_zero_lag_is_legal(self):
        statement = parse_statement(
            f"CREATE DYNAMIC TABLE t TARGET_LAG = 0 AS {QUERY}")
        assert statement.target_lag == 0

    def test_downstream_lag(self):
        statement = parse_statement(
            f"CREATE DYNAMIC TABLE t TARGET_LAG = DOWNSTREAM AS {QUERY}")
        assert statement.target_lag == "downstream"

    def test_lag_clause_optional(self):
        statement = parse_statement(f"CREATE DYNAMIC TABLE t AS {QUERY}")
        assert statement.target_lag is None

    def test_plain_select_still_parses(self):
        statement = parse_statement(QUERY)
        assert not isinstance(statement, CreateDynamicTable)

    def test_missing_as_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(f"CREATE DYNAMIC TABLE t {QUERY}")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(f"CREATE DYNAMIC TABLE t AS {QUERY} garbage")

    def test_negative_lag_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(
                f"CREATE DYNAMIC TABLE t TARGET_LAG = -1 AS {QUERY}")


class TestLowering:
    def catalog(self):
        catalog = Catalog()
        catalog.register_relation("orders", Schema(["region", "amount"]))
        catalog.register_stream("Obs", Schema(["region", "amount"]))
        return catalog

    def test_relation_source_lowers_to_relation_scan(self):
        statement = parse_statement(
            "SELECT region FROM orders EMIT CHANGES")
        plan = lower_statement(statement, self.catalog())
        scan = plan
        while not isinstance(scan, RelationScan):
            scan = scan.children[0]
        assert scan.name == "orders"

    def test_stream_source_still_lowers_to_stream_scan(self):
        statement = parse_statement("SELECT region FROM Obs EMIT CHANGES")
        plan = lower_statement(statement, self.catalog())
        scan = plan
        while scan.children:
            scan = scan.children[0]
        assert isinstance(scan, StreamScan)

    def test_unknown_source_rejected(self):
        statement = parse_statement("SELECT x FROM ghost EMIT CHANGES")
        with pytest.raises(PlanError):
            lower_statement(statement, self.catalog())


class TestEndToEnd:
    def test_views_scan_views_through_the_same_dialect(self):
        from repro.views import DynamicTableService

        service = DynamicTableService()
        service.create_table("orders", Schema(["region", "amount"]))
        service.execute(f"CREATE DYNAMIC TABLE totals AS {QUERY}")
        service.execute(
            "CREATE DYNAMIC TABLE hot TARGET_LAG = DOWNSTREAM AS "
            "SELECT region FROM totals WHERE total > 10 EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 11}],
                      at=1)
        service.refresh("hot")
        assert [row["region"] for row, _ in service.read("hot").items()] \
            == ["eu"]

    def test_execute_rejects_plain_queries(self):
        from repro.views import DynamicTableService

        service = DynamicTableService()
        service.create_table("orders", Schema(["region", "amount"]))
        with pytest.raises(PlanError):
            service.execute(QUERY)
