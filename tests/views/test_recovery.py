"""Snapshot/restore of the view service, including mid-refresh crashes."""

import pytest

from repro.chaos import CrashFuse
from repro.chaos.injection import InjectedCrash
from repro.chaos.recovery import RecoveryManager
from repro.core import StateError
from repro.core.records import Schema
from repro.views import DynamicTableService

pytestmark = pytest.mark.views


def build_service():
    service = DynamicTableService()
    service.create_table("orders", Schema(["region", "amount"]))
    service.execute(
        "CREATE DYNAMIC TABLE totals TARGET_LAG = 0 AS SELECT region, "
        "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
    service.execute(
        "CREATE DYNAMIC TABLE big TARGET_LAG = 0 AS "
        "SELECT region FROM totals WHERE total > 5 EMIT CHANGES")
    return service


def contents(service, name):
    return sorted(service.read(name).items(), key=repr)


class TestRoundTrip:
    def test_snapshot_restore_round_trip(self):
        service = build_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 9}],
                      at=1)
        service.tick()
        image = service.snapshot()
        before = {name: contents(service, name)
                  for name in ("orders", "totals", "big")}
        version_before = service.view("totals").version

        service.apply("orders", inserts=[{"region": "us", "amount": 9}],
                      at=service.clock + 1)
        service.tick()
        assert contents(service, "totals") != before["totals"]

        service.restore(image)
        for name, want in before.items():
            assert contents(service, name) == want
        assert service.view("totals").version == version_before

    def test_restored_service_keeps_refreshing_correctly(self):
        service = build_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 9}],
                      at=1)
        service.tick()
        image = service.snapshot()
        service.restore(image)
        # Kernel operator state came back too: the next delta refreshes
        # incrementally on top of the restored accumulators.
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=service.clock + 1)
        service.tick()
        (row, _), = service.read("totals").items()
        assert row["total"] == 10

    def test_suspension_survives_restore(self):
        service = build_service()
        service.suspend("totals")
        image = service.snapshot()
        service.resume("totals")
        service.restore(image)
        assert service.view("totals").suspended

    def test_restore_rejects_unregistered_views(self):
        service = build_service()
        image = service.snapshot()
        fresh = DynamicTableService()
        with pytest.raises(StateError):
            fresh.restore(image)


class TestMidRefreshCrash:
    def test_crash_mid_refresh_rolls_back_and_converges(self):
        service = build_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 9}],
                      at=1)
        service.tick()
        image = service.snapshot()

        handle = service.view("totals").handle
        op = handle.operator(handle.operator_names()[0])
        fuse = CrashFuse(at=1)
        original = op.process_batch

        def torn(*args, **kwargs):
            result = original(*args, **kwargs)
            if fuse.record(1):
                raise InjectedCrash("mid-refresh fault")
            return result

        op.process_batch = torn
        service.apply("orders", inserts=[{"region": "eu", "amount": 2}],
                      at=service.clock + 1)
        with pytest.raises(InjectedCrash):
            service.refresh("totals")
        del op.process_batch
        assert fuse.fired

        # Roll back the torn state and replay the commit: exactly-once.
        service.restore(image)
        service.apply("orders", inserts=[{"region": "eu", "amount": 2}],
                      at=service.clock + 1)
        service.refresh("totals")
        (row, _), = service.read("totals").items()
        assert row["total"] == 11

    def test_recovery_manager_protocol(self):
        """The service plugs into the chaos RecoveryManager as-is."""
        service = build_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 9}],
                      at=1)
        service.tick()
        manager = RecoveryManager(service, interval=1, measure_bytes=False,
                                  sleep=lambda _d: None)
        manager.start()
        service.apply("orders", inserts=[{"region": "us", "amount": 1}],
                      at=service.clock + 1)
        service.tick()
        restored = manager.recover()
        assert restored.offset == 0
        assert {row["region"] for row, _ in service.read("totals").items()} \
            == {"eu"}


class TestDSMSIntegration:
    def build_engine(self):
        from repro.dsms import DSMSEngine

        engine = DSMSEngine()
        engine.register_stream("Orders", Schema(["region", "amount"]))
        engine.create_dynamic_table(
            "CREATE DYNAMIC TABLE totals TARGET_LAG = 0 AS SELECT region, "
            "SUM(amount) AS total FROM Orders GROUP BY region EMIT CHANGES")
        return engine

    def test_stream_feeds_view(self):
        engine = self.build_engine()
        engine.ingest("Orders", {"region": "eu", "amount": 4}, 1)
        engine.run_until_idle()
        engine.advance_time(2)
        (row, _), = engine.views.read("totals").items()
        assert row["total"] == 4

    def test_engine_snapshot_carries_views(self):
        engine = self.build_engine()
        engine.ingest("Orders", {"region": "eu", "amount": 4}, 1)
        engine.run_until_idle()
        engine.advance_time(2)
        image = engine.snapshot()
        assert "views" in image

        engine.ingest("Orders", {"region": "eu", "amount": 5}, 3)
        engine.run_until_idle()
        engine.advance_time(4)
        engine.restore(image)
        (row, _), = engine.views.read("totals").items()
        assert row["total"] == 4
