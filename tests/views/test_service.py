"""DynamicTableService: refresh scheduling, target lag, versioned reads."""

import pytest

from repro.core import PlanError, StateError
from repro.core.records import Schema
from repro.views import DynamicTableService, HISTORY_LIMIT

pytestmark = pytest.mark.views


def make_service():
    service = DynamicTableService()
    service.create_table("orders", Schema(["region", "amount"]))
    return service


def totals(service, name="totals"):
    return {row["region"]: row["total"]
            for row, _ in service.read(name).items()}


class TestBasics:
    def test_create_refresh_read(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals TARGET_LAG = 1 AS "
            "SELECT region, SUM(amount) AS total FROM orders "
            "GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[
            {"region": "eu", "amount": 5}, {"region": "eu", "amount": 7},
            {"region": "us", "amount": 1}], at=1)
        service.refresh("totals")
        assert totals(service) == {"eu": 12, "us": 1}

    def test_deletes_retract(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 5}],
                      at=1)
        service.apply("orders", deletes=[{"region": "eu", "amount": 5}],
                      at=2)
        service.refresh("totals")
        assert totals(service) == {}

    def test_initial_contents_computed_at_install(self):
        service = make_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 3}])
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        assert totals(service) == {"eu": 3}

    def test_cascaded_view_scans_installed_view(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        big = service.execute(
            "CREATE DYNAMIC TABLE big AS SELECT region FROM totals "
            "WHERE total > 10 EMIT CHANGES")
        # The sharing memo rewrote `big` onto the installed view.
        assert big.sources == ["totals"]
        service.apply("orders", inserts=[{"region": "eu", "amount": 11}],
                      at=1)
        service.refresh("big")
        assert [row["region"] for row, _ in service.read("big").items()] \
            == ["eu"]

    def test_refresh_cascades_upstream_first(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.execute(
            "CREATE DYNAMIC TABLE big AS SELECT region FROM totals "
            "WHERE total > 0 EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        service.refresh("big")  # must pull totals to version 1 on the way
        assert service.view("totals").version == 1
        assert service.view("big").version == 1


class TestTick:
    def test_tick_honours_target_lag(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE slow TARGET_LAG = 3 AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        assert service.tick() == []        # clock 2: staleness 2 < 3
        assert service.tick() == ["slow"]  # clock 3: staleness hits 3
        assert totals(service, "slow") == {"eu": 1}

    def test_zero_lag_refreshes_every_tick(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE fresh TARGET_LAG = 0 AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 2}],
                      at=1)
        assert service.tick() == ["fresh"]
        assert totals(service, "fresh") == {"eu": 2}

    def test_downstream_lag_derives_from_consumers(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE mid TARGET_LAG = DOWNSTREAM AS "
            "SELECT region, SUM(amount) AS total FROM orders "
            "GROUP BY region EMIT CHANGES")
        assert service.effective_lags() == {"mid": None}
        service.execute(
            "CREATE DYNAMIC TABLE top TARGET_LAG = 2 AS "
            "SELECT region FROM mid WHERE total > 0 EMIT CHANGES")
        assert service.effective_lags() == {"mid": 2, "top": 2}

    def test_downstream_without_consumers_never_scheduled(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE orphan TARGET_LAG = DOWNSTREAM AS "
            "SELECT region, SUM(amount) AS total FROM orders "
            "GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        assert service.tick() == []
        assert service.view("orphan").version == 0  # still at install

    def test_measured_lag_never_exceeds_target_in_steady_state(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE v TARGET_LAG = 2 AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        for step in range(10):
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": step}],
                          at=service.clock + 1)
            service.tick()
            measured = service.clock - service.view("v").version
            assert measured <= 2


class TestSuspendResume:
    def service(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE mid TARGET_LAG = 0 AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.execute(
            "CREATE DYNAMIC TABLE top TARGET_LAG = 0 AS "
            "SELECT region FROM mid WHERE total > 0 EMIT CHANGES")
        return service

    def test_suspended_view_holds_version(self):
        service = self.service()
        service.suspend("mid")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        assert service.tick() == []  # top is blocked below mid
        assert service.view("mid").version == 0
        assert service.view("top").version == 0

    def test_refresh_through_suspended_ancestor_raises(self):
        service = self.service()
        service.suspend("mid")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        with pytest.raises(StateError):
            service.refresh("top")

    def test_resume_catches_up(self):
        service = self.service()
        service.suspend("mid")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        service.tick()
        service.resume("mid")
        refreshed = service.tick()
        assert refreshed == ["mid", "top"]
        assert [row["region"] for row, _ in service.read("top").items()] \
            == ["eu"]


class TestVersionedReads:
    def test_read_at_version(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=1)
        service.refresh("totals")
        service.apply("orders", inserts=[{"region": "eu", "amount": 2}],
                      at=2)
        service.refresh("totals")
        old = {row["region"]: row["total"]
               for row, _ in service.read("totals", version=1).items()}
        assert old == {"eu": 1}
        assert totals(service) == {"eu": 3}

    def test_history_is_bounded(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE totals AS SELECT region, "
            "SUM(amount) AS total FROM orders GROUP BY region EMIT CHANGES")
        for step in range(HISTORY_LIMIT + 4):
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": 1}],
                          at=service.clock + 1)
            service.refresh("totals")
        history = service.view("totals").history
        assert len(history) == HISTORY_LIMIT
        with pytest.raises(StateError):
            service.read("totals", version=0)  # pruned out of the window

    def test_base_tables_have_no_history(self):
        service = make_service()
        with pytest.raises(StateError):
            service.read("orders", version=0)


class TestErrors:
    def test_unknown_table(self):
        with pytest.raises(StateError):
            make_service().apply("nope", inserts=[{}])

    def test_views_are_not_writable(self):
        service = make_service()
        service.execute(
            "CREATE DYNAMIC TABLE t AS SELECT region, SUM(amount) AS total "
            "FROM orders GROUP BY region EMIT CHANGES")
        with pytest.raises(StateError):
            service.apply("t", inserts=[{"region": "eu", "total": 1}])

    def test_over_delete_rejected(self):
        service = make_service()
        with pytest.raises(StateError):
            service.apply("orders",
                          deletes=[{"region": "eu", "amount": 1}])

    def test_commit_before_clock_rejected(self):
        service = make_service()
        service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                      at=5)
        with pytest.raises(StateError):
            service.apply("orders", inserts=[{"region": "eu", "amount": 1}],
                          at=3)

    def test_bad_target_lag(self):
        service = make_service()
        with pytest.raises(PlanError):
            service.create_from_plan(
                "v", _any_plan(service), target_lag=-1)

    def test_view_over_unknown_relation(self):
        service = make_service()
        with pytest.raises(PlanError):
            service.execute(
                "CREATE DYNAMIC TABLE v AS SELECT x FROM ghost "
                "EMIT CHANGES")

    def test_duplicate_view_name_rejected(self):
        service = make_service()
        text = ("CREATE DYNAMIC TABLE v AS SELECT region, SUM(amount) AS "
                "total FROM orders GROUP BY region EMIT CHANGES")
        service.execute(text)
        with pytest.raises(PlanError):
            service.execute(text)


def _any_plan(service):
    from repro.views import make_scan
    return make_scan("orders", "o", service.catalog.schema_of("orders"))


class TestObsMetrics:
    def test_refresh_metrics_recorded(self):
        import repro.obs as obs
        obs.enable()
        try:
            service = make_service()
            service.execute(
                "CREATE DYNAMIC TABLE totals AS SELECT region, "
                "SUM(amount) AS total FROM orders GROUP BY region "
                "EMIT CHANGES")
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": 1}], at=1)
            service.refresh("totals")
            names = {m["name"] for m in obs.get_registry().snapshot()}
            assert {"views.refresh.lag", "views.refresh.rows",
                    "views.dag.depth"} <= names
        finally:
            obs.disable()
