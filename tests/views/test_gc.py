"""Changelog GC: compaction below the DAG's low-water consumed version,
keeping the version-0 primed-replay invariant and bounding memory."""

import pytest

from repro.core.records import Record, Schema
from repro.views import DynamicTableService
from repro.views.delta import Changelog, Delta, apply_deltas, net

pytestmark = pytest.mark.views

SCHEMA = Schema(["k", "v"])


def row(k, v):
    return Record.from_mapping(SCHEMA, {"k": k, "v": v})


def replay_contents(log, upto):
    from repro.core.relation import Bag
    bag = Bag()
    apply_deltas(bag, log.between(-1, upto))
    return sorted(bag.items(), key=repr)


class TestChangelogGC:
    def test_compacts_history_into_one_version_zero_batch(self):
        log = Changelog()
        for version in range(1, 6):
            log.append(version, [Delta(row("a", version), 1)])
        reclaimed = log.gc(below=3)
        assert reclaimed == 2  # versions 1..3 became one batch
        versions = [v for v, _ in log.entries()]
        assert versions == [0, 4, 5]

    def test_full_replay_is_preserved(self):
        log = Changelog()
        log.append(1, [Delta(row("a", 1), 1), Delta(row("b", 1), 1)])
        log.append(2, [Delta(row("a", 1), -1), Delta(row("a", 2), 1)])
        log.append(3, [Delta(row("c", 3), 1)])
        before = replay_contents(log, 3)
        log.gc(below=2)
        # A late-attaching consumer pulls (-1, clock] and must
        # reconstruct the exact same contents from the compacted log.
        assert replay_contents(log, 3) == before

    def test_existing_version_zero_batch_is_renetted(self):
        log = Changelog()
        log.append(0, [Delta(row("primed", 0), 1)])  # priming batch
        log.append(1, [Delta(row("primed", 0), -1), Delta(row("a", 1), 1)])
        log.append(2, [Delta(row("b", 2), 1)])
        log.gc(below=2)
        versions = [v for v, _ in log.entries()]
        assert versions == [0]
        assert replay_contents(log, 2) == sorted(
            [(row("a", 1), 1), (row("b", 2), 1)], key=repr)

    def test_fully_cancelling_history_vanishes(self):
        log = Changelog()
        log.append(1, [Delta(row("a", 1), 1)])
        log.append(2, [Delta(row("a", 1), -1)])
        assert log.gc(below=2) == 2
        assert len(log) == 0

    def test_noop_below_first_entry(self):
        log = Changelog()
        log.append(5, [Delta(row("a", 1), 1)])
        assert log.gc(below=4) == 0
        assert log.gc(below=5) == 0  # one entry: nothing to compact
        assert [v for v, _ in log.entries()] == [5]

    def test_consumers_past_the_mark_never_see_version_zero(self):
        log = Changelog()
        for version in range(1, 5):
            log.append(version, [Delta(row("a", version), 1)])
        log.gc(below=3)
        # A consumer at version 3 pulls (3, 4]: only version 4, no
        # compacted batch — its own catch-up slice is untouched.
        assert [d.row["v"] for d in log.between(3, 4)] == [4]


def service_with_view(target_lag=1):
    service = DynamicTableService()
    service.create_table("orders", Schema(["region", "amount"]))
    service.execute(
        f"CREATE DYNAMIC TABLE totals TARGET_LAG = {target_lag} AS "
        "SELECT region, SUM(amount) AS total FROM orders "
        "GROUP BY region EMIT CHANGES")
    return service


class TestServiceGC:
    def test_tick_reclaims_consumed_base_history(self):
        service = service_with_view()
        for i in range(1, 20):
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": i}], at=i)
            service.tick(i)
        # The view consumed everything; the base table's log compacts to
        # the single version-0 batch plus at most the newest entries.
        assert len(service._tables["orders"].changelog) <= 2

    def test_lagging_consumer_holds_the_mark_down(self):
        service = service_with_view(target_lag=100)  # never auto-refreshes
        for i in range(1, 10):
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": i}], at=i)
            service.tick(i)
        # The unconsumed slice (version > view.version) must survive.
        view_version = service._views["totals"].version
        log = service._tables["orders"].changelog
        unconsumed = [v for v, _ in log.entries() if v > view_version]
        assert len(unconsumed) == 9 - view_version

    def test_late_attaching_view_replays_compacted_history(self):
        service = service_with_view()
        for i in range(1, 8):
            service.apply("orders",
                          inserts=[{"region": "eu", "amount": 1}], at=i)
            service.tick(i)
        late = service.execute(
            "CREATE DYNAMIC TABLE latecount AS SELECT region, "
            "COUNT(*) AS n FROM orders GROUP BY region EMIT CHANGES")
        assert late is not None
        rows = {row["region"]: row["n"]
                for row, _ in service.read("latecount").items()}
        assert rows == {"eu": 7}

    def test_soak_memory_stays_bounded_over_10k_commits(self):
        service = service_with_view()
        peak_base = peak_view = 0
        for i in range(1, 10_001):
            service.apply(
                "orders",
                inserts=[{"region": f"r{i % 7}", "amount": i % 13}], at=i)
            service.tick(i)
            peak_base = max(peak_base,
                            len(service._tables["orders"].changelog))
            peak_view = max(peak_view,
                            len(service._views["totals"].changelog))
        # Without GC both logs grow one entry per commit (10k entries);
        # with the low-water compaction they stay O(1).
        assert peak_base <= 4
        assert peak_view <= 4
        totals = {row["region"]: row["total"]
                  for row, _ in service.read("totals").items()}
        assert totals == {f"r{r}": sum(i % 13 for i in range(1, 10_001)
                                       if i % 7 == r)
                          for r in range(7)}
