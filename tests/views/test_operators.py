"""Kernel delta operators: each compiled shape vs the recompute reference."""

import pytest

from repro.core import Schema, StateError
from repro.core.records import Record
from repro.core.relation import Bag
from repro.plan.exprs import Binary, BinOp, Column, Literal
from repro.plan.ir import (
    Aggregate,
    AggregateExpr,
    Distinct,
    Filter,
    Join,
    Project,
    SetOp,
)
from repro.core.operators import AggregateKind
from repro.views import Delta, compile_view_plan, make_scan, net, recompute
from repro.views.operators import spec_output

pytestmark = pytest.mark.views

SCHEMA = Schema(["g", "v"])


def rows_to_deltas(rows, weight=1):
    return [Delta(Record.from_mapping(SCHEMA, r), weight) for r in rows]


def bag_of(rows, schema):
    bag = Bag()
    for row in rows:
        bag.add(Record.from_mapping(schema, row))
    return bag


def run_incremental(plan, batches):
    """Open a compiled view plan and push batches; return the running Bag."""
    from repro.views import apply_deltas
    handle = compile_view_plan(plan)
    state = Bag()
    apply_deltas(state, net(handle.open()))
    for batch in batches:
        apply_deltas(state, net(handle.push_deltas(batch)))
    return state


def sorted_items(bag):
    return sorted(bag.items(), key=repr)


class TestAggregate:
    def plan(self, group=True):
        scan = make_scan("t", "s", SCHEMA)
        aggs = (AggregateExpr(AggregateKind.COUNT, None, "n"),
                AggregateExpr(AggregateKind.SUM, Column("s.v"), "total"),
                AggregateExpr(AggregateKind.MIN, Column("s.v"), "lo"))
        if group:
            return Aggregate(scan, ("s.g",), ("g",), aggs)
        return Aggregate(scan, (), (), aggs)

    def test_grouped_matches_reference(self):
        rows = [{"g": 0, "v": 1}, {"g": 0, "v": 3}, {"g": 1, "v": None}]
        got = run_incremental(self.plan(), [{"t": rows_to_deltas(rows)}])
        want = recompute(self.plan(), {"t": bag_of(rows, SCHEMA)})
        assert sorted_items(got) == sorted_items(want)

    def test_group_vanishes_at_zero_rows(self):
        rows = [{"g": 0, "v": 2}]
        got = run_incremental(self.plan(), [
            {"t": rows_to_deltas(rows)},
            {"t": rows_to_deltas(rows, weight=-1)}])
        assert sorted_items(got) == []

    def test_global_aggregate_emits_empty_input_row(self):
        got = run_incremental(self.plan(group=False), [])
        want = recompute(self.plan(group=False), {"t": Bag()})
        assert sorted_items(got) == sorted_items(want)
        (row, count), = got.items()
        assert count == 1 and row["n"] == 0 and row["total"] is None

    def test_global_aggregate_returns_to_empty_row_on_full_delete(self):
        rows = [{"g": 0, "v": 7}]
        got = run_incremental(self.plan(group=False), [
            {"t": rows_to_deltas(rows)},
            {"t": rows_to_deltas(rows, weight=-1)}])
        (row, _), = got.items()
        assert row["n"] == 0

    def test_over_retraction_raises(self):
        handle = compile_view_plan(self.plan())
        handle.open()
        with pytest.raises(StateError):
            handle.push_deltas(
                {"t": rows_to_deltas([{"g": 0, "v": 1}], weight=-1)})

    def test_weighted_deltas_fold_multiplicity(self):
        got = run_incremental(self.plan(), [
            {"t": [Delta(Record.from_mapping(SCHEMA, {"g": 0, "v": 2}), 3)]}])
        (row, _), = got.items()
        assert row["n"] == 3 and row["total"] == 6


class TestSpecOutput:
    def test_empty_accumulator_null_except_count(self):
        from repro.views.operators import _Accumulator
        acc = _Accumulator()
        assert spec_output(AggregateKind.COUNT, acc) == 0
        for kind in (AggregateKind.SUM, AggregateKind.AVG,
                     AggregateKind.MIN, AggregateKind.MAX):
            assert spec_output(kind, acc) is None

    def test_avg_is_sum_over_count(self):
        from repro.views.operators import _Accumulator
        acc = _Accumulator()
        acc.add(1)
        acc.add(2)
        assert spec_output(AggregateKind.AVG, acc) == 1.5


class TestDistinct:
    def plan(self):
        scan = make_scan("t", "s", SCHEMA)
        return Distinct(Project(scan, (Column("s.g"),), ("g",)))

    def test_multiplicity_collapses(self):
        rows = [{"g": 1, "v": 0}, {"g": 1, "v": 5}, {"g": 2, "v": 0}]
        got = run_incremental(self.plan(), [{"t": rows_to_deltas(rows)}])
        want = recompute(self.plan(), {"t": bag_of(rows, SCHEMA)})
        assert sorted_items(got) == sorted_items(want)
        assert all(count == 1 for _, count in got.items())

    def test_retraction_only_at_zero_support(self):
        rows = [{"g": 1, "v": 0}, {"g": 1, "v": 5}]
        got = run_incremental(self.plan(), [
            {"t": rows_to_deltas(rows)},
            {"t": rows_to_deltas([rows[0]], weight=-1)}])
        assert len(sorted_items(got)) == 1  # still one distinct g


class TestSetOpAndJoin:
    def test_setops_match_reference(self):
        left = Project(make_scan("a", "l", SCHEMA),
                       (Column("l.g"),), ("x",))
        right = Project(make_scan("b", "r", SCHEMA),
                        (Column("r.g"),), ("x",))
        a_rows = [{"g": 1, "v": 0}, {"g": 1, "v": 1}, {"g": 2, "v": 0}]
        b_rows = [{"g": 1, "v": 9}, {"g": 3, "v": 9}]
        for kind in ("union", "difference", "intersection"):
            plan = SetOp(kind, left, right)
            got = run_incremental(plan, [
                {"a": rows_to_deltas(a_rows), "b": rows_to_deltas(b_rows)}])
            want = recompute(plan, {"a": bag_of(a_rows, SCHEMA),
                                    "b": bag_of(b_rows, SCHEMA)})
            assert sorted_items(got) == sorted_items(want), kind

    def test_join_matches_reference_and_skips_null_keys(self):
        plan = Join(make_scan("a", "l", SCHEMA), make_scan("b", "r", SCHEMA),
                    left_keys=("l.g",), right_keys=("r.g",))
        a_rows = [{"g": 1, "v": 0}, {"g": None, "v": 7}]
        b_rows = [{"g": 1, "v": 2}, {"g": 1, "v": 3}, {"g": None, "v": 8}]
        got = run_incremental(plan, [
            {"a": rows_to_deltas(a_rows)}, {"b": rows_to_deltas(b_rows)}])
        want = recompute(plan, {"a": bag_of(a_rows, SCHEMA),
                                "b": bag_of(b_rows, SCHEMA)})
        assert sorted_items(got) == sorted_items(want)
        assert sum(count for _, count in got.items()) == 2  # NULLs dropped

    def test_join_retraction(self):
        plan = Join(make_scan("a", "l", SCHEMA), make_scan("b", "r", SCHEMA),
                    left_keys=("l.g",), right_keys=("r.g",))
        a_rows = [{"g": 1, "v": 0}]
        b_rows = [{"g": 1, "v": 2}]
        got = run_incremental(plan, [
            {"a": rows_to_deltas(a_rows)},
            {"b": rows_to_deltas(b_rows)},
            {"a": rows_to_deltas(a_rows, weight=-1)}])
        assert sorted_items(got) == []


class TestFilterProject:
    def test_filter_and_computed_projection(self):
        scan = make_scan("t", "s", SCHEMA)
        plan = Project(
            Filter(scan, Binary(BinOp.GT, Column("s.v"), Literal(1))),
            (Column("s.g"), Binary(BinOp.ADD, Column("s.v"), Literal(10))),
            ("g", "vv"))
        rows = [{"g": 0, "v": 1}, {"g": 0, "v": 2}, {"g": 1, "v": None}]
        got = run_incremental(plan, [{"t": rows_to_deltas(rows)}])
        want = recompute(plan, {"t": bag_of(rows, SCHEMA)})
        assert sorted_items(got) == sorted_items(want)
        (row, _), = got.items()
        assert row["vv"] == 12
