"""Pure DAG-scheduling helpers: order, depth, lag propagation, blocking."""

import pytest

from repro.core import PlanError
from repro.views import (
    DOWNSTREAM,
    below_suspended,
    consumers_of,
    depth_map,
    effective_lags,
    topo_order,
)

pytestmark = pytest.mark.views

# base -> a -> b -> c, with d also reading a and base directly.
DAG = {
    "a": ("base",),
    "b": ("a",),
    "c": ("b",),
    "d": ("a", "base"),
}


class TestTopoOrder:
    def test_upstream_views_come_first(self):
        order = topo_order(DAG)
        assert order.index("a") < order.index("b") < order.index("c")
        assert order.index("a") < order.index("d")
        assert set(order) == set(DAG)

    def test_cycle_is_rejected_with_path(self):
        with pytest.raises(PlanError, match="cycle"):
            topo_order({"x": ("y",), "y": ("x",)})

    def test_self_cycle(self):
        with pytest.raises(PlanError):
            topo_order({"x": ("x",)})


class TestDepthAndConsumers:
    def test_depths(self):
        assert depth_map(DAG) == {"a": 1, "b": 2, "c": 3, "d": 2}

    def test_consumers_inverts_the_graph(self):
        consumers = consumers_of(DAG)
        assert sorted(consumers["a"]) == ["b", "d"]
        assert sorted(consumers["base"]) == ["a", "d"]
        assert "c" not in consumers


class TestEffectiveLags:
    def test_fixed_lags_pass_through(self):
        lags = effective_lags(DAG, {"a": 1, "b": 2, "c": 3, "d": 0})
        assert lags == {"a": 1, "b": 2, "c": 3, "d": 0}

    def test_downstream_takes_tightest_consumer(self):
        lags = effective_lags(DAG, {"a": DOWNSTREAM, "b": 4, "c": 1,
                                    "d": 2})
        # a's consumers are b (4) and d (2): obligation is min = 2.
        assert lags["a"] == 2

    def test_downstream_chains_propagate(self):
        lags = effective_lags(DAG, {"a": DOWNSTREAM, "b": DOWNSTREAM,
                                    "c": 5, "d": 7})
        assert lags["b"] == 5
        assert lags["a"] == 5  # min(b=5, d=7)

    def test_downstream_without_consumers_is_on_demand(self):
        lags = effective_lags({"only": ("base",)}, {"only": DOWNSTREAM})
        assert lags == {"only": None}

    def test_downstream_consumer_of_downstream_orphan(self):
        lags = effective_lags({"a": ("base",), "b": ("a",)},
                              {"a": DOWNSTREAM, "b": DOWNSTREAM})
        assert lags == {"a": None, "b": None}


class TestBelowSuspended:
    def test_descendants_are_blocked_transitively(self):
        assert below_suspended(DAG, {"a"}) == {"b", "c", "d"}

    def test_only_the_affected_subtree(self):
        assert below_suspended(DAG, {"b"}) == {"c"}

    def test_nothing_suspended(self):
        assert below_suspended(DAG, set()) == set()
